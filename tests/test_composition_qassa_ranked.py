"""Tests for ranked multi-composition selection (§I.1 shopping platform)."""

from __future__ import annotations

import pytest

from repro.errors import SelectionError
from repro.qos.properties import STANDARD_PROPERTIES
from repro.services.generator import ServiceGenerator
from repro.composition.qassa import QASSA, QassaConfig
from repro.composition.request import GlobalConstraint, UserRequest
from repro.composition.selection import CandidateSets
from repro.composition.task import Task, leaf, sequence

PROPS = {
    name: STANDARD_PROPERTIES[name]
    for name in ("response_time", "cost", "availability")
}


def build_problem(activities=3, services=15, seed=0, rt_bound=None):
    task = Task(
        "p", sequence(*[leaf(f"A{i}", f"task:C{i}") for i in range(activities)])
    )
    generator = ServiceGenerator(PROPS, seed=seed)
    candidates = CandidateSets(
        task,
        {a.name: generator.candidates(a.capability, services)
         for a in task.activities},
    )
    constraints = ()
    if rt_bound is not None:
        constraints = (GlobalConstraint.at_most("response_time", rt_bound),)
    request = UserRequest(
        task, constraints=constraints, weights={n: 1.0 for n in PROPS}
    )
    return request, candidates


class TestSelectRanked:
    def test_returns_k_distinct_feasible_plans(self):
        request, candidates = build_problem()
        plans = QASSA(PROPS).select_ranked(request, candidates, k=3)
        assert 1 <= len(plans) <= 3
        bindings = {tuple(sorted(p.service_ids().items())) for p in plans}
        assert len(bindings) == len(plans)
        for plan in plans:
            assert plan.feasible
            assert request.satisfied_by(plan.aggregated_qos)

    def test_sorted_by_utility_descending(self):
        request, candidates = build_problem(services=25)
        plans = QASSA(PROPS).select_ranked(request, candidates, k=4)
        utilities = [p.utility for p in plans]
        assert utilities == sorted(utilities, reverse=True)

    def test_first_plan_matches_single_select(self):
        request, candidates = build_problem(seed=3)
        single = QASSA(PROPS).select(request, candidates)
        ranked = QASSA(PROPS).select_ranked(request, candidates, k=3)
        assert ranked[0].service_ids() == single.service_ids()

    def test_k_one_equivalent_to_select(self):
        request, candidates = build_problem(seed=4)
        plans = QASSA(PROPS).select_ranked(request, candidates, k=1)
        assert len(plans) == 1

    def test_invalid_k_rejected(self):
        request, candidates = build_problem()
        with pytest.raises(SelectionError):
            QASSA(PROPS).select_ranked(request, candidates, k=0)

    def test_infeasible_raises(self):
        request, candidates = build_problem(rt_bound=0.001)
        with pytest.raises(SelectionError):
            QASSA(PROPS).select_ranked(request, candidates, k=3)

    def test_fewer_than_k_when_lattice_small(self):
        """One candidate per activity → exactly one distinct composition."""
        request, candidates = build_problem(services=1)
        plans = QASSA(PROPS).select_ranked(request, candidates, k=5)
        assert len(plans) == 1

    def test_constrained_ranked_plans_all_feasible(self):
        request, candidates = build_problem(services=20, seed=6)
        # Put a real bound halfway through the feasible range.
        loose = QASSA(PROPS).select(request, candidates)
        bound = loose.aggregated_qos["response_time"] * 1.5
        constrained = UserRequest(
            request.task,
            constraints=(GlobalConstraint.at_most("response_time", bound),),
            weights=request.weights,
        )
        plans = QASSA(PROPS).select_ranked(constrained, candidates, k=3)
        for plan in plans:
            assert plan.aggregated_qos["response_time"] <= bound + 1e-9
