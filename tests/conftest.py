"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.qos.properties import STANDARD_PROPERTIES
from repro.services.generator import ServiceGenerator
from repro.composition.request import GlobalConstraint, UserRequest
from repro.composition.selection import CandidateSets
from repro.composition.task import Task, leaf, parallel, sequence


@pytest.fixture
def props4():
    """The four-property set most selection tests use."""
    return {
        name: STANDARD_PROPERTIES[name]
        for name in ("response_time", "cost", "availability", "reliability")
    }


@pytest.fixture
def generator(props4):
    return ServiceGenerator(props4, seed=123)


@pytest.fixture
def small_task():
    """Three sequential activities — the minimal interesting task."""
    return Task("small", sequence(leaf("A"), leaf("B"), leaf("C")))


@pytest.fixture
def mixed_task():
    """Sequence with a parallel pattern, for aggregation-sensitive tests."""
    return Task(
        "mixed", sequence(leaf("A"), parallel(leaf("B"), leaf("C")), leaf("D"))
    )


@pytest.fixture
def small_candidates(small_task, generator):
    pools = {
        activity.name: generator.candidates(activity.capability, 10)
        for activity in small_task.activities
    }
    return CandidateSets(small_task, pools)


@pytest.fixture
def loose_request(small_task):
    """A request whose constraints any assignment satisfies."""
    return UserRequest(
        task=small_task,
        constraints=(
            GlobalConstraint.at_most("response_time", 1e9),
            GlobalConstraint.at_least("availability", 0.0),
        ),
        weights={"response_time": 0.5, "availability": 0.3, "cost": 0.2},
    )
