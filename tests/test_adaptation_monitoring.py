"""Tests for QoS monitoring: EWMA, forecasting, triggers."""

from __future__ import annotations

import pytest

from repro.errors import AdaptationError
from repro.qos.properties import AVAILABILITY, RESPONSE_TIME
from repro.qos.values import QoSVector
from repro.services.discovery import QoSConstraint
from repro.adaptation.monitoring import (
    MonitorConfig,
    QoSMonitor,
    QoSObservation,
    TriggerKind,
)

PROPS = {"response_time": RESPONSE_TIME, "availability": AVAILABILITY}


def make_monitor(**config_overrides):
    config = MonitorConfig(**config_overrides) if config_overrides else MonitorConfig()
    return QoSMonitor(PROPS, config)


def obs(service, prop, value, t):
    return QoSObservation(service, prop, value, t)


class TestEWMA:
    def test_first_observation_sets_estimate(self):
        monitor = make_monitor()
        monitor.observe(obs("s1", "response_time", 100.0, 0.0))
        assert monitor.estimate("s1", "response_time") == 100.0

    def test_ewma_smooths(self):
        monitor = make_monitor(alpha=0.5)
        monitor.observe(obs("s1", "response_time", 100.0, 0.0))
        monitor.observe(obs("s1", "response_time", 200.0, 1.0))
        assert monitor.estimate("s1", "response_time") == pytest.approx(150.0)

    def test_alpha_one_tracks_raw(self):
        monitor = make_monitor(alpha=1.0)
        for i, value in enumerate([10.0, 50.0, 30.0]):
            monitor.observe(obs("s1", "response_time", value, float(i)))
        assert monitor.estimate("s1", "response_time") == 30.0

    def test_invalid_alpha_rejected(self):
        with pytest.raises(AdaptationError):
            make_monitor(alpha=0.0)
        with pytest.raises(AdaptationError):
            make_monitor(alpha=1.5)

    def test_unobserved_returns_none(self):
        assert make_monitor().estimate("ghost", "response_time") is None


class TestForecast:
    def test_no_forecast_below_min_samples(self):
        monitor = make_monitor(min_samples_for_forecast=3)
        monitor.observe(obs("s1", "response_time", 100.0, 0.0))
        monitor.observe(obs("s1", "response_time", 110.0, 1.0))
        assert monitor.projected("s1", "response_time") is None

    def test_upward_drift_projects_higher(self):
        monitor = make_monitor(alpha=0.5, trend_gain=2.0)
        for i, value in enumerate([100.0, 120.0, 140.0, 160.0]):
            monitor.observe(obs("s1", "response_time", value, float(i)))
        projection = monitor.projected("s1", "response_time")
        estimate = monitor.estimate("s1", "response_time")
        assert projection is not None and projection > estimate

    def test_stable_series_projects_flat(self):
        monitor = make_monitor()
        for i in range(5):
            monitor.observe(obs("s1", "response_time", 100.0, float(i)))
        assert monitor.projected("s1", "response_time") == pytest.approx(100.0)


class TestTriggers:
    def test_violation_trigger(self):
        monitor = make_monitor()
        monitor.watch("s1", [QoSConstraint("response_time", "<=", 100.0)])
        triggers = monitor.observe(obs("s1", "response_time", 150.0, 0.0))
        assert len(triggers) == 1
        assert triggers[0].kind is TriggerKind.VIOLATION
        assert triggers[0].observed == 150.0
        assert triggers[0].bound == 100.0

    def test_no_trigger_when_within_bound(self):
        monitor = make_monitor()
        monitor.watch("s1", [QoSConstraint("response_time", "<=", 100.0)])
        assert monitor.observe(obs("s1", "response_time", 50.0, 0.0)) == []

    def test_proactive_forecast_trigger(self):
        """A drifting-but-not-yet-violating series raises a FORECAST trigger."""
        monitor = make_monitor(alpha=0.6, trend_gain=4.0)
        monitor.watch("s1", [QoSConstraint("response_time", "<=", 100.0)])
        kinds = []
        for i, value in enumerate([60.0, 75.0, 90.0, 98.0]):
            for trigger in monitor.observe(
                obs("s1", "response_time", value, float(i))
            ):
                kinds.append(trigger.kind)
        assert TriggerKind.FORECAST in kinds
        assert TriggerKind.VIOLATION not in kinds

    def test_unwatched_service_never_triggers(self):
        monitor = make_monitor()
        assert monitor.observe(obs("sX", "response_time", 1e9, 0.0)) == []

    def test_failure_report(self):
        monitor = make_monitor()
        trigger = monitor.report_failure("s1", 5.0)
        assert trigger.kind is TriggerKind.FAILURE
        assert trigger.service_id == "s1"

    def test_listener_dispatch_and_unsubscribe(self):
        monitor = make_monitor()
        monitor.watch("s1", [QoSConstraint("response_time", "<=", 1.0)])
        seen = []
        unsubscribe = monitor.subscribe(seen.append)
        monitor.observe(obs("s1", "response_time", 2.0, 0.0))
        unsubscribe()
        monitor.observe(obs("s1", "response_time", 2.0, 1.0))
        assert len(seen) == 1

    def test_unwatch_clears_series(self):
        monitor = make_monitor()
        monitor.watch("s1", [QoSConstraint("response_time", "<=", 100.0)])
        monitor.observe(obs("s1", "response_time", 50.0, 0.0))
        monitor.unwatch("s1")
        assert monitor.estimate("s1", "response_time") is None
        assert monitor.observe(obs("s1", "response_time", 1e9, 1.0)) == []


class TestVectors:
    def test_observe_vector_feeds_all_properties(self):
        monitor = make_monitor()
        vector = QoSVector(
            {"response_time": 80.0, "availability": 0.9}, PROPS
        )
        monitor.observe_vector("s1", vector, 0.0)
        assert monitor.estimate("s1", "response_time") == 80.0
        assert monitor.estimate("s1", "availability") == 0.9

    def test_estimated_vector_falls_back_to_advertised(self):
        monitor = make_monitor()
        advertised = QoSVector(
            {"response_time": 100.0, "availability": 0.95}, PROPS
        )
        monitor.observe(obs("s1", "response_time", 300.0, 0.0))
        estimated = monitor.estimated_vector("s1", advertised)
        assert estimated["response_time"] == 300.0
        assert estimated["availability"] == 0.95  # never observed
