"""Integration tests: the full middleware loop on the paper's scenarios.

These exercise discovery → QASSA → dynamic binding → execution →
monitoring → adaptation across module boundaries, including failure
injection (churn, killed providers, degraded links).
"""

from __future__ import annotations

import pytest

from repro.middleware.qasom import QASOM
from repro.adaptation.manager import AdaptationAction
from repro.adaptation.monitoring import TriggerKind
from repro.composition.request import GlobalConstraint, UserRequest
from repro.env.scenarios import (
    build_hospital_scenario,
    build_holiday_camp_scenario,
    build_shopping_scenario,
)


def make_middleware(scenario):
    return QASOM.for_environment(
        scenario.environment,
        scenario.properties,
        ontology=scenario.ontology,
        repository=scenario.repository,
    )


@pytest.mark.parametrize(
    "builder",
    [build_shopping_scenario, build_hospital_scenario,
     build_holiday_camp_scenario],
)
class TestHappyPath:
    def test_compose_execute_succeeds(self, builder):
        scenario = builder()
        middleware = make_middleware(scenario)
        result = middleware.run(scenario.request)
        assert result.plan.feasible
        assert result.report.succeeded
        assert result.report.total_cost >= 0.0

    def test_every_executed_activity_was_planned(self, builder):
        scenario = builder()
        middleware = make_middleware(scenario)
        plan = middleware.submit(scenario.request, execute=False).plan()
        # Snapshot before execution: post-execution adaptation may rewrite
        # the plan's ranked lists.
        planned_ids = {
            s.service_id
            for selection in plan.selections.values()
            for s in selection.services
        }
        result = middleware.submit(plan=plan).result()
        executed_ids = {
            r.service_id for r in result.report.invocations if r.succeeded
        }
        # Dynamic binding only ever binds services QASSA selected.
        assert executed_ids <= planned_ids


class TestFailureInjection:
    def test_mass_kill_forces_retries_or_adaptation(self):
        scenario = build_shopping_scenario(seed=101)
        middleware = make_middleware(scenario)
        plan = middleware.submit(scenario.request, execute=False).plan()
        # Kill the primary of every activity before execution.
        for selection in plan.selections.values():
            scenario.environment.kill_service(selection.primary.service_id)
        result = middleware.submit(plan=plan).result()
        if result.report.succeeded:
            # Each successful activity ran on a non-primary service.
            for record in result.report.invocations:
                if record.succeeded:
                    originally_primary = {
                        s.primary.service_id
                        for s in plan.selections.values()
                    }
                    # note: substitution may have promoted an alternate to
                    # primary, so compare against the pre-kill snapshot.
            assert result.report.invocations

    def test_environment_churn_between_compose_and_execute(self):
        scenario = build_holiday_camp_scenario(seed=55)
        middleware = make_middleware(scenario)
        plan = middleware.submit(scenario.request, execute=False).plan()
        scenario.environment.step(10)  # churn + fluctuation + battery drain
        result = middleware.submit(plan=plan).result()
        # Execution either succeeds (via binding/retries) or reports the
        # failed activity — never crashes.
        assert result.report.succeeded or result.report.failed_activity

    def test_substitution_after_violation_trigger(self):
        scenario = build_shopping_scenario(seed=202)
        middleware = make_middleware(scenario)
        plan = middleware.submit(scenario.request, execute=False).plan()
        manager = middleware.adaptation_manager(plan)
        victim = plan.selections["Order"].primary
        trigger = middleware.monitor.report_failure(victim.service_id, 0.0)
        outcome = manager.handle(trigger)
        assert outcome.action in (
            AdaptationAction.SUBSTITUTION, AdaptationAction.BEHAVIOURAL,
        )
        if outcome.action is AdaptationAction.SUBSTITUTION:
            assert plan.selections["Order"].primary != victim

    def test_behavioural_adaptation_when_capability_vanishes(self):
        """Remove every task:Order provider: substitution cannot help, the
        task class's sequential alternative (also needing task:Order) fails
        too, so adaptation reports failure — unless another behaviour
        avoids the capability.  The split-payment alternative still needs
        Order, so FAILED is the honest outcome; this test pins the
        escalation order."""
        scenario = build_shopping_scenario(seed=303)
        middleware = make_middleware(scenario)
        plan = middleware.submit(scenario.request, execute=False).plan()
        order_primary = plan.selections["Order"].primary
        for service in list(scenario.environment.registry):
            if service.capability == "task:Order":
                scenario.environment.kill_service(service.service_id)
        manager = middleware.adaptation_manager(plan)
        trigger = middleware.monitor.report_failure(
            order_primary.service_id, 0.0
        )
        outcome = manager.handle(trigger)
        # Substitution may still succeed from the plan's in-memory
        # alternates (they were selected before the kill); what must never
        # happen is an unhandled crash.
        assert outcome.action in (
            AdaptationAction.SUBSTITUTION,
            AdaptationAction.BEHAVIOURAL,
            AdaptationAction.FAILED,
        )


class TestProactiveMonitoringLoop:
    def test_drift_raises_forecast_before_violation(self):
        from repro.adaptation.monitoring import MonitorConfig
        from repro.middleware.config import MiddlewareConfig

        scenario = build_shopping_scenario(seed=404)
        middleware = QASOM.for_environment(
            scenario.environment,
            scenario.properties,
            ontology=scenario.ontology,
            repository=scenario.repository,
            config=MiddlewareConfig(
                monitor=MonitorConfig(alpha=0.7, trend_gain=4.0)
            ),
        )
        plan = middleware.submit(scenario.request, execute=False).plan()
        middleware.adaptation_manager(plan)  # installs watches
        victim = plan.selections["Browse"].primary
        bound = None
        for constraint in middleware.monitor._watches[victim.service_id]:
            if constraint.property_name == "response_time":
                bound = constraint.bound
        if bound is None:
            pytest.skip("no response_time watch installed")
        kinds = []
        middleware.monitor.subscribe(lambda t: kinds.append(t.kind))
        from repro.adaptation.monitoring import QoSObservation

        # Drift towards the bound without crossing it.
        for i, fraction in enumerate((0.5, 0.7, 0.85, 0.97)):
            middleware.monitor.observe(
                QoSObservation(victim.service_id, "response_time",
                               bound * fraction, float(i))
            )
        assert TriggerKind.VIOLATION not in kinds
        assert TriggerKind.FORECAST in kinds


class TestCrossScenarioReuse:
    def test_one_middleware_many_requests(self):
        scenario = build_hospital_scenario(seed=66)
        middleware = make_middleware(scenario)
        first = middleware.run(scenario.request)
        second = middleware.run(scenario.request)
        assert first.plan.feasible and second.plan.feasible

    def test_tighter_budget_lowers_cost(self):
        scenario = build_shopping_scenario(seed=88)
        middleware = make_middleware(scenario)
        loose_plan = middleware.submit(scenario.request, execute=False).plan()
        budget = loose_plan.aggregated_qos["cost"] * 0.9
        tight_request = UserRequest(
            scenario.task,
            constraints=scenario.request.constraints
            + (GlobalConstraint.at_most("cost", budget),),
            weights=scenario.request.weights,
        )
        try:
            tight_plan = middleware.submit(tight_request, execute=False).plan()
        except Exception:
            pytest.skip("no composition fits the tightened budget")
        assert tight_plan.aggregated_qos["cost"] <= budget + 1e-9
