"""Concurrency-determinism: a pooled run is byte-identical to a serial run.

The runtime composes concurrently but commits executions in strict
admission order, so N seeded requests brokered through the pool must
produce exactly the plans *and* execution reports the serial middleware
produces for the same workload.  Worlds are compared by seeded service
*names* (service ids come from a process-global counter and differ across
identically-seeded worlds).
"""

from __future__ import annotations

import random
import threading

from repro.middleware.qasom import QASOM
from repro.qos.properties import STANDARD_PROPERTIES
from repro.runtime import MiddlewareRuntime, RequestStatus, RuntimeConfig
from repro.semantics.ontology import Ontology
from repro.services.generator import ServiceGenerator
from repro.composition.request import UserRequest
from repro.composition.task import Task, leaf, sequence
from repro.env.environment import PervasiveEnvironment

PROPS = {
    name: STANDARD_PROPERTIES[name]
    for name in ("response_time", "cost", "availability", "reliability")
}
CAPS = ("task:Alpha", "task:Beta", "task:Gamma")


def build_world(seed=17, services=8, profiles=5, repeats=2):
    ontology = Ontology("runtime-determinism-tests")
    root = ontology.declare_class("task:Root")
    for capability in CAPS:
        ontology.declare_class(capability, [root])
    environment = PervasiveEnvironment(seed=seed)
    generator = ServiceGenerator(PROPS, seed=seed)
    for capability in CAPS:
        for service in generator.candidates(capability, services):
            environment.host_on_new_device(service)
    middleware = QASOM.for_environment(environment, PROPS,
                                       ontology=ontology)
    task = Task("det", sequence(leaf("A", CAPS[0]), leaf("B", CAPS[1]),
                                leaf("C", CAPS[2])))
    rng = random.Random(seed + 1)
    requests = []
    for _ in range(profiles):
        weights = {
            name: round(rng.uniform(0.1, 1.0), 3) for name in PROPS
        }
        requests.append(UserRequest(task=task, constraints=(),
                                    weights=weights))
    return middleware, [requests[i % profiles]
                        for i in range(profiles * repeats)], generator


def plan_signature(plan):
    return (
        tuple(sorted((activity, selection.primary.name)
                     for activity, selection in plan.selections.items())),
        round(plan.utility, 9),
        plan.feasible,
        tuple(sorted((name, round(plan.aggregated_qos[name], 6))
                     for name in plan.aggregated_qos)),
    )


def report_signature(report):
    def qos(vector):
        if vector is None:
            return None
        return tuple(sorted((n, round(vector[n], 6)) for n in vector))

    return tuple(
        (record.activity_name, round(record.started_at, 9),
         record.succeeded, record.attempt, qos(record.observed_qos))
        for record in report.invocations
    )


class TestPooledEqualsSerial:
    def test_pooled_run_matches_serial_byte_for_byte(self):
        middleware_serial, requests_serial, _ = build_world()
        serial = [middleware_serial.submit(r).result()
                  for r in requests_serial]

        middleware_pooled, requests_pooled, _ = build_world()
        config = RuntimeConfig(workers=4,
                               queue_depth=len(requests_pooled))
        with MiddlewareRuntime(middleware_pooled, config) as runtime:
            handles = [runtime.submit(r) for r in requests_pooled]
            runtime.drain()

        for index, (expected, handle) in enumerate(zip(serial, handles)):
            pooled = handle.result()
            assert plan_signature(expected.plan) == plan_signature(
                pooled.plan
            ), f"request {index}: plans diverged"
            assert report_signature(expected.report) == report_signature(
                pooled.report
            ), f"request {index}: execution reports diverged"

    def test_two_pooled_runs_match_each_other(self):
        signatures = []
        for _ in range(2):
            middleware, requests, _ = build_world()
            config = RuntimeConfig(workers=4, queue_depth=len(requests))
            with MiddlewareRuntime(middleware, config) as runtime:
                handles = [runtime.submit(r) for r in requests]
                runtime.drain()
            signatures.append(
                [plan_signature(h.result().plan) for h in handles]
            )
        assert signatures[0] == signatures[1]


class TestChurnUnderLoad:
    def test_all_requests_terminate_despite_concurrent_churn(self):
        middleware, requests, generator = build_world(repeats=4)
        registry = middleware.environment.registry
        stop = threading.Event()

        def churner():
            step = 0
            while not stop.is_set():
                service = registry.publish(
                    generator.service(CAPS[step % len(CAPS)])
                )
                registry.withdraw(service.service_id)
                step += 1

        thread = threading.Thread(target=churner)
        thread.start()
        try:
            config = RuntimeConfig(workers=4, queue_depth=len(requests))
            with MiddlewareRuntime(middleware, config) as runtime:
                handles = [runtime.submit(r) for r in requests]
                runtime.drain(timeout=60.0)
        finally:
            stop.set()
            thread.join(timeout=10.0)
        for handle in handles:
            assert handle.done()
            assert handle.status in (
                RequestStatus.DONE, RequestStatus.FAILED
            )
            if handle.status is RequestStatus.DONE:
                assert handle.result().plan is not None
