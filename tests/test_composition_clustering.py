"""Tests for k-means clustering and QoS levels/classes."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SelectionError
from repro.composition.clustering import (
    QoSLevel,
    build_qos_levels,
    kmeans,
    quantise_classes,
)

DIMS = ["x", "y"]


def pt(x, y):
    return {"x": x, "y": y}


class TestKMeans:
    def test_empty_input_raises(self):
        with pytest.raises(SelectionError):
            kmeans([], 3, DIMS)

    def test_k_clamped_to_population(self):
        result = kmeans([pt(0, 0), pt(1, 1)], k=5, dims=DIMS)
        assert result.k <= 2
        total = sum(len(c) for c in result.clusters)
        assert total == 2

    def test_separated_blobs_found(self):
        points = [pt(0, 0), pt(0.1, 0), pt(0, 0.1),
                  pt(10, 10), pt(10.1, 10), pt(10, 10.1)]
        result = kmeans(points, k=2, dims=DIMS, seed=1)
        assert result.k == 2
        memberships = sorted(sorted(c.members) for c in result.clusters)
        assert memberships == [[0, 1, 2], [3, 4, 5]]

    def test_every_point_assigned_exactly_once(self):
        points = [pt(i % 5, i // 5) for i in range(25)]
        result = kmeans(points, k=4, dims=DIMS, seed=2)
        assigned = sorted(i for c in result.clusters for i in c.members)
        assert assigned == list(range(25))

    def test_identical_points_single_effective_cluster(self):
        points = [pt(1, 1)] * 6
        result = kmeans(points, k=3, dims=DIMS, seed=3)
        assert sum(len(c) for c in result.clusters) == 6
        assert result.inertia == pytest.approx(0.0)

    def test_deterministic_under_seed(self):
        points = [pt(i * 0.37 % 1, i * 0.73 % 1) for i in range(30)]
        a = kmeans(points, 4, DIMS, seed=5)
        b = kmeans(points, 4, DIMS, seed=5)
        assert [c.members for c in a.clusters] == [c.members for c in b.clusters]

    def test_centroid_is_member_mean(self):
        points = [pt(0, 0), pt(2, 2)]
        result = kmeans(points, k=1, dims=DIMS, seed=0)
        assert result.clusters[0].centroid == {"x": 1.0, "y": 1.0}


class TestQoSLevels:
    WEIGHTS = {"x": 0.5, "y": 0.5}

    def _levels(self, points, utilities, k=2, seed=0):
        levels, _ = build_qos_levels(points, utilities, self.WEIGHTS, k, seed)
        return levels

    def test_levels_ranked_by_centroid_utility(self):
        good = [pt(0.9, 0.9), pt(0.95, 0.85)]
        bad = [pt(0.1, 0.1), pt(0.05, 0.15)]
        points = good + bad
        utilities = [0.9, 0.9, 0.1, 0.1]
        levels = self._levels(points, utilities)
        assert levels[0].rank == 0
        assert levels[0].centroid_utility > levels[1].centroid_utility
        assert sorted(levels[0].member_indexes) == [0, 1]

    def test_representative_is_best_member(self):
        points = [pt(0.9, 0.9), pt(0.95, 0.85), pt(0.5, 0.5)]
        utilities = [0.90, 0.92, 0.5]
        levels = self._levels(points, utilities, k=1)
        assert levels[0].representative == 1

    def test_members_sorted_by_utility_desc(self):
        points = [pt(0.2, 0.2), pt(0.8, 0.8), pt(0.5, 0.5)]
        utilities = [0.2, 0.8, 0.5]
        levels = self._levels(points, utilities, k=1)
        assert levels[0].member_indexes == [1, 2, 0]

    def test_single_candidate_single_level(self):
        levels = self._levels([pt(0.5, 0.5)], [0.5], k=4)
        assert len(levels) == 1
        assert len(levels[0]) == 1


class TestQoSClasses:
    def test_quantised_grouping(self):
        points = [pt(0.501, 0.5), pt(0.502, 0.5), pt(0.9, 0.9)]
        level = QoSLevel(
            rank=0, member_indexes=[0, 1, 2], centroid=pt(0.6, 0.6),
            centroid_utility=0.6, representative=2,
        )
        classes = quantise_classes(level, points, decimals=2)
        sizes = sorted(len(v) for v in classes.values())
        assert sizes == [1, 2]

    def test_finer_quantisation_splits(self):
        points = [pt(0.501, 0.5), pt(0.502, 0.5)]
        level = QoSLevel(
            rank=0, member_indexes=[0, 1], centroid=pt(0.5, 0.5),
            centroid_utility=0.5, representative=0,
        )
        assert len(quantise_classes(level, points, decimals=2)) == 1
        assert len(quantise_classes(level, points, decimals=4)) == 2


class TestSeedDeduplication:
    def test_duplicate_heavy_input_never_duplicates_seeds(self):
        # Five copies of one point and one distinct point: only two distinct
        # seeds exist, so seeding must stop at two centroids instead of
        # padding with duplicates that become silently-dropped empty clusters.
        points = [pt(0, 0)] * 5 + [pt(1, 1)]
        for seed in range(8):
            result = kmeans(points, k=3, dims=DIMS, seed=seed)
            assert result.k == 2
            centroids = {(c.centroid["x"], c.centroid["y"]) for c in result.clusters}
            assert len(centroids) == 2

    def test_all_identical_points_single_cluster(self):
        result = kmeans([pt(0.5, 0.5)] * 4, k=3, dims=DIMS)
        assert result.k == 1
        assert sorted(result.clusters[0].members) == [0, 1, 2, 3]

    def test_collapsed_levels_emit_warning(self, caplog):
        points = [pt(0, 0)] * 5 + [pt(1, 1)]
        utilities = [0.0] * 5 + [1.0]
        with caplog.at_level("WARNING", logger="repro.composition.clustering"):
            levels, _ = build_qos_levels(
                points, utilities, {"x": 0.5, "y": 0.5}, k=3
            )
        assert len(levels) == 2
        assert any("QoS levels" in record.message for record in caplog.records)

    def test_full_rank_input_emits_no_warning(self, caplog):
        points = [pt(0, 0), pt(0.5, 0.5), pt(1, 1)]
        utilities = [0.0, 0.5, 1.0]
        with caplog.at_level("WARNING", logger="repro.composition.clustering"):
            levels, _ = build_qos_levels(
                points, utilities, {"x": 0.5, "y": 0.5}, k=3
            )
        assert len(levels) == 3
        assert not caplog.records


_points = st.lists(
    st.fixed_dictionaries(
        {"x": st.floats(0, 1, allow_nan=False), "y": st.floats(0, 1, allow_nan=False)}
    ),
    min_size=1,
    max_size=25,
)


@settings(max_examples=40, deadline=None)
@given(_points, st.integers(1, 6), st.integers(0, 3))
def test_kmeans_partitions_input(points, k, seed):
    result = kmeans(points, k, DIMS, seed=seed)
    assigned = sorted(i for c in result.clusters for i in c.members)
    assert assigned == list(range(len(points)))
    assert 1 <= result.k <= min(k, len(points))


@settings(max_examples=40, deadline=None)
@given(_points, st.integers(1, 4))
def test_levels_cover_all_candidates(points, k):
    utilities = [(p["x"] + p["y"]) / 2 for p in points]
    levels, _ = build_qos_levels(points, utilities, {"x": 0.5, "y": 0.5}, k)
    covered = sorted(i for level in levels for i in level.member_indexes)
    assert covered == list(range(len(points)))
    ranks = [level.rank for level in levels]
    assert ranks == sorted(ranks)
    # Centroid utilities are non-increasing with rank.
    utilities_by_rank = [level.centroid_utility for level in levels]
    assert all(
        a >= b - 1e-9 for a, b in zip(utilities_by_rank, utilities_by_rank[1:])
    )
