"""Tests for composition-scope (global) run-time monitoring (§V.1.1)."""

from __future__ import annotations

import pytest

from repro.errors import AdaptationError
from repro.qos.properties import STANDARD_PROPERTIES
from repro.services.generator import ServiceGenerator
from repro.adaptation.manager import AdaptationAction, AdaptationManager
from repro.adaptation.monitoring import QoSMonitor, QoSObservation
from repro.adaptation.substitution import ServiceSubstitution
from repro.composition.qassa import QASSA, QassaConfig
from repro.composition.request import GlobalConstraint, UserRequest
from repro.composition.selection import CandidateSets
from repro.composition.task import Task, leaf, sequence

PROPS = {
    name: STANDARD_PROPERTIES[name]
    for name in ("response_time", "cost", "availability")
}


@pytest.fixture
def deployed():
    task = Task("t", sequence(leaf("A", "task:A"), leaf("B", "task:B")))
    generator = ServiceGenerator(PROPS, seed=91)
    candidates = CandidateSets(
        task,
        {a.name: generator.candidates(a.capability, 12)
         for a in task.activities},
    )
    request = UserRequest(
        task,
        constraints=(GlobalConstraint.at_most("response_time", 3500.0),),
        weights={n: 1.0 for n in PROPS},
    )
    plan = QASSA(PROPS, config=QassaConfig(alternates_kept=3)).select(
        request, candidates
    )
    monitor = QoSMonitor(PROPS)
    manager = AdaptationManager(PROPS, monitor,
                                ServiceSubstitution(PROPS, monitor))
    manager.deploy(plan)
    return manager, monitor, plan


class TestCompositionRuntimeQoS:
    def test_without_observations_equals_plan_aggregate(self, deployed):
        manager, monitor, plan = deployed
        runtime = manager.composition_runtime_qos()
        for name in PROPS:
            assert runtime[name] == pytest.approx(plan.aggregated_qos[name])

    def test_observations_shift_the_aggregate(self, deployed):
        manager, monitor, plan = deployed
        service = plan.selections["A"].primary
        monitor.observe(
            QoSObservation(service.service_id, "response_time",
                           service.qos("response_time") + 1000.0, 0.0)
        )
        runtime = manager.composition_runtime_qos()
        assert runtime["response_time"] == pytest.approx(
            plan.aggregated_qos["response_time"] + 1000.0
        )

    def test_undeployed_raises(self):
        monitor = QoSMonitor(PROPS)
        manager = AdaptationManager(PROPS, monitor,
                                    ServiceSubstitution(PROPS, monitor))
        with pytest.raises(AdaptationError):
            manager.composition_runtime_qos()


class TestCheckGlobal:
    def test_healthy_composition_has_no_violations(self, deployed):
        manager, monitor, plan = deployed
        assert manager.check_global() == {}

    def test_slack_absorbs_local_overshoot(self, deployed):
        """A per-service share can be blown while the composition still
        holds — the exact global check must stay quiet."""
        manager, monitor, plan = deployed
        a = plan.selections["A"].primary
        watches = monitor._watches[a.service_id]
        share = next(
            c.bound for c in watches if c.property_name == "response_time"
        )
        # Overshoot A's share slightly; total stays under the global bound
        # because B is (presumably) under its share.
        slack = 3500.0 - plan.aggregated_qos["response_time"]
        if slack <= 10:
            pytest.skip("no slack in this instance")
        monitor.observe(
            QoSObservation(a.service_id, "response_time",
                           a.qos("response_time") + slack / 2, 0.0)
        )
        assert manager.check_global() == {}

    def test_global_violation_detected(self, deployed):
        manager, monitor, plan = deployed
        a = plan.selections["A"].primary
        monitor.observe(
            QoSObservation(a.service_id, "response_time", 1e6, 0.0)
        )
        violations = manager.check_global()
        assert "response_time <= 3500" in violations


class TestHandleGlobalViolations:
    def test_no_violation_no_action(self, deployed):
        manager, monitor, plan = deployed
        assert manager.handle_global_violations() == []

    def test_worst_offender_substituted(self, deployed):
        manager, monitor, plan = deployed
        offender = plan.selections["B"].primary
        healthy = plan.selections["A"].primary
        monitor.observe(
            QoSObservation(offender.service_id, "response_time", 1e6, 0.0)
        )
        monitor.observe(
            QoSObservation(healthy.service_id, "response_time",
                           healthy.qos("response_time"), 0.0)
        )
        outcomes = manager.handle_global_violations()
        assert len(outcomes) == 1
        outcome = outcomes[0]
        assert outcome.trigger.service_id == offender.service_id
        assert outcome.action in (
            AdaptationAction.SUBSTITUTION, AdaptationAction.FAILED,
        )
        if outcome.action is AdaptationAction.SUBSTITUTION:
            assert plan.selections["B"].primary != offender
