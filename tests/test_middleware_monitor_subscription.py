"""Monitor subscribe/unsubscribe semantics during ``QASOM.execute``.

The middleware subscribes a trigger collector for exactly the duration of
the engine run, deduplicates the collected triggers by
``(service_id, kind)`` before handing them to the adaptation manager, and
must unsubscribe even when the engine raises.
"""

from __future__ import annotations

import pytest

from repro.adaptation.manager import AdaptationAction, AdaptationOutcome
from repro.adaptation.monitoring import AdaptationTrigger, TriggerKind
from repro.env.scenarios import build_shopping_scenario
from repro.execution.engine import ExecutionReport
from repro.middleware.qasom import QASOM


@pytest.fixture
def scenario():
    return build_shopping_scenario()


@pytest.fixture
def middleware(scenario):
    return QASOM.for_environment(
        scenario.environment,
        scenario.properties,
        ontology=scenario.ontology,
        repository=scenario.repository,
    )


class _ScriptedEngine:
    """Stands in for the execution engine: dispatches a scripted sequence
    of monitor triggers, then returns a canned report."""

    def __init__(self, monitor, failures, succeeded=True):
        self.monitor = monitor
        self.failures = list(failures)
        self.succeeded = succeeded

    def execute(self, plan):
        for service_id in self.failures:
            self.monitor.report_failure(service_id, timestamp=0.0)
        return ExecutionReport(
            task_name=plan.task.name,
            succeeded=self.succeeded,
            started_at=0.0,
            finished_at=1.0,
        )


class _RecordingManager:
    """Adaptation manager double that records which triggers it was asked
    to handle."""

    def __init__(self):
        self.handled = []

    def deploy(self, plan):
        pass

    def handle(self, trigger):
        self.handled.append(trigger)
        return AdaptationOutcome(trigger=trigger, action=AdaptationAction.NONE)


class TestSubscriptionLifecycle:
    def test_listener_registered_only_during_execute(self, middleware, scenario):
        plan = middleware.submit(scenario.request, execute=False).plan()
        seen_during_run = []
        middleware.engine = _ScriptedEngine(middleware.monitor, failures=[])
        original_execute = middleware.engine.execute

        def spying_execute(p):
            seen_during_run.append(len(middleware.monitor._listeners))
            return original_execute(p)

        middleware.engine.execute = spying_execute
        baseline = len(middleware.monitor._listeners)
        middleware.submit(plan=plan).result()
        assert seen_during_run == [baseline + 1]
        assert len(middleware.monitor._listeners) == baseline

    def test_no_subscription_when_adapt_disabled(self, middleware, scenario):
        plan = middleware.submit(scenario.request, execute=False).plan()
        seen_during_run = []
        engine = _ScriptedEngine(middleware.monitor, failures=[])
        original_execute = engine.execute

        def spying_execute(p):
            seen_during_run.append(len(middleware.monitor._listeners))
            return original_execute(p)

        engine.execute = spying_execute
        middleware.engine = engine
        result = middleware.submit(plan=plan, adapt=False).result()
        assert seen_during_run == [0]
        assert result.adaptations == []

    def test_unsubscribe_runs_when_the_engine_raises(self, middleware, scenario):
        plan = middleware.submit(scenario.request, execute=False).plan()

        class _ExplodingEngine:
            def execute(self, _plan):
                raise RuntimeError("engine died mid-run")

        middleware.engine = _ExplodingEngine()
        with pytest.raises(RuntimeError):
            middleware.submit(plan=plan).result()
        # The collector subscribed for the run is gone despite the failure,
        # so later triggers cannot leak into a dead run's pending list.
        assert middleware.monitor._listeners == []

    def test_repeated_executes_do_not_accumulate_listeners(
        self, middleware, scenario
    ):
        plan = middleware.submit(scenario.request, execute=False).plan()
        middleware.engine = _ScriptedEngine(middleware.monitor, failures=[])
        for _ in range(3):
            middleware.submit(plan=plan).result()
        assert middleware.monitor._listeners == []


class TestTriggerDeduplication:
    def _run_with_failures(self, middleware, scenario, failures):
        plan = middleware.submit(scenario.request, execute=False).plan()
        manager = _RecordingManager()
        middleware.adaptation_manager = lambda p, allow_behavioural=True: manager
        middleware.engine = _ScriptedEngine(middleware.monitor, failures)
        result = middleware.submit(plan=plan).result()
        return manager, result

    def test_each_trigger_collected_exactly_once(self, middleware, scenario):
        manager, result = self._run_with_failures(
            middleware, scenario, failures=["svc-1"]
        )
        assert len(manager.handled) == 1
        assert manager.handled[0].service_id == "svc-1"
        assert manager.handled[0].kind is TriggerKind.FAILURE
        assert len(result.adaptations) == 1

    def test_duplicate_service_kind_pairs_handled_once(
        self, middleware, scenario
    ):
        manager, result = self._run_with_failures(
            middleware, scenario, failures=["svc-1", "svc-1", "svc-1"]
        )
        assert len(manager.handled) == 1
        assert len(result.adaptations) == 1

    def test_distinct_services_each_handled(self, middleware, scenario):
        manager, _ = self._run_with_failures(
            middleware, scenario, failures=["svc-1", "svc-2", "svc-1"]
        )
        assert [t.service_id for t in manager.handled] == ["svc-1", "svc-2"]

    def test_same_service_different_kinds_both_handled(
        self, middleware, scenario
    ):
        plan = middleware.submit(scenario.request, execute=False).plan()
        manager = _RecordingManager()
        middleware.adaptation_manager = lambda p, allow_behavioural=True: manager

        monitor = middleware.monitor

        class _TwoKindEngine:
            def execute(self, _plan):
                monitor.report_failure("svc-1", timestamp=0.0)
                monitor._dispatch(
                    AdaptationTrigger(
                        kind=TriggerKind.VIOLATION,
                        service_id="svc-1",
                        property_name="latency",
                        observed=9.0,
                        projected=None,
                        bound=1.0,
                        timestamp=0.0,
                    )
                )
                return ExecutionReport(
                    task_name=_plan.task.name, succeeded=True,
                    started_at=0.0, finished_at=1.0,
                )

        middleware.engine = _TwoKindEngine()
        result = middleware.submit(plan=plan).result()
        kinds = {t.kind for t in manager.handled}
        assert kinds == {TriggerKind.FAILURE, TriggerKind.VIOLATION}
        assert len(result.adaptations) == 2

    def test_end_to_end_adaptations_unique_by_service_and_kind(
        self, middleware, scenario
    ):
        # Full pipeline (real engine, real manager): whatever triggers fire,
        # the outcomes never repeat a (service_id, kind) pair.
        result = middleware.run(scenario.request)
        keys = [
            (o.trigger.service_id, o.trigger.kind) for o in result.adaptations
        ]
        assert len(keys) == len(set(keys))
