"""Tests for the federated task class repository."""

from __future__ import annotations

import pytest

from repro.errors import BehaviouralAdaptationError
from repro.adaptation.federation import FederatedTaskClassRepository
from repro.adaptation.task_class import TaskClassRepository
from repro.composition.task import Task, leaf, sequence
from repro.semantics.ontology import Ontology


def seq_task(name, *specs):
    return Task(name, sequence(*[leaf(n, c) for n, c in specs]))


@pytest.fixture
def ontology():
    onto = Ontology("tasks")
    onto.declare_class("task:Activity")
    for name in ("A", "B", "Extra"):
        onto.declare_class(f"task:{name}", ["task:Activity"])
    return onto


@pytest.fixture
def shards(ontology):
    alice = TaskClassRepository(ontology)
    alice.new_class("shopping", "from alice").add(
        seq_task("alice-way", ("A1", "task:A"), ("B1", "task:B"))
    )
    bob = TaskClassRepository(ontology)
    bob.new_class("shopping", "from bob").add(
        seq_task("bob-way", ("A2", "task:A"), ("X", "task:Extra"),
                 ("B2", "task:B"))
    )
    bob.new_class("banking").add(
        seq_task("transfer", ("T", "task:A"))
    )
    return alice, bob


class TestFederation:
    def test_union_merges_classes_by_name(self, ontology, shards):
        alice, bob = shards
        federation = FederatedTaskClassRepository(ontology)
        federation.attach("dev-alice", alice)
        federation.attach("dev-bob", bob)
        assert len(federation) == 2
        shopping = federation.require("shopping")
        assert {b.name for b in shopping} == {"alice-way", "bob-way"}

    def test_dead_devices_drop_their_behaviours(self, ontology, shards):
        alice, bob = shards
        alive = {"dev-alice"}
        federation = FederatedTaskClassRepository(
            ontology, liveness=lambda d: d in alive
        )
        federation.attach("dev-alice", alice)
        federation.attach("dev-bob", bob)
        shopping = federation.require("shopping")
        assert {b.name for b in shopping} == {"alice-way"}
        assert federation.get("banking") is None
        # Bob comes back online.
        alive.add("dev-bob")
        assert federation.get("banking") is not None

    def test_require_unknown_raises(self, ontology):
        federation = FederatedTaskClassRepository(ontology)
        with pytest.raises(BehaviouralAdaptationError):
            federation.require("ghost")

    def test_detach(self, ontology, shards):
        alice, bob = shards
        federation = FederatedTaskClassRepository(ontology)
        federation.attach("dev-bob", bob)
        federation.detach("dev-bob")
        assert len(federation) == 0

    def test_classes_for_searches_live_union(self, ontology, shards):
        alice, bob = shards
        federation = FederatedTaskClassRepository(ontology)
        federation.attach("dev-bob", bob)
        user_task = seq_task("mine", ("MA", "task:A"), ("MB", "task:B"))
        hits = federation.classes_for(user_task)
        assert hits
        assert hits[0][1].name == "bob-way"

    def test_duplicate_behaviour_names_merge_first_shard_wins(self, ontology):
        first = TaskClassRepository(ontology)
        first.new_class("tc").add(seq_task("same-name", ("A1", "task:A")))
        second = TaskClassRepository(ontology)
        second.new_class("tc").add(
            seq_task("same-name", ("B1", "task:B"))
        )
        federation = FederatedTaskClassRepository(ontology)
        federation.attach("a-dev", first)
        federation.attach("b-dev", second)
        merged = federation.require("tc")
        assert len(merged) == 1
        # 'a-dev' sorts first: its behaviour wins.
        assert merged.behaviour("same-name").task.activity_names == ["A1"]


class TestBehaviouralAdaptationOverFederation:
    def test_federation_drops_into_the_strategy(self, ontology, shards):
        """BehaviouralAdaptation consumes the federation unchanged."""
        from repro.adaptation.behavioural import BehaviouralAdaptation
        from repro.composition.qassa import QASSA
        from repro.composition.request import UserRequest
        from repro.composition.selection import CandidateSets
        from repro.qos.properties import STANDARD_PROPERTIES
        from repro.services.generator import ServiceGenerator

        alice, bob = shards
        federation = FederatedTaskClassRepository(ontology)
        federation.attach("dev-alice", alice)
        federation.attach("dev-bob", bob)

        props = {
            n: STANDARD_PROPERTIES[n]
            for n in ("response_time", "cost", "availability")
        }
        generator = ServiceGenerator(props, seed=31)
        pools = {
            cap: generator.candidates(cap, 6)
            for cap in ("task:A", "task:B", "task:Extra")
        }

        def resolver(task):
            return CandidateSets(
                task, {a.name: pools[a.capability] for a in task.activities}
            )

        selector = QASSA(props)
        strategy = BehaviouralAdaptation(
            federation,
            resolver=resolver,
            selector=lambda req, cands: selector.select(req, cands),
            ontology=ontology,
        )
        failing = seq_task("mine", ("MA", "task:A"), ("MB", "task:B"))
        request = UserRequest(failing, weights={n: 1.0 for n in props})
        result = strategy.adapt(request)
        assert result.plan.feasible
        assert result.behaviour.name in {"alice-way", "bob-way"}
