"""Tests for windowed telemetry (repro.observability.windows)."""

from __future__ import annotations

import io
import json

import pytest

from repro.execution.clock import SimulatedClock
from repro.observability import (
    Observability,
    Slo,
    StageWindows,
    WindowedHistogram,
    render_slo_table,
    render_window_table,
    sparkline,
    window_records,
    write_window_jsonl,
)
from repro.observability.spans import Tracer


class TestWindowedHistogram:
    def test_observations_land_in_aligned_windows(self):
        series = WindowedHistogram("latency", window_seconds=1.0)
        series.observe(0.1, at=0.2)
        series.observe(0.2, at=0.9)
        series.observe(0.3, at=1.1)
        assert len(series) == 2
        first, second = series.series()
        assert (first.index, first.count) == (0, 2)
        assert (second.index, second.count) == (1, 1)
        assert first.start == 0.0 and first.end == 1.0
        assert second.start == 1.0 and second.end == 2.0

    def test_reads_attached_clock_when_no_timestamp_given(self):
        clock = SimulatedClock()
        series = WindowedHistogram("latency", clock=clock)
        series.observe(0.5)
        clock.advance(3.0)
        series.observe(0.7)
        assert [s.index for s in series.windows()] == [0, 3]

    def test_observe_without_clock_or_timestamp_is_an_error(self):
        series = WindowedHistogram("latency")
        with pytest.raises(ValueError):
            series.observe(0.5)

    def test_series_fills_gaps_with_empty_windows(self):
        series = WindowedHistogram("latency")
        series.observe(1.0, at=0.5)
        series.observe(1.0, at=4.5)
        filled = series.series()
        assert [s.index for s in filled] == [0, 1, 2, 3, 4]
        assert [s.count for s in filled] == [1, 0, 0, 0, 1]
        sparse = series.series(fill_gaps=False)
        assert [s.index for s in sparse] == [0, 4]

    def test_sim_clock_jump_rolls_to_a_new_window_and_evicts_oldest(self):
        series = WindowedHistogram("latency", max_windows=3)
        for second in (0, 1, 2):
            series.observe(0.1, at=second + 0.5)
        # A large sim-clock jump: window 50 arrives, window 0 is evicted.
        series.observe(0.1, at=50.5)
        assert [s.index for s in series.windows()] == [1, 2, 50]
        # A straggler older than the retention horizon is dropped, counted.
        series.observe(0.1, at=0.9)
        assert [s.index for s in series.windows()] == [1, 2, 50]
        assert series.dropped == 1
        assert series.observed == 4

    def test_merged_folds_every_window_into_one_histogram(self):
        series = WindowedHistogram("latency", buckets=(1.0, 2.0))
        series.observe(0.5, at=0.0)
        series.observe(1.5, at=1.0)
        series.observe(9.0, at=2.0)
        merged = series.merged()
        assert merged.count == 3
        assert merged.counts == [1, 1, 1]
        assert merged.minimum == 0.5 and merged.maximum == 9.0

    def test_window_percentiles_are_per_window_not_cumulative(self):
        series = WindowedHistogram("latency", buckets=(0.01, 0.1, 1.0))
        for _ in range(100):
            series.observe(0.005, at=0.5)
        for _ in range(100):
            series.observe(0.9, at=1.5)
        fast, slow = series.series()
        assert fast.p99 <= 0.01
        assert slow.p99 >= 0.1

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            WindowedHistogram("x", window_seconds=0.0)
        with pytest.raises(ValueError):
            WindowedHistogram("x", max_windows=0)


def _traced_run(clock: SimulatedClock, tracer: Tracer, *, status: str = "done",
                queue_ms: float = 4.0, execute_sim: float = 0.3) -> None:
    """Emit one runtime.request span tree shaped like the real pipeline."""
    with tracer.span("runtime.request") as request:
        request.set(queue_ms=queue_ms, status=status)
        with tracer.span("discovery"):
            pass
        with tracer.span("qassa.select"):
            pass
        with tracer.span("bind"):
            pass
        with tracer.span("execute"):
            clock.advance(execute_sim)
        with tracer.span("runtime.commit"):
            pass


class TestStageWindows:
    def test_ingests_pipeline_stages_from_span_trees(self):
        clock = SimulatedClock()
        tracer = Tracer(clock=clock)
        _traced_run(clock, tracer)
        clock.advance(0.7)  # next request starts in sim-second 1
        _traced_run(clock, tracer)
        windows = StageWindows(window_seconds=1.0)
        recognised = windows.ingest(tracer.spans)
        assert recognised == 12  # 6 recognised spans per request
        stages = windows.stages()
        for stage in ("admission-wait", "discovery", "selection", "binding",
                      "execution", "commit", "request"):
            assert stage in stages, stage
        # Requests started at sim 0.0 and 1.0 -> separate windows.
        assert [s.index for s in stages["request"].windows()] == [0, 1]
        # admission-wait is queue_ms converted to seconds.
        merged = stages["admission-wait"].merged()
        assert merged.count == 2
        assert merged.maximum == pytest.approx(0.004)

    def test_unrecognised_spans_are_ignored(self):
        tracer = Tracer()
        with tracer.span("compose"):
            with tracer.span("qassa.cluster"):
                pass
        windows = StageWindows()
        assert windows.ingest(tracer.spans) == 0
        assert windows.stages() == {}

    def test_wall_fallback_when_no_sim_clock(self):
        tracer = Tracer()  # no clock: spans carry wall timestamps only
        with tracer.span("discovery"):
            pass
        windows = StageWindows(window_seconds=1.0)
        windows.ingest(tracer.spans)
        # First ingested span defines the wall epoch -> window 0.
        assert [s.index for s in windows.stage("discovery").windows()] == [0]

    def test_availability_counts_request_outcomes_per_window(self):
        clock = SimulatedClock()
        tracer = Tracer(clock=clock)
        _traced_run(clock, tracer, status="done", execute_sim=0.1)
        _traced_run(clock, tracer, status="rejected", execute_sim=0.1)
        clock.advance(0.9)
        _traced_run(clock, tracer, status="done", execute_sim=0.1)
        windows = StageWindows(window_seconds=1.0)
        windows.ingest(tracer.spans)
        availability = windows.availability()
        assert availability[0] == pytest.approx(0.5)
        assert availability[1] == pytest.approx(1.0)
        assert windows.outcomes()[0] == {"done": 1, "rejected": 1}

    def test_ingest_observability_reads_finished_roots(self):
        clock = SimulatedClock()
        observability = Observability(clock=clock)
        with observability.span("execute"):
            clock.advance(0.2)
        windows = StageWindows()
        assert windows.ingest_observability(observability) == 1


class TestSlo:
    def _windows(self, *latencies_per_window):
        series = WindowedHistogram("latency", buckets=(0.01, 0.1, 1.0))
        for index, latencies in enumerate(latencies_per_window):
            for latency in latencies:
                series.observe(latency, at=index + 0.5)
        return series.series()

    def test_windowed_pass_fail_series(self):
        windows = self._windows([0.005] * 10, [0.9] * 10)
        slo = Slo(p99_ms=50.0)
        verdicts = slo.evaluate(windows)
        assert [v.passed for v in verdicts] == [True, False]
        assert "p99" in verdicts[1].failures[0]
        assert not slo.passed(windows)

    def test_availability_floor(self):
        windows = self._windows([0.005] * 4)
        slo = Slo(p99_ms=50.0, availability=0.99)
        verdicts = slo.evaluate(windows, availability={0: 0.5})
        assert not verdicts[0].passed
        assert "availability" in verdicts[0].failures[0]
        # Without an availability series the latency bound alone judges.
        assert slo.evaluate(windows)[0].passed

    def test_empty_windows_pass_trivially(self):
        windows = self._windows([0.005], [], [0.005])
        assert Slo(p99_ms=50.0).passed(windows)

    def test_validation(self):
        with pytest.raises(ValueError):
            Slo()
        with pytest.raises(ValueError):
            Slo(p99_ms=-1.0)
        with pytest.raises(ValueError):
            Slo(p99_ms=10.0, availability=1.5)

    def test_verdict_round_trips_to_dict(self):
        windows = self._windows([0.005])
        verdict = Slo(p99_ms=50.0).evaluate(windows)[0]
        record = verdict.to_dict()
        assert record["passed"] is True and record["index"] == 0


class TestExporters:
    def _stage_windows(self):
        clock = SimulatedClock()
        tracer = Tracer(clock=clock)
        _traced_run(clock, tracer)
        clock.advance(0.7)
        _traced_run(clock, tracer, status="rejected")
        windows = StageWindows(window_seconds=1.0)
        windows.ingest(tracer.spans)
        return windows

    def test_sparkline_scales_to_eight_levels(self):
        assert sparkline([]) == ""
        assert sparkline([1.0, 1.0]) == "▁▁"
        line = sparkline([0.0, 0.5, 1.0])
        assert line[0] == "▁" and line[-1] == "█" and len(line) == 3

    def test_jsonl_round_trip(self, tmp_path):
        windows = self._stage_windows()
        path = tmp_path / "windows.jsonl"
        written = write_window_jsonl(windows, str(path))
        records = [
            json.loads(line)
            for line in path.read_text().splitlines() if line
        ]
        assert len(records) == written and written > 0
        assert {r["type"] for r in records} == {"window"}
        request_rows = [r for r in records if r["stage"] == "request"]
        assert {r["index"] for r in request_rows} == {0, 1}
        assert any("availability" in r for r in request_rows)

    def test_jsonl_accepts_a_stream(self):
        stream = io.StringIO()
        written = write_window_jsonl(self._stage_windows(), stream)
        assert written == len(stream.getvalue().splitlines())

    def test_window_records_tag_stage_and_window_size(self):
        records = window_records(self._stage_windows())
        assert all(r["window_seconds"] == 1.0 for r in records)
        assert {r["stage"] for r in records} >= {"execution", "request"}

    def test_console_tables_render(self):
        windows = self._stage_windows()
        table = render_window_table(windows)
        assert "execution" in table and "p99/window" in table
        request_series = windows.stage("request").series()
        verdicts = Slo(p99_ms=1000.0).evaluate(
            request_series, windows.availability()
        )
        slo_table = render_slo_table(verdicts, Slo(p99_ms=1000.0))
        assert "pass" in slo_table and "SLO" in slo_table
