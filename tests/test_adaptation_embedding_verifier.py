"""Soundness properties: every embedding the matcher returns verifies.

:func:`verify_embedding` re-checks a claimed embedding independently of the
search.  Running it over matcher outputs for randomly generated
pattern/host pairs guards the whole homeomorphism machinery against
regressions that return plausible-but-wrong mappings.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adaptation.behaviour_graph import task_to_graph
from repro.adaptation.homeomorphism import (
    HomeomorphismConfig,
    HomeomorphismResult,
    find_homeomorphism,
    verify_embedding,
)
from repro.composition.task import (
    Task,
    conditional,
    leaf,
    parallel,
    sequence,
)
from repro.semantics.matching import MatchDegree
from repro.semantics.ontology import Ontology


def build_ontology(n_labels=8):
    onto = Ontology("verify-tasks")
    root = onto.declare_class("task:Activity")
    for i in range(n_labels):
        onto.declare_class(f"task:L{i}", [root])
        onto.declare_class(f"task:L{i}Sub", [f"task:L{i}"])
    onto.declare_class("task:Filler", [root])
    return onto


class TestVerifierCatchesBrokenEmbeddings:
    def setup_method(self):
        self.ontology = build_ontology()
        self.pattern = task_to_graph(
            Task("p", sequence(leaf("A", "task:L0"), leaf("B", "task:L1")))
        )
        self.host = task_to_graph(
            Task("h", sequence(leaf("HA", "task:L0"), leaf("HX", "task:Filler"),
                               leaf("HB", "task:L1")))
        )
        self.good = find_homeomorphism(self.pattern, self.host, self.ontology)
        assert self.good.found

    def test_good_embedding_verifies(self):
        assert verify_embedding(
            self.pattern, self.host, self.good, self.ontology
        ) == []

    def test_not_found_result_rejected(self):
        empty = HomeomorphismResult(found=False)
        problems = verify_embedding(self.pattern, self.host, empty,
                                    self.ontology)
        assert problems == ["result reports no embedding"]

    def test_missing_vertex_detected(self):
        broken = HomeomorphismResult(
            found=True,
            vertex_mapping={
                k: v for k, v in self.good.vertex_mapping.items()
                if k != list(self.good.vertex_mapping)[0]
            },
            edge_paths=dict(self.good.edge_paths),
        )
        problems = verify_embedding(self.pattern, self.host, broken,
                                    self.ontology)
        assert any("unmapped" in p for p in problems)

    def test_wrong_label_detected(self):
        # Map B's pattern vertex onto the Filler host vertex.
        b_pattern = next(
            v.vertex_id for v in self.pattern.vertices()
            if v.activity_name == "B"
        )
        filler_host = next(
            v.vertex_id for v in self.host.vertices()
            if v.label == "task:Filler"
        )
        mapping = dict(self.good.vertex_mapping)
        mapping[b_pattern] = (filler_host,)
        broken = HomeomorphismResult(
            found=True, vertex_mapping=mapping,
            edge_paths=dict(self.good.edge_paths),
        )
        problems = verify_embedding(self.pattern, self.host, broken,
                                    self.ontology)
        assert any("does not satisfy" in p for p in problems)

    def test_missing_edge_path_detected(self):
        broken = HomeomorphismResult(
            found=True,
            vertex_mapping=dict(self.good.vertex_mapping),
            edge_paths={},
        )
        problems = verify_embedding(self.pattern, self.host, broken,
                                    self.ontology)
        assert any("no host path" in p for p in problems)

    def test_disconnected_path_detected(self):
        key = next(iter(self.good.edge_paths))
        paths = dict(self.good.edge_paths)
        good_path = paths[key]
        # Insert a bogus self-hop so a consecutive pair stops being an edge.
        paths[key] = [good_path[0], good_path[0]] + good_path[1:]
        broken = HomeomorphismResult(
            found=True,
            vertex_mapping=dict(self.good.vertex_mapping),
            edge_paths=paths,
        )
        problems = verify_embedding(self.pattern, self.host, broken,
                                    self.ontology)
        assert any("breaks at" in p for p in problems)

    def test_non_exclusive_sharing_detected(self):
        # Force both pattern vertices onto the same host vertex.
        host_id = next(iter(self.good.vertex_mapping.values()))[0]
        mapping = {k: (host_id,) for k in self.good.vertex_mapping}
        broken = HomeomorphismResult(
            found=True, vertex_mapping=mapping,
            edge_paths={
                key: [host_id, host_id] for key in self.good.edge_paths
            },
        )
        problems = verify_embedding(self.pattern, self.host, broken,
                                    self.ontology)
        assert any("non-exclusive" in p for p in problems)


# ---------------------------------------------------------------------------
# Property: whatever the matcher returns on random instances verifies.
# ---------------------------------------------------------------------------
@st.composite
def _pattern_and_host(draw):
    """A random pattern task and a host derived from it by label
    specialisation, filler insertion and optional branch merging bait."""
    rng = random.Random(draw(st.integers(0, 10_000)))
    n = draw(st.integers(2, 5))
    labels = [f"task:L{i}" for i in range(n)]

    # Pattern: sequence with an optional conditional or parallel block.
    kind = draw(st.sampled_from(["seq", "cond", "par"]))
    pattern_leaves = [leaf(f"P{i}", labels[i]) for i in range(n)]
    if kind == "seq" or n < 3:
        pattern_root = sequence(*pattern_leaves)
    elif kind == "cond":
        pattern_root = sequence(
            pattern_leaves[0],
            conditional(pattern_leaves[1], pattern_leaves[2]),
            *pattern_leaves[3:],
        )
    else:
        pattern_root = sequence(
            pattern_leaves[0],
            parallel(pattern_leaves[1], pattern_leaves[2]),
            *pattern_leaves[3:],
        )
    pattern_task = Task("p", pattern_root)

    # Host: same skeleton with specialised labels and fillers interleaved.
    host_members = []
    for i in range(n):
        label = labels[i] + ("Sub" if rng.random() < 0.5 else "")
        host_members.append(leaf(f"H{i}", label))
        if rng.random() < 0.5:
            host_members.append(leaf(f"F{i}", "task:Filler"))
    if kind == "cond" and n >= 3:
        host_root = sequence(
            host_members[0],
            conditional(*[m for m in host_members[1:3]]),
            *host_members[3:],
        )
    elif kind == "par" and n >= 3:
        host_root = sequence(
            host_members[0],
            parallel(*[m for m in host_members[1:3]]),
            *host_members[3:],
        )
    else:
        host_root = sequence(*host_members)
    host_task = Task("h", host_root)
    return pattern_task, host_task


@settings(max_examples=60, deadline=None)
@given(_pattern_and_host())
def test_matcher_outputs_always_verify(pair):
    pattern_task, host_task = pair
    ontology = build_ontology()
    pattern = task_to_graph(pattern_task)
    host = task_to_graph(host_task)
    result = find_homeomorphism(pattern, host, ontology)
    if result.found:
        problems = verify_embedding(pattern, host, result, ontology)
        assert problems == [], problems


@settings(max_examples=30, deadline=None)
@given(_pattern_and_host(), st.booleans())
def test_matcher_respects_degree_threshold(pair, strict):
    """With an EXACT-only threshold, any found embedding uses only exact
    labels — verified through the verifier run at the same threshold."""
    pattern_task, host_task = pair
    ontology = build_ontology()
    pattern = task_to_graph(pattern_task)
    host = task_to_graph(host_task)
    config = HomeomorphismConfig(
        minimum_degree=MatchDegree.EXACT if strict else MatchDegree.PLUGIN
    )
    result = find_homeomorphism(pattern, host, ontology, config)
    if result.found:
        assert verify_embedding(pattern, host, result, ontology, config) == []
