"""Tests for QoS units and conversion."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import UnitError
from repro.qos import units as u
from repro.qos.units import Unit, convert, get_unit, register_unit


class TestConversion:
    def test_identity(self):
        assert convert(42.0, u.SECONDS, u.SECONDS) == 42.0

    def test_ms_to_seconds(self):
        assert convert(1500.0, u.MILLISECONDS, u.SECONDS) == pytest.approx(1.5)

    def test_seconds_to_ms(self):
        assert convert(2.0, u.SECONDS, u.MILLISECONDS) == pytest.approx(2000.0)

    def test_hours_to_minutes(self):
        assert convert(1.5, u.HOURS, u.MINUTES) == pytest.approx(90.0)

    def test_percent_to_ratio(self):
        assert convert(99.5, u.PERCENT, u.RATIO) == pytest.approx(0.995)

    def test_cents_to_euro(self):
        assert convert(250.0, u.CENT, u.EURO) == pytest.approx(2.5)

    def test_mbit_to_kbit(self):
        assert convert(2.0, u.MEGABITS_PER_SECOND, u.KILOBITS_PER_SECOND) == (
            pytest.approx(2000.0)
        )

    def test_cross_dimension_raises(self):
        with pytest.raises(UnitError):
            convert(1.0, u.SECONDS, u.EURO)

    @given(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False))
    def test_round_trip_is_identity(self, value):
        there = convert(value, u.MILLISECONDS, u.HOURS)
        back = convert(there, u.HOURS, u.MILLISECONDS)
        assert back == pytest.approx(value, abs=1e-6)


class TestRegistry:
    def test_get_unit(self):
        assert get_unit("ms") is u.MILLISECONDS

    def test_get_unknown_unit_raises(self):
        with pytest.raises(UnitError):
            get_unit("parsec")

    def test_register_custom_unit(self):
        fortnight = Unit("fortnight-test", "time", 14 * 24 * 3600.0)
        register_unit(fortnight)
        assert get_unit("fortnight-test") is fortnight
        assert convert(1.0, fortnight, u.HOURS) == pytest.approx(336.0)

    def test_register_conflicting_unit_raises(self):
        with pytest.raises(UnitError):
            register_unit(Unit("ms", "time", 999.0))

    def test_register_identical_is_idempotent(self):
        register_unit(Unit("ms", "time", 1e-3))  # same definition, no error
