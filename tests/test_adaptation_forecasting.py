"""Tests for the LINEAR forecast method and its comparison with EWMA."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.qos.properties import STANDARD_PROPERTIES
from repro.services.discovery import QoSConstraint
from repro.adaptation.monitoring import (
    ForecastMethod,
    MonitorConfig,
    QoSMonitor,
    QoSObservation,
    TriggerKind,
)

PROPS = {"response_time": STANDARD_PROPERTIES["response_time"]}


def feed(monitor, values, service="s1", prop="response_time"):
    triggers = []
    for i, value in enumerate(values):
        triggers.extend(
            monitor.observe(QoSObservation(service, prop, value, float(i)))
        )
    return triggers


class TestLinearForecast:
    def make(self, horizon=2.0, window=20):
        return QoSMonitor(
            PROPS,
            MonitorConfig(method=ForecastMethod.LINEAR, horizon=horizon,
                          window=window),
        )

    def test_flat_series_projects_flat(self):
        monitor = self.make()
        feed(monitor, [100.0] * 6)
        assert monitor.projected("s1", "response_time") == pytest.approx(100.0)

    def test_linear_ramp_extrapolates_exactly(self):
        monitor = self.make(horizon=2.0)
        feed(monitor, [100.0, 110.0, 120.0, 130.0])  # slope 10
        # Last index 3, horizon 2 -> predicted at x=5 -> 150.
        assert monitor.projected("s1", "response_time") == pytest.approx(150.0)

    def test_horizon_scales_projection(self):
        near = self.make(horizon=1.0)
        far = self.make(horizon=5.0)
        ramp = [100.0 + 10 * i for i in range(6)]
        feed(near, ramp)
        feed(far, ramp)
        assert far.projected("s1", "response_time") > near.projected(
            "s1", "response_time"
        )

    def test_window_bounds_history(self):
        monitor = self.make(window=4)
        # Old erratic values fall out of the window; only the recent flat
        # tail informs the fit.
        feed(monitor, [1000.0, 5.0, 900.0, 50.0, 50.0, 50.0, 50.0])
        assert monitor.projected("s1", "response_time") == pytest.approx(50.0)

    def test_min_samples_respected(self):
        monitor = QoSMonitor(
            PROPS,
            MonitorConfig(method=ForecastMethod.LINEAR,
                          min_samples_for_forecast=5),
        )
        feed(monitor, [1.0, 2.0, 3.0])
        assert monitor.projected("s1", "response_time") is None

    def test_forecast_trigger_fires(self):
        monitor = self.make(horizon=3.0)
        monitor.watch("s1", [QoSConstraint("response_time", "<=", 200.0)])
        triggers = feed(monitor, [100.0, 125.0, 150.0, 175.0])
        kinds = {t.kind for t in triggers}
        assert TriggerKind.FORECAST in kinds
        assert TriggerKind.VIOLATION not in kinds


class TestMethodComparison:
    @settings(max_examples=30, deadline=None)
    @given(
        st.floats(50, 500, allow_nan=False),
        st.floats(1.0, 30.0, allow_nan=False),
    )
    def test_both_methods_project_upward_on_upward_drift(self, start, slope):
        ramp = [start + slope * i for i in range(8)]
        for method in ForecastMethod:
            monitor = QoSMonitor(
                PROPS, MonitorConfig(method=method, alpha=0.5)
            )
            feed(monitor, ramp)
            projection = monitor.projected("s1", "response_time")
            assert projection is not None
            assert projection > ramp[-1] - 1e-6

    def test_linear_tracks_ramp_more_accurately_than_ewma(self):
        """On a clean linear drift, the regression's one-step error is
        smaller than the lagging EWMA's — the rationale for the thesis'
        prediction perspective."""
        ramp = [100.0 + 20.0 * i for i in range(10)]
        truth = 100.0 + 20.0 * (9 + 2)  # two steps past the end

        linear = QoSMonitor(
            PROPS, MonitorConfig(method=ForecastMethod.LINEAR, horizon=2.0)
        )
        ewma = QoSMonitor(
            PROPS,
            MonitorConfig(method=ForecastMethod.EWMA_TREND, alpha=0.3,
                          trend_gain=2.0),
        )
        feed(linear, ramp)
        feed(ewma, ramp)
        linear_error = abs(linear.projected("s1", "response_time") - truth)
        ewma_error = abs(ewma.projected("s1", "response_time") - truth)
        assert linear_error < ewma_error
