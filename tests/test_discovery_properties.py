"""Property-based guarantees of QoS-aware discovery over random registries."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.qos.properties import STANDARD_PROPERTIES
from repro.qos.values import QoSVector
from repro.semantics.matching import MatchDegree
from repro.semantics.ontology import Ontology
from repro.services.description import ServiceDescription
from repro.services.discovery import (
    DiscoveryQuery,
    QoSAwareDiscovery,
    QoSConstraint,
)
from repro.services.registry import ServiceRegistry

PROPS = {
    name: STANDARD_PROPERTIES[name]
    for name in ("response_time", "cost")
}


@st.composite
def _registries(draw):
    """A random capability tree + a registry of services over its leaves."""
    rng = random.Random(draw(st.integers(0, 10_000)))
    ontology = Ontology("disc")
    root = ontology.declare_class("cap:Root")
    depth_one = [f"cap:D{i}" for i in range(draw(st.integers(1, 3)))]
    for name in depth_one:
        ontology.declare_class(name, [root])
    leaves = []
    for parent in depth_one:
        for j in range(rng.randint(0, 2)):
            leaf = f"{parent}L{j}"
            ontology.declare_class(leaf, [parent])
            leaves.append(leaf)
    capabilities = depth_one + leaves

    registry = ServiceRegistry()
    n_services = draw(st.integers(1, 12))
    for i in range(n_services):
        registry.publish(
            ServiceDescription(
                name=f"s{i}",
                capability=rng.choice(capabilities),
                advertised_qos=QoSVector(
                    {"response_time": rng.uniform(10, 1000),
                     "cost": rng.uniform(0, 50)},
                    PROPS,
                ),
            )
        )
    query_capability = rng.choice(capabilities)
    return ontology, registry, query_capability, rng


@settings(max_examples=50, deadline=None)
@given(_registries())
def test_semantic_pool_contains_syntactic_pool(data):
    ontology, registry, capability, _ = data
    semantic = QoSAwareDiscovery(registry, ontology)
    syntactic = QoSAwareDiscovery(registry, None)
    query = DiscoveryQuery(capability)
    semantic_ids = {s.service_id for s in semantic.candidates(query)}
    syntactic_ids = {s.service_id for s in syntactic.candidates(query)}
    assert syntactic_ids <= semantic_ids


@settings(max_examples=50, deadline=None)
@given(_registries())
def test_lower_degree_threshold_is_monotone(data):
    ontology, registry, capability, _ = data
    discovery = QoSAwareDiscovery(registry, ontology)
    pools = {}
    for degree in (MatchDegree.EXACT, MatchDegree.PLUGIN,
                   MatchDegree.SUBSUME, MatchDegree.SIBLING):
        pools[degree] = {
            s.service_id
            for s in discovery.candidates(
                DiscoveryQuery(capability, minimum_degree=degree)
            )
        }
    assert pools[MatchDegree.EXACT] <= pools[MatchDegree.PLUGIN]
    assert pools[MatchDegree.PLUGIN] <= pools[MatchDegree.SUBSUME]
    assert pools[MatchDegree.SUBSUME] <= pools[MatchDegree.SIBLING]


@settings(max_examples=50, deadline=None)
@given(_registries(), st.floats(10, 1000))
def test_qos_constraints_only_ever_prune(data, bound):
    ontology, registry, capability, _ = data
    discovery = QoSAwareDiscovery(registry, ontology)
    unconstrained = {
        s.service_id for s in discovery.candidates(DiscoveryQuery(capability))
    }
    constrained = {
        s.service_id
        for s in discovery.candidates(
            DiscoveryQuery(
                capability,
                local_constraints=(
                    QoSConstraint("response_time", "<=", bound),
                ),
            )
        )
    }
    assert constrained <= unconstrained
    # And every survivor honours the bound.
    for service_id in constrained:
        service = registry.require(service_id)
        assert service.advertised_qos["response_time"] <= bound


@settings(max_examples=50, deadline=None)
@given(_registries())
def test_every_returned_candidate_satisfies_the_degree(data):
    from repro.semantics.matching import match_concepts

    ontology, registry, capability, _ = data
    discovery = QoSAwareDiscovery(registry, ontology)
    for match in discovery.discover(DiscoveryQuery(capability)):
        degree = match_concepts(ontology, capability,
                                match.service.capability)
        assert degree >= MatchDegree.PLUGIN
        assert match.degree == degree
