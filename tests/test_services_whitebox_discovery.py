"""Tests for white-box (conversation-matching) discovery."""

from __future__ import annotations

import pytest

from repro.qos.properties import STANDARD_PROPERTIES
from repro.qos.values import QoSVector
from repro.semantics.ontology import Ontology
from repro.services.description import Conversation, Operation, ServiceDescription
from repro.services.discovery import DiscoveryQuery, QoSAwareDiscovery
from repro.services.registry import ServiceRegistry
from repro.services.whitebox_discovery import (
    WhiteBoxDiscovery,
    WhiteBoxQuery,
    conversation_to_graph,
)
from repro.composition.task import Task, leaf, sequence

PROPS = {"response_time": STANDARD_PROPERTIES["response_time"]}


@pytest.fixture
def ontology():
    onto = Ontology("shop")
    onto.declare_class("op:Operation")
    for name in ("Browse", "AddToCart", "Checkout", "Pay", "Ship", "Audit"):
        onto.declare_class(f"op:{name}", ["op:Operation"])
    onto.declare_class("op:ExpressCheckout", ["op:Checkout"])
    onto.declare_class("task:Shop", ["op:Operation"])
    return onto


def conv(*steps, extra_flow=()):
    operations = tuple(Operation(name, f"op:{name}") for name in steps)
    flow = tuple(zip(steps, steps[1:])) + tuple(extra_flow)
    return Conversation(operations=operations, flow=flow)


def shop_service(name, conversation=None):
    return ServiceDescription(
        name=name, capability="task:Shop",
        advertised_qos=QoSVector({"response_time": 100.0}, PROPS),
        conversation=conversation,
    )


@pytest.fixture
def registry():
    return ServiceRegistry()


def required_behaviour():
    """The requester needs: Browse, then Checkout, then Pay."""
    return Task(
        "usage",
        sequence(leaf("B", "op:Browse"), leaf("C", "op:Checkout"),
                 leaf("P", "op:Pay")),
    )


class TestConversationToGraph:
    def test_operations_become_labelled_vertices(self):
        graph = conversation_to_graph(conv("Browse", "Pay"))
        assert graph.vertex_count() == 2
        assert graph.labels() == {"op:Browse", "op:Pay"}
        assert graph.has_edge("Browse", "Pay")

    def test_duplicate_flow_edges_collapsed(self):
        c = Conversation(
            operations=(Operation("a", "op:Browse"), Operation("b", "op:Pay")),
            flow=(("a", "b"), ("a", "b")),
        )
        graph = conversation_to_graph(c)
        assert graph.edge_count() == 1


class TestWhiteBoxDiscovery:
    def make(self, registry, ontology):
        return WhiteBoxDiscovery(QoSAwareDiscovery(registry, ontology))

    def test_matching_conversation_found(self, registry, ontology):
        registry.publish(
            shop_service("full", conv("Browse", "AddToCart", "Checkout",
                                      "Pay", "Ship"))
        )
        discovery = self.make(registry, ontology)
        matches = discovery.discover(
            WhiteBoxQuery(DiscoveryQuery("task:Shop"), required_behaviour())
        )
        assert len(matches) == 1
        assert matches[0].behaviourally_verified
        # The extra AddToCart/Ship operations are path/slack, not blockers.

    def test_wrong_order_rejected(self, registry, ontology):
        registry.publish(
            shop_service("weird", conv("Pay", "Checkout", "Browse"))
        )
        discovery = self.make(registry, ontology)
        matches = discovery.discover(
            WhiteBoxQuery(DiscoveryQuery("task:Shop"), required_behaviour())
        )
        assert matches == []

    def test_missing_operation_rejected(self, registry, ontology):
        registry.publish(
            shop_service("no-pay", conv("Browse", "Checkout", "Ship"))
        )
        discovery = self.make(registry, ontology)
        matches = discovery.discover(
            WhiteBoxQuery(DiscoveryQuery("task:Shop"), required_behaviour())
        )
        assert matches == []

    def test_semantic_operation_match(self, registry, ontology):
        registry.publish(
            shop_service("express",
                         conv("Browse", "ExpressCheckout", "Pay"))
        )
        discovery = self.make(registry, ontology)
        matches = discovery.discover(
            WhiteBoxQuery(DiscoveryQuery("task:Shop"), required_behaviour())
        )
        assert len(matches) == 1  # ExpressCheckout ⊑ Checkout: PLUGIN

    def test_black_box_excluded_by_default(self, registry, ontology):
        registry.publish(shop_service("opaque"))
        discovery = self.make(registry, ontology)
        matches = discovery.discover(
            WhiteBoxQuery(DiscoveryQuery("task:Shop"), required_behaviour())
        )
        assert matches == []

    def test_black_box_accepted_when_lenient(self, registry, ontology):
        registry.publish(shop_service("opaque"))
        registry.publish(
            shop_service("verified", conv("Browse", "Checkout", "Pay"))
        )
        discovery = self.make(registry, ontology)
        matches = discovery.discover(
            WhiteBoxQuery(DiscoveryQuery("task:Shop"), required_behaviour(),
                          require_conversation=False)
        )
        assert [m.service.name for m in matches] == ["verified", "opaque"]
        assert matches[0].behaviourally_verified
        assert not matches[1].behaviourally_verified

    def test_profile_mismatch_short_circuits(self, registry, ontology):
        registry.publish(
            ServiceDescription(
                name="other", capability="op:Audit",
                advertised_qos=QoSVector({"response_time": 1.0}, PROPS),
                conversation=conv("Browse", "Checkout", "Pay"),
            )
        )
        discovery = self.make(registry, ontology)
        matches = discovery.discover(
            WhiteBoxQuery(DiscoveryQuery("task:Shop"), required_behaviour())
        )
        assert matches == []

    def test_raw_conversation_as_requirement(self, registry, ontology):
        registry.publish(
            shop_service("full", conv("Browse", "AddToCart", "Checkout",
                                      "Pay"))
        )
        discovery = self.make(registry, ontology)
        requirement = conv("Browse", "Pay")
        matches = discovery.discover(
            WhiteBoxQuery(DiscoveryQuery("task:Shop"), requirement)
        )
        assert len(matches) == 1
