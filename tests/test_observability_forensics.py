"""Tests for forensic bundle assembly (repro.observability.forensics)."""

from __future__ import annotations

import json

import pytest

from repro.observability import Observability
from repro.observability.context import TraceContext
from repro.observability.events import (
    ADMISSION_ACCEPT,
    COMMIT,
    WORKER_CRASH,
    FlightRecorder,
)
from repro.observability.forensics import BUNDLE_SCHEMA, ForensicReporter


def _seeded_recorder():
    recorder = FlightRecorder(capacity=64)
    recorder.record(ADMISSION_ACCEPT, trace_id="t1", seq=1)
    recorder.record(ADMISSION_ACCEPT, trace_id="t2", seq=2)
    recorder.record(WORKER_CRASH, trace_id="t1", worker=0)
    recorder.record(COMMIT, trace_id="t2", ticket=1)
    return recorder


class TestTrigger:
    def test_bundle_carries_schema_reason_and_event_slices(self):
        reporter = ForensicReporter(_seeded_recorder(), last_events=3)
        bundle = reporter.trigger("worker_crash", trace_id="t1", seq=1)
        assert bundle["schema"] == BUNDLE_SCHEMA
        assert bundle["reason"] == "worker_crash"
        assert bundle["trace_id"] == "t1"
        assert len(bundle["events"]) == 3  # the last-N tail
        assert bundle["events_recorded_total"] == 4
        assert [e["kind"] for e in bundle["trace_events"]] == [
            ADMISSION_ACCEPT, WORKER_CRASH,
        ]
        assert bundle["context"] == {"seq": 1}

    def test_bundle_scopes_spans_to_the_offending_trace(self):
        obs = Observability()
        victim, bystander = TraceContext.mint(), TraceContext.mint()
        for context in (victim, bystander):
            with obs.adopt(context):
                with obs.span("runtime.request"):
                    pass
        reporter = ForensicReporter(_seeded_recorder(), observability=obs)
        bundle = reporter.trigger("worker_crash",
                                  trace_id=victim.trace_id)
        assert [s["trace_id"] for s in bundle["spans"]] == [victim.trace_id]
        assert "metrics" in bundle

    def test_unscoped_trigger_includes_all_traced_spans(self):
        obs = Observability()
        for _ in range(2):
            with obs.adopt(TraceContext.mint()):
                with obs.span("runtime.request"):
                    pass
        reporter = ForensicReporter(_seeded_recorder(), observability=obs)
        bundle = reporter.trigger("invariant_violation", violations=["x"])
        assert len(bundle["spans"]) == 2
        assert bundle["context"] == {"violations": ["x"]}

    def test_chaos_report_is_resolved_lazily_and_errors_are_captured(self):
        calls = []

        def report():
            calls.append(1)
            if len(calls) > 1:
                raise RuntimeError("chaos ledger gone")
            return {"fired": 3}

        reporter = ForensicReporter(_seeded_recorder(), chaos_report=report)
        assert not calls  # nothing resolved at construction time
        assert reporter.trigger("a")["chaos"] == {"fired": 3}
        assert "chaos ledger gone" in reporter.trigger("b")["chaos"]["error"]

    def test_max_bundles_caps_assembly_but_counts_triggers(self):
        reporter = ForensicReporter(_seeded_recorder(), max_bundles=2)
        assert reporter.trigger("one") is not None
        assert reporter.trigger("two") is not None
        assert reporter.trigger("three") is None
        assert len(reporter.bundles) == 2
        assert reporter.triggered_total == 3


class TestPersistence:
    def test_bundles_are_written_as_valid_json(self, tmp_path):
        reporter = ForensicReporter(
            _seeded_recorder(), directory=tmp_path / "forensics"
        )
        reporter.trigger("worker_crash", trace_id="t1")
        (path,) = reporter.paths
        with open(path) as handle:
            loaded = json.load(handle)
        assert loaded["schema"] == BUNDLE_SCHEMA
        assert loaded["trace_id"] == "t1"
        assert path.endswith("forensic-001-worker_crash.json")

    def test_reason_is_sanitised_in_the_filename(self, tmp_path):
        reporter = ForensicReporter(
            _seeded_recorder(), directory=tmp_path
        )
        reporter.trigger("slo breach/p99!")
        (path,) = reporter.paths
        assert path.endswith("forensic-001-slo-breach-p99-.json")

    def test_no_temp_files_left_behind(self, tmp_path):
        reporter = ForensicReporter(_seeded_recorder(), directory=tmp_path)
        reporter.trigger("one")
        reporter.trigger("two")
        leftovers = [p for p in tmp_path.iterdir()
                     if p.suffix == ".tmp"]
        assert leftovers == []
        assert len(list(tmp_path.iterdir())) == 2


class TestValidation:
    def test_last_events_must_be_positive(self):
        with pytest.raises(ValueError):
            ForensicReporter(_seeded_recorder(), last_events=0)

    def test_max_bundles_must_be_positive(self):
        with pytest.raises(ValueError):
            ForensicReporter(_seeded_recorder(), max_bundles=0)
