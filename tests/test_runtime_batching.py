"""Tests for discovery batching and whole-composition request coalescing."""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.qos.properties import STANDARD_PROPERTIES
from repro.runtime.batching import DiscoveryBatcher, RequestCoalescer
from repro.semantics.matching import MatchCache, MatchDegree
from repro.semantics.ontology import Ontology
from repro.services.discovery import DiscoveryQuery, QoSAwareDiscovery
from repro.services.generator import ServiceGenerator
from repro.services.registry import ServiceRegistry

PROPS = {
    name: STANDARD_PROPERTIES[name]
    for name in ("response_time", "cost", "availability")
}


def build_registry(capabilities=("task:Pay", "task:Browse"), count=5, seed=3):
    registry = ServiceRegistry()
    generator = ServiceGenerator(PROPS, seed=seed)
    for capability in capabilities:
        registry.publish_all(generator.candidates(capability, count))
    return registry, generator


def build_ontology(capabilities=("task:Pay", "task:Browse")):
    ontology = Ontology("batching-tests")
    root = ontology.declare_class("task:Root")
    for capability in capabilities:
        ontology.declare_class(capability, [root])
    return ontology


class TestDiscoveryBatcher:
    def test_pools_match_direct_discovery(self):
        registry, _ = build_registry()
        ontology = build_ontology()
        snapshot = registry.snapshot()
        batcher = DiscoveryBatcher(ontology=ontology,
                                   match_cache=MatchCache(ontology))
        direct = QoSAwareDiscovery(registry, ontology)
        for capability in ("task:Pay", "task:Browse"):
            batched = batcher.candidates(
                snapshot, capability, MatchDegree.PLUGIN
            )
            expected = direct.candidates(
                DiscoveryQuery(capability=capability,
                               minimum_degree=MatchDegree.PLUGIN)
            )
            assert [s.service_id for s in batched] == [
                s.service_id for s in expected
            ]

    def test_repeat_lookups_are_coalesced(self):
        registry, _ = build_registry()
        snapshot = registry.snapshot()
        batcher = DiscoveryBatcher(ontology=build_ontology())
        for _ in range(4):
            batcher.candidates(snapshot, "task:Pay", MatchDegree.PLUGIN)
        assert batcher.computed == 1
        assert batcher.lookups == 4
        assert batcher.coalesced == 3

    def test_callers_get_independent_list_copies(self):
        registry, _ = build_registry()
        snapshot = registry.snapshot()
        batcher = DiscoveryBatcher(ontology=build_ontology())
        first = batcher.candidates(snapshot, "task:Pay", MatchDegree.PLUGIN)
        first.reverse()
        second = batcher.candidates(snapshot, "task:Pay", MatchDegree.PLUGIN)
        assert [s.service_id for s in second] != [
            s.service_id for s in first
        ] or len(first) < 2

    def test_generation_change_invalidates(self):
        registry, generator = build_registry()
        batcher = DiscoveryBatcher(ontology=build_ontology())
        old = registry.snapshot()
        batcher.candidates(old, "task:Pay", MatchDegree.PLUGIN)
        registry.publish(generator.service("task:Pay"))
        fresh = registry.snapshot()
        pool = batcher.candidates(fresh, "task:Pay", MatchDegree.PLUGIN)
        assert batcher.computed == 2
        assert len(pool) == 6

    def test_concurrent_identical_lookups_compute_once(self):
        import threading

        registry, _ = build_registry(count=30)
        snapshot = registry.snapshot()
        batcher = DiscoveryBatcher(ontology=build_ontology())
        barrier = threading.Barrier(6)
        pools = []

        def worker():
            barrier.wait()
            pools.append(
                batcher.candidates(snapshot, "task:Pay", MatchDegree.PLUGIN)
            )

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
        assert batcher.computed == 1
        ids = [[s.service_id for s in pool] for pool in pools]
        assert all(pool == ids[0] for pool in ids)


class FakePlan:
    """Stands in for a CompositionPlan: the coalescer only calls clone()."""

    def __init__(self, label):
        self.label = label
        self.clones = 0

    def clone(self):
        clone = FakePlan(self.label)
        self.clones += 1
        return clone


class TestRequestCoalescer:
    def test_computes_once_per_key(self):
        coalescer = RequestCoalescer()
        calls = []

        def compute():
            calls.append(1)
            return [FakePlan("p")]

        first = coalescer.plans((0, "k"), compute)
        second = coalescer.plans((0, "k"), compute)
        assert len(calls) == 1
        assert coalescer.computed == 1 and coalescer.coalesced == 1
        assert first[0].label == second[0].label

    def test_every_caller_gets_a_clone(self):
        coalescer = RequestCoalescer()
        pristine = FakePlan("p")
        first = coalescer.plans((0, "k"), lambda: [pristine])
        second = coalescer.plans((0, "k"), lambda: [pristine])
        assert first[0] is not pristine
        assert second[0] is not pristine
        assert first[0] is not second[0]

    def test_new_generation_evicts_stale_entries(self):
        coalescer = RequestCoalescer()
        coalescer.plans((0, "k"), lambda: [FakePlan("old")])
        coalescer.plans((1, "k"), lambda: [FakePlan("new")])
        # The old generation is gone: same old key recomputes.
        coalescer.plans((0, "k"), lambda: [FakePlan("recomputed")])
        assert coalescer.computed == 3

    def test_failed_computation_propagates_and_retries(self):
        coalescer = RequestCoalescer()

        def boom():
            raise ReproError("selection blew up")

        with pytest.raises(ReproError):
            coalescer.plans((0, "k"), boom)
        # The failure is not cached: a later caller computes fresh.
        plans = coalescer.plans((0, "k"), lambda: [FakePlan("ok")])
        assert plans[0].label == "ok"

    def test_concurrent_identical_requests_compose_once(self):
        import threading
        import time

        coalescer = RequestCoalescer()
        barrier = threading.Barrier(6)
        calls = []

        def compute():
            calls.append(1)
            time.sleep(0.01)  # widen the in-flight window
            return [FakePlan("p")]

        results = []

        def worker():
            barrier.wait()
            results.append(coalescer.plans((0, "k"), compute))

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
        assert len(calls) == 1
        assert len(results) == 6
        assert len({id(r[0]) for r in results}) == 6  # all clones
