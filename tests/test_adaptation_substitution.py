"""Tests for the service substitution strategy."""

from __future__ import annotations

import pytest

from repro.errors import SubstitutionError
from repro.qos.properties import STANDARD_PROPERTIES
from repro.qos.values import QoSVector
from repro.services.description import ServiceDescription
from repro.services.generator import ServiceGenerator
from repro.adaptation.monitoring import QoSMonitor, QoSObservation
from repro.adaptation.substitution import ServiceSubstitution
from repro.composition.qassa import QASSA, QassaConfig
from repro.composition.request import GlobalConstraint, UserRequest
from repro.composition.selection import CandidateSets
from repro.composition.task import Task, leaf, sequence

PROPS = {
    name: STANDARD_PROPERTIES[name]
    for name in ("response_time", "cost", "availability")
}


@pytest.fixture
def plan():
    task = Task("t", sequence(leaf("A", "task:A"), leaf("B", "task:B")))
    generator = ServiceGenerator(PROPS, seed=5)
    candidates = CandidateSets(
        task,
        {a.name: generator.candidates(a.capability, 12)
         for a in task.activities},
    )
    request = UserRequest(
        task,
        constraints=(GlobalConstraint.at_most("response_time", 1e9),),
        weights={n: 1.0 for n in PROPS},
    )
    return QASSA(PROPS, config=QassaConfig(alternates_kept=3)).select(
        request, candidates
    )


class TestSubstitution:
    def test_replaces_with_preselected_alternate(self, plan):
        failing = plan.selections["A"].primary
        substitution = ServiceSubstitution(PROPS)
        result = substitution.substitute(plan, failing.service_id)
        assert result.removed == failing
        assert result.replacement != failing
        assert not result.used_fresh_candidates
        assert plan.selections["A"].primary == result.replacement
        assert plan.feasible

    def test_unknown_service_raises(self, plan):
        with pytest.raises(SubstitutionError):
            ServiceSubstitution(PROPS).substitute(plan, "svc-ghost")

    def test_aggregate_updated_after_substitution(self, plan):
        before = plan.aggregated_qos
        failing = plan.selections["B"].primary
        ServiceSubstitution(PROPS).substitute(plan, failing.service_id)
        after = plan.aggregated_qos
        # Aggregate recomputed with replacement's advertised QoS.
        assert isinstance(after, QoSVector)
        assert after is not before

    def test_no_alternates_no_fresh_raises(self, plan):
        # Strip alternates so the strategy has nothing to try.
        for selection in plan.selections.values():
            selection.services = [selection.primary]
        failing = plan.selections["A"].primary
        with pytest.raises(SubstitutionError):
            ServiceSubstitution(PROPS).substitute(plan, failing.service_id)

    def test_fresh_candidates_used_as_fallback(self, plan):
        for selection in plan.selections.values():
            selection.services = [selection.primary]
        failing = plan.selections["A"].primary
        generator = ServiceGenerator(PROPS, seed=99)
        fresh = generator.candidates("task:A", 5)
        result = ServiceSubstitution(PROPS).substitute(
            plan, failing.service_id, fresh_candidates=fresh
        )
        assert result.used_fresh_candidates
        assert result.replacement in fresh

    def test_infeasible_replacements_skipped(self, plan):
        """A substitute that would break the constraints is not chosen."""
        request = plan.request
        # Tighten the constraint so only sufficiently fast services fit.
        current_rt = plan.aggregated_qos["response_time"]
        tight = UserRequest(
            plan.task,
            constraints=(
                GlobalConstraint.at_most("response_time", current_rt * 1.2),
            ),
            weights=request.weights,
        )
        plan.request = tight
        failing = plan.selections["A"].primary
        substitution = ServiceSubstitution(PROPS)
        try:
            result = substitution.substitute(plan, failing.service_id)
        except SubstitutionError:
            return  # acceptable: no alternate keeps it feasible
        assert tight.satisfied_by(plan.aggregated_qos)
        assert result.replacement != failing

    def test_runtime_estimates_influence_decision(self, plan):
        """Monitored degradation of a surviving service is accounted for."""
        monitor = QoSMonitor(PROPS)
        surviving = plan.selections["B"].primary
        # B's real response time is catastrophically higher than advertised.
        monitor.observe(
            QoSObservation(surviving.service_id, "response_time", 5e8, 0.0)
        )
        plan.request = UserRequest(
            plan.task,
            constraints=(GlobalConstraint.at_most("response_time", 1e6),),
            weights=plan.request.weights,
        )
        failing = plan.selections["A"].primary
        substitution = ServiceSubstitution(PROPS, monitor=monitor)
        with pytest.raises(SubstitutionError):
            # No replacement for A can compensate B's measured 5e8 ms.
            substitution.substitute(plan, failing.service_id)
