"""Tests for the per-service circuit breaker state machine and registry."""

from __future__ import annotations

import pytest

from repro.execution.clock import SimulatedClock
from repro.observability import Observability
from repro.resilience import (
    BreakerRegistry,
    BreakerState,
    CircuitBreaker,
    CircuitBreakerPolicy,
)

POLICY = CircuitBreakerPolicy(
    window=4, min_calls=3, failure_rate_threshold=0.5,
    cooldown_s=10.0, half_open_successes=1,
)


def make_breaker(clock=None):
    return CircuitBreaker("svc-1", POLICY, clock or SimulatedClock())


class TestStateMachine:
    def test_starts_closed_and_allows(self):
        breaker = make_breaker()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()

    def test_failures_below_min_calls_keep_it_closed(self):
        breaker = make_breaker()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED

    def test_failure_rate_trips_open(self):
        breaker = make_breaker()
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()

    def test_successes_dilute_the_window(self):
        breaker = make_breaker()
        # Window of 4: three successes then one failure = 25% < 50%.
        for _ in range(3):
            breaker.record_success()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED

    def test_window_is_rolling(self):
        breaker = make_breaker()
        for _ in range(4):
            breaker.record_success()
        # Old successes roll out of the 4-wide window as failures arrive.
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN

    def test_cooldown_turns_half_open_on_sim_clock(self):
        clock = SimulatedClock()
        breaker = make_breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        assert not breaker.allow()
        clock.advance(9.9)
        assert not breaker.allow()
        clock.advance(0.1)
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.allow()

    def test_half_open_success_closes(self):
        clock = SimulatedClock()
        breaker = make_breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        # A single fresh failure must not instantly re-trip: the outcome
        # window was cleared on close.
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_failure_reopens_and_restarts_cooldown(self):
        clock = SimulatedClock()
        breaker = make_breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        breaker.record_failure()  # failed probe
        assert breaker.state is BreakerState.OPEN
        clock.advance(9.9)
        assert not breaker.allow()
        clock.advance(0.1)
        assert breaker.allow()

    def test_multiple_half_open_successes_required(self):
        clock = SimulatedClock()
        policy = CircuitBreakerPolicy(
            window=4, min_calls=3, failure_rate_threshold=0.5,
            cooldown_s=10.0, half_open_successes=2,
        )
        breaker = CircuitBreaker("svc-1", policy, clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        breaker.record_success()
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED


class TestRegistry:
    def test_unknown_service_allowed_without_creating_state(self):
        registry = BreakerRegistry(POLICY)
        assert registry.allow("ghost")
        assert registry.states() == []

    def test_record_creates_and_drives_breakers(self):
        registry = BreakerRegistry(POLICY, clock=SimulatedClock())
        for _ in range(3):
            registry.record("svc-a", False)
        registry.record("svc-b", True)
        assert registry.state("svc-a") is BreakerState.OPEN
        assert registry.state("svc-b") is BreakerState.CLOSED
        assert not registry.allow("svc-a")
        assert registry.allow("svc-b")
        assert registry.open_count() == 1

    def test_breaker_state_gauge_and_transition_counter(self):
        obs = Observability()
        registry = BreakerRegistry(
            POLICY, clock=SimulatedClock(), observability=obs
        )
        for _ in range(3):
            registry.record("svc-a", False)
        assert obs.metrics.value("breaker_state", service="svc-a") == 2.0
        assert obs.metrics.value(
            "breaker_transitions_total", to="open"
        ) == 1.0
        registry.clock.advance(10.0)
        registry.record("svc-a", True)
        assert obs.metrics.value("breaker_state", service="svc-a") == 0.0
