"""Tests for the middleware's ranked composition and SLA tracking surface."""

from __future__ import annotations

import pytest

from repro.middleware.qasom import QASOM
from repro.env.scenarios import build_shopping_scenario


@pytest.fixture
def scenario():
    return build_shopping_scenario(seed=123)


@pytest.fixture
def middleware(scenario):
    return QASOM.for_environment(
        scenario.environment,
        scenario.properties,
        ontology=scenario.ontology,
        repository=scenario.repository,
    )


class TestComposeRanked:
    def test_ranked_alternatives_for_user_choice(self, middleware, scenario):
        plans = middleware.submit(scenario.request, execute=False, ranked=3).alternatives()
        assert 1 <= len(plans) <= 3
        utilities = [p.utility for p in plans]
        assert utilities == sorted(utilities, reverse=True)
        for plan in plans:
            assert plan.feasible

    def test_any_ranked_plan_executes(self, middleware, scenario):
        plans = middleware.submit(scenario.request, execute=False, ranked=2).alternatives()
        # The user may pick any proposed composition, not just the best.
        chosen = plans[-1]
        result = middleware.submit(plan=chosen).result()
        assert result.report.invocations


class TestSlaTracking:
    def test_disabled_by_default(self, middleware, scenario):
        result = middleware.run(scenario.request)
        assert result.compliance is None

    def test_tracker_populated_when_enabled(self, middleware, scenario):
        plan = middleware.submit(scenario.request, execute=False).plan()
        # Snapshot before execution: adaptation may rewrite the ranked
        # lists afterwards, but the SLAs were derived from this state.
        expected = float(sum(
            len(selection.services)
            for selection in plan.selections.values()
        ))
        result = middleware.submit(plan=plan, track_sla=True).result()
        tracker = result.compliance
        assert tracker is not None
        summary = tracker.summary()
        assert summary["agreements"] == expected
        assert summary["observations"] > 0

    def test_breaches_surface_in_tracker(self, middleware, scenario):
        """Degrading every link hard makes observed response times blow the
        per-service shares — the tracker must report the breaches."""
        plan = middleware.submit(scenario.request, execute=False).plan()
        for device in scenario.environment.devices():
            scenario.environment.degrade_link(device.device_id, fraction=1.0)
        result = middleware.submit(plan=plan, adapt=False, track_sla=True).result()
        tracker = result.compliance
        if result.report.invocations and any(
            r.observed_qos for r in result.report.invocations
        ):
            assert tracker.summary()["violations"] >= 1


class TestInfrastructureAwareComposition:
    def test_degraded_host_avoided_when_aware(self, scenario):
        """Two otherwise-equal Browse providers; one's link is crippled.
        The infrastructure-aware middleware selects around it."""
        from repro.middleware.config import MiddlewareConfig

        aware = QASOM.for_environment(
            scenario.environment, scenario.properties,
            ontology=scenario.ontology,
            config=MiddlewareConfig(infrastructure_aware=True),
        )
        plan_before = aware.submit(scenario.request, execute=False).plan()
        victim = plan_before.selections["Browse"].primary
        scenario.environment.degrade_link(victim.host_device, fraction=1.0)
        plan_after = aware.submit(scenario.request, execute=False).plan()
        # Either the middleware moved off the degraded host, or it kept it
        # but accounted for the degradation in the aggregate (estimate >
        # raw advertisement).
        if plan_after.selections["Browse"].primary == victim:
            raw = scenario.environment.registry.require(
                victim.service_id
            ).advertised_qos["response_time"]
            estimated = plan_after.selections["Browse"].primary.advertised_qos[
                "response_time"
            ]
            assert estimated > raw
        else:
            assert plan_after.selections["Browse"].primary != victim

    def test_unaware_middleware_keeps_raw_advertisements(self, scenario):
        middleware = QASOM.for_environment(
            scenario.environment, scenario.properties,
            ontology=scenario.ontology,
        )
        plan = middleware.submit(scenario.request, execute=False).plan()
        for selection in plan.selections.values():
            raw = scenario.environment.registry.require(
                selection.primary.service_id
            ).advertised_qos
            assert selection.primary.advertised_qos == raw
