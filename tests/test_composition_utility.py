"""Tests for SAW utility normalisation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QoSModelError
from repro.qos.properties import AVAILABILITY, COST, RESPONSE_TIME
from repro.qos.values import QoSVector
from repro.composition.utility import (
    Normalizer,
    composition_utility,
    service_utility,
)

PROPS = {
    "response_time": RESPONSE_TIME,
    "cost": COST,
    "availability": AVAILABILITY,
}


def vec(**values):
    return QoSVector(values, PROPS)


@pytest.fixture
def normalizer():
    return Normalizer(
        PROPS,
        {
            "response_time": (0.0, 100.0),
            "cost": (0.0, 10.0),
            "availability": (0.5, 1.0),
        },
    )


class TestNormalise:
    def test_negative_property_best_at_low_end(self, normalizer):
        assert normalizer.normalise("response_time", 0.0) == 1.0
        assert normalizer.normalise("response_time", 100.0) == 0.0
        assert normalizer.normalise("response_time", 50.0) == pytest.approx(0.5)

    def test_positive_property_best_at_high_end(self, normalizer):
        assert normalizer.normalise("availability", 1.0) == 1.0
        assert normalizer.normalise("availability", 0.5) == 0.0

    def test_out_of_span_values_clipped(self, normalizer):
        assert normalizer.normalise("response_time", -10.0) == 1.0
        assert normalizer.normalise("response_time", 1000.0) == 0.0

    def test_degenerate_span_scores_one(self):
        flat = Normalizer(PROPS, {"cost": (5.0, 5.0)})
        assert flat.normalise("cost", 5.0) == 1.0

    def test_inverted_span_rejected(self):
        with pytest.raises(QoSModelError):
            Normalizer(PROPS, {"cost": (10.0, 1.0)})

    def test_unknown_property_raises(self, normalizer):
        with pytest.raises(QoSModelError):
            normalizer.normalise("karma", 1.0)


class TestFromVectors:
    def test_spans_from_population(self):
        population = [vec(cost=1.0), vec(cost=9.0), vec(cost=4.0)]
        normalizer = Normalizer.from_vectors(population, {"cost": COST})
        assert normalizer.span("cost") == (1.0, 9.0)

    def test_missing_property_falls_back_to_value_range(self):
        normalizer = Normalizer.from_vectors([vec(cost=1.0)],
                                             {"availability": AVAILABILITY})
        assert normalizer.span("availability") == AVAILABILITY.value_range

    def test_scales(self, normalizer):
        assert normalizer.scales()["response_time"] == 100.0

    def test_single_candidate_degenerate_spans_score_one(self):
        # One candidate: every span collapses to a point and every value of
        # that candidate normalises to 1.0 (nothing in the population beats it).
        only = vec(response_time=120.0, cost=3.0, availability=0.9)
        normalizer = Normalizer.from_vectors([only], PROPS)
        for name in PROPS:
            assert normalizer.span(name) == (only[name], only[name])
            assert normalizer.normalise(name, only[name]) == 1.0
        weights = {"response_time": 0.5, "cost": 0.3, "availability": 0.2}
        assert service_utility(only, normalizer, weights) == pytest.approx(1.0)

    def test_disjoint_property_subsets(self):
        # Candidates advertising disjoint property subsets: each property's
        # span comes only from the vectors that carry it.
        population = [
            vec(response_time=100.0),
            vec(response_time=300.0),
            vec(cost=2.0),
        ]
        normalizer = Normalizer.from_vectors(population, PROPS)
        assert normalizer.span("response_time") == (100.0, 300.0)
        # "cost" appears once → degenerate span, normalises to best.
        assert normalizer.span("cost") == (2.0, 2.0)
        assert normalizer.normalise("cost", 2.0) == 1.0
        # "availability" appears nowhere → value_range fallback.
        assert normalizer.span("availability") == AVAILABILITY.value_range

    def test_empty_population_all_value_range_fallback(self):
        normalizer = Normalizer.from_vectors([], PROPS)
        for name, prop in PROPS.items():
            assert normalizer.span(name) == prop.value_range


class TestUtility:
    def test_best_vector_scores_one(self, normalizer):
        weights = {"response_time": 0.5, "cost": 0.3, "availability": 0.2}
        best = vec(response_time=0.0, cost=0.0, availability=1.0)
        assert service_utility(best, normalizer, weights) == pytest.approx(1.0)

    def test_worst_vector_scores_zero(self, normalizer):
        weights = {"response_time": 0.5, "cost": 0.3, "availability": 0.2}
        worst = vec(response_time=100.0, cost=10.0, availability=0.5)
        assert service_utility(worst, normalizer, weights) == pytest.approx(0.0)

    def test_missing_property_contributes_zero(self, normalizer):
        weights = {"response_time": 0.5, "cost": 0.5}
        partial = vec(response_time=0.0)
        assert service_utility(partial, normalizer, weights) == pytest.approx(0.5)

    def test_weights_scale_contributions(self, normalizer):
        skewed = {"response_time": 1.0, "cost": 0.0, "availability": 0.0}
        fast_dear = vec(response_time=0.0, cost=10.0, availability=0.5)
        assert service_utility(fast_dear, normalizer, skewed) == pytest.approx(1.0)

    def test_composition_utility_matches_service_utility(self, normalizer):
        weights = {"cost": 1.0}
        aggregated = vec(cost=5.0)
        assert composition_utility(aggregated, normalizer, weights) == (
            service_utility(aggregated, normalizer, weights)
        )


@settings(max_examples=80, deadline=None)
@given(
    st.floats(0, 100, allow_nan=False),
    st.floats(0, 10, allow_nan=False),
    st.floats(0.5, 1.0, allow_nan=False),
)
def test_utility_always_in_unit_interval(rt, cost, avail):
    normalizer = Normalizer(
        PROPS,
        {"response_time": (0.0, 100.0), "cost": (0.0, 10.0),
         "availability": (0.5, 1.0)},
    )
    weights = {"response_time": 0.4, "cost": 0.4, "availability": 0.2}
    utility = service_utility(
        vec(response_time=rt, cost=cost, availability=avail),
        normalizer, weights,
    )
    assert 0.0 <= utility <= 1.0


@settings(max_examples=60, deadline=None)
@given(
    st.floats(0, 100, allow_nan=False),
    st.floats(0, 100, allow_nan=False),
)
def test_utility_monotone_in_response_time(rt_fast, rt_slow):
    """A strictly faster service never scores lower (all else equal)."""
    if rt_fast > rt_slow:
        rt_fast, rt_slow = rt_slow, rt_fast
    normalizer = Normalizer(PROPS, {"response_time": (0.0, 100.0)})
    weights = {"response_time": 1.0}
    fast = service_utility(vec(response_time=rt_fast), normalizer, weights)
    slow = service_utility(vec(response_time=rt_slow), normalizer, weights)
    assert fast >= slow
