"""Tests for the distributed QASSA variant."""

from __future__ import annotations

import pytest

from repro.errors import SelectionError
from repro.qos.properties import STANDARD_PROPERTIES
from repro.services.generator import ServiceGenerator
from repro.composition.distributed import (
    AdHocLink,
    DistributedQASSA,
    NodeAssignment,
    round_robin_nodes,
)
from repro.composition.qassa import QASSA
from repro.composition.request import GlobalConstraint, UserRequest
from repro.composition.selection import CandidateSets
from repro.composition.task import Task, leaf, sequence

PROPS = {
    name: STANDARD_PROPERTIES[name]
    for name in ("response_time", "cost", "availability")
}


@pytest.fixture
def problem():
    task = Task(
        "p", sequence(*[leaf(f"A{i}", f"task:C{i}") for i in range(4)])
    )
    generator = ServiceGenerator(PROPS, seed=3)
    candidates = CandidateSets(
        task,
        {a.name: generator.candidates(a.capability, 10)
         for a in task.activities},
    )
    request = UserRequest(
        task,
        constraints=(GlobalConstraint.at_most("response_time", 1e9),),
        weights={n: 1.0 for n in PROPS},
    )
    return request, candidates


class TestRoundRobin:
    def test_spread(self):
        nodes = round_robin_nodes(["A", "B", "C", "D", "E"], 2)
        assert [n.activity_names for n in nodes] == [["A", "C", "E"], ["B", "D"]]

    def test_more_nodes_than_activities(self):
        nodes = round_robin_nodes(["A"], 4)
        assert len(nodes) == 1  # empty nodes dropped

    def test_zero_nodes_rejected(self):
        with pytest.raises(SelectionError):
            round_robin_nodes(["A"], 0)


class TestPartitionValidation:
    def test_duplicate_assignment_rejected(self, problem):
        request, candidates = problem
        nodes = [
            NodeAssignment("n1", ["A0", "A1"]),
            NodeAssignment("n2", ["A1", "A2", "A3"]),
        ]
        with pytest.raises(SelectionError):
            DistributedQASSA(PROPS).select(request, candidates, nodes)

    def test_uncovered_activity_rejected(self, problem):
        request, candidates = problem
        nodes = [NodeAssignment("n1", ["A0", "A1"])]
        with pytest.raises(SelectionError):
            DistributedQASSA(PROPS).select(request, candidates, nodes)


class TestDistributedSelection:
    def test_matches_centralized_outcome(self, problem):
        request, candidates = problem
        nodes = round_robin_nodes(candidates.activity_names(), 2)
        distributed_plan, _ = DistributedQASSA(PROPS).select(
            request, candidates, nodes
        )
        centralized_plan = QASSA(PROPS).select(request, candidates)
        assert distributed_plan.service_ids() == centralized_plan.service_ids()
        assert distributed_plan.utility == pytest.approx(
            centralized_plan.utility
        )

    def test_timing_decomposition(self, problem):
        request, candidates = problem
        nodes = round_robin_nodes(candidates.activity_names(), 2)
        plan, timing = DistributedQASSA(PROPS).select(request, candidates, nodes)
        assert timing.local_phase_seconds > 0
        assert timing.global_phase_seconds > 0
        assert timing.transmission_seconds > 0
        assert timing.total_seconds == pytest.approx(
            timing.local_phase_seconds
            + timing.transmission_seconds
            + timing.global_phase_seconds
        )
        assert len(timing.per_node_seconds) == 2
        assert plan.statistics.extra["nodes"] == 2.0

    def test_local_phase_is_max_over_nodes(self, problem):
        request, candidates = problem
        nodes = round_robin_nodes(candidates.activity_names(), 4)
        _, timing = DistributedQASSA(PROPS).select(request, candidates, nodes)
        assert timing.local_phase_seconds == pytest.approx(
            max(timing.per_node_seconds.values())
        )


class TestAdHocLink:
    def test_transfer_time_model(self):
        link = AdHocLink(latency_seconds=0.01,
                         bandwidth_bytes_per_second=1000.0)
        assert link.transfer_seconds(500) == pytest.approx(0.51)

    def test_slower_link_increases_transmission(self, problem):
        request, candidates = problem
        nodes = round_robin_nodes(candidates.activity_names(), 2)
        fast = DistributedQASSA(PROPS, link=AdHocLink(0.001, 1e7))
        slow = DistributedQASSA(PROPS, link=AdHocLink(0.2, 1e4))
        _, fast_timing = fast.select(request, candidates, nodes)
        _, slow_timing = slow.select(request, candidates, nodes)
        assert slow_timing.transmission_seconds > fast_timing.transmission_seconds
