"""Regression guard: disabled observability must stay near-free.

The acceptance bar for the observability layer is that a default
(disabled) middleware pays at most 5% overhead on the selection +
execution path compared to the uninstrumented code.  The only code the
instrumentation adds to the disabled path is (a) ``obs.enabled`` checks
and (b) null-object span context managers — so rather than comparing two
builds (the pre-instrumentation code no longer exists), this test bounds
the *budget*: it counts how many instrumentation touchpoints one run
actually executes, measures the per-touchpoint cost of the null path, and
asserts the product is below 5% of the measured workload time.  Bounds
are deliberately generous; timing noise shrinks the budget by using the
fastest observed workload run.
"""

from __future__ import annotations

import time

from repro.env.scenarios import build_shopping_scenario
from repro.experiments.harness import measure
from repro.middleware.qasom import QASOM
from repro.observability import NULL_OBSERVABILITY, Observability


def _middleware(scenario, obs=None):
    return QASOM.for_environment(
        scenario.environment,
        scenario.properties,
        ontology=scenario.ontology,
        repository=scenario.repository,
        observability=obs,
    )


def _workload(middleware, request):
    plan = middleware.submit(request, execute=False).plan()
    return middleware.submit(plan=plan).result()


def _count_touchpoints():
    """(spans, metric updates) one shopping run really performs."""
    scenario = build_shopping_scenario()
    obs = Observability(clock=scenario.environment.clock)
    middleware = _middleware(scenario, obs)
    _workload(middleware, scenario.request)
    spans = len(obs.tracer.all_spans())
    metric_ops = 0
    for record in obs.metrics.snapshot():
        if record["type"] == "counter":
            metric_ops += int(record["value"])
        elif record["type"] == "histogram":
            metric_ops += int(record["summary"]["count"])
        else:
            metric_ops += 1
    return spans, metric_ops


def _null_span_cost(iterations: int = 20000) -> float:
    """Per-span cost of the disabled path (shared null context manager)."""
    obs = NULL_OBSERVABILITY
    started = time.perf_counter()
    for _ in range(iterations):
        with obs.span("invoke", activity="Pay", attempt=1) as span:
            span.set(succeeded=True)
    return (time.perf_counter() - started) / iterations


def _enabled_check_cost(iterations: int = 20000) -> float:
    """Per-check cost of the ``obs.enabled`` guard every metric hook runs
    (on the disabled path the guarded body never executes)."""
    obs = NULL_OBSERVABILITY
    started = time.perf_counter()
    for _ in range(iterations):
        if obs.enabled:
            raise AssertionError("null observability reports enabled")
    return (time.perf_counter() - started) / iterations


class TestDisabledOverhead:
    def test_default_middleware_is_fully_disabled(self):
        scenario = build_shopping_scenario()
        middleware = _middleware(scenario)
        assert middleware.observability is NULL_OBSERVABILITY
        result = _workload(middleware, scenario.request)
        assert result.trace is None
        assert middleware.observability.spans == ()
        assert middleware.observability.metrics.snapshot() == []

    def test_disabled_instrumentation_within_five_percent_budget(self):
        scenario = build_shopping_scenario()
        middleware = _middleware(scenario)
        _workload(middleware, scenario.request)  # warm-up

        timing, _ = measure(
            lambda: _workload(middleware, scenario.request), repetitions=5
        )
        # The fastest run is the least noisy estimate of the true cost —
        # and the *smallest* (hardest) budget to fit under.
        workload = timing.minimum

        spans, metric_ops = _count_touchpoints()
        assert spans > 0 and metric_ops > 0, (
            "an enabled run recorded no instrumentation"
        )
        span_cost = _null_span_cost()
        check_cost = _enabled_check_cost()

        budget = 0.05 * workload
        spent = spans * span_cost + metric_ops * check_cost
        assert spent <= budget, (
            f"disabled instrumentation costs {spent * 1e6:.1f}µs "
            f"({spans} spans × {span_cost * 1e9:.0f}ns + {metric_ops} "
            f"enabled-checks × {check_cost * 1e9:.0f}ns) — over the 5% "
            f"budget of {budget * 1e6:.1f}µs for a "
            f"{workload * 1e3:.2f}ms workload"
        )

    def test_null_span_issue_is_allocation_free(self):
        # The disabled path must not allocate a span per call — the shared
        # singleton is what keeps the per-touchpoint cost in nanoseconds.
        first = NULL_OBSERVABILITY.span("a", x=1)
        second = NULL_OBSERVABILITY.span("b")
        assert first is second
