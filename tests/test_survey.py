"""Tests for the Chapter II survey taxonomy and comparison tables.

Beyond encoding the tables, the key test checks that QASOM's *actual code*
occupies the design-space cell the thesis claims for it — the survey module
must never drift from the implementation.
"""

from __future__ import annotations

import pytest

from repro.survey import (
    AdaptationSubject,
    AdaptationTiming,
    ConstraintScope,
    ModelReach,
    ModelSemantics,
    QASOM_POSITION,
    QsdStyle,
    SelectionStrategy,
    TABLE_II1,
    TABLE_II2,
    render_survey_table,
)


class TestTables:
    def test_table_ii1_is_non_pervasive(self):
        assert all(not p.pervasive for p in TABLE_II1)
        assert len(TABLE_II1) >= 6

    def test_table_ii2_is_pervasive(self):
        assert all(p.pervasive for p in TABLE_II2)
        assert len(TABLE_II2) >= 6

    def test_render_tables(self):
        t1 = render_survey_table(pervasive=False)
        t2 = render_survey_table(pervasive=True)
        assert "METEOR-S" in t1 and "QASOM" not in t1
        assert "Amigo" in t2 and "QASOM (this work)" in t2

    def test_platform_names_unique(self):
        names = [p.name for p in TABLE_II1 + TABLE_II2]
        assert len(names) == len(set(names))


class TestQasomPositionMatchesTheCode:
    """The survey row for QASOM must describe what the code actually does."""

    def test_semantic_model(self):
        # The code resolves user terms through ontology subsumption.
        from repro.qos.model import build_end_to_end_model

        model = build_end_to_end_model()
        assert model.resolve_term("uqos:Speed")
        assert QASOM_POSITION.model_semantics is ModelSemantics.SEMANTIC

    def test_end_to_end_reach(self):
        # The code estimates service QoS from infrastructure state.
        from repro.qos.dependencies import CrossLayerEstimator

        assert CrossLayerEstimator is not None
        assert QASOM_POSITION.model_reach is ModelReach.END_TO_END

    def test_white_box_qsd(self):
        # The code folds per-operation conversation QoS.
        from repro.services.conversation_qos import aggregate_conversation

        assert aggregate_conversation is not None
        assert QASOM_POSITION.qsd is QsdStyle.WHITE_BOX

    def test_global_constraints_heuristic_selection(self):
        # GlobalConstraint bounds the whole composition; QASSA is the
        # clustering heuristic.
        from repro.composition.qassa import QASSA
        from repro.composition.request import GlobalConstraint

        assert GlobalConstraint and QASSA
        assert QASOM_POSITION.constraint_scope is ConstraintScope.GLOBAL
        assert QASOM_POSITION.selection is SelectionStrategy.HEURISTIC

    def test_proactive_adaptation(self):
        # The monitor raises FORECAST triggers before the breach.
        from repro.adaptation.monitoring import TriggerKind

        assert TriggerKind.FORECAST is not None
        assert QASOM_POSITION.adaptation_timing is AdaptationTiming.PROACTIVE

    def test_adaptation_subjects(self):
        # Substitution changes the service; behavioural adaptation changes
        # the behaviour.
        from repro.adaptation.behavioural import BehaviouralAdaptation
        from repro.adaptation.substitution import ServiceSubstitution

        assert ServiceSubstitution and BehaviouralAdaptation
        assert set(QASOM_POSITION.adaptation_subjects) == {
            AdaptationSubject.SERVICE, AdaptationSubject.BEHAVIOUR,
        }
