"""Tests for the adaptation manager (escalating strategies)."""

from __future__ import annotations

import pytest

from repro.errors import AdaptationError
from repro.qos.properties import AggregationKind, STANDARD_PROPERTIES
from repro.services.discovery import QoSConstraint
from repro.services.generator import ServiceGenerator
from repro.adaptation.manager import (
    AdaptationAction,
    AdaptationManager,
)
from repro.adaptation.monitoring import (
    AdaptationTrigger,
    QoSMonitor,
    QoSObservation,
    TriggerKind,
)
from repro.adaptation.substitution import ServiceSubstitution
from repro.composition.qassa import QASSA, QassaConfig
from repro.composition.request import GlobalConstraint, UserRequest
from repro.composition.selection import CandidateSets
from repro.composition.task import Task, leaf, sequence

PROPS = {
    name: STANDARD_PROPERTIES[name]
    for name in ("response_time", "cost", "availability")
}


def build_plan(seed=21):
    task = Task("t", sequence(leaf("A", "task:A"), leaf("B", "task:B")))
    generator = ServiceGenerator(PROPS, seed=seed)
    candidates = CandidateSets(
        task,
        {a.name: generator.candidates(a.capability, 15)
         for a in task.activities},
    )
    request = UserRequest(
        task,
        constraints=(
            GlobalConstraint.at_most("response_time", 1e9),
            GlobalConstraint.at_least("availability", 0.0),
        ),
        weights={n: 1.0 for n in PROPS},
    )
    return QASSA(PROPS, config=QassaConfig(alternates_kept=3)).select(
        request, candidates
    )


def make_manager(plan):
    monitor = QoSMonitor(PROPS)
    manager = AdaptationManager(
        PROPS, monitor, ServiceSubstitution(PROPS, monitor)
    )
    manager.deploy(plan)
    return manager, monitor


def failure_trigger(service_id):
    return AdaptationTrigger(
        kind=TriggerKind.FAILURE,
        service_id=service_id,
        property_name="availability",
        observed=0.0,
        projected=None,
        bound=None,
        timestamp=1.0,
    )


class TestDeploy:
    def test_deploy_watches_all_primaries(self):
        plan = build_plan()
        manager, monitor = make_manager(plan)
        for selection in plan.selections.values():
            bounds = monitor._watches.get(selection.primary.service_id)
            assert bounds  # per-service bounds installed

    def test_additive_budget_split_evenly(self):
        plan = build_plan()
        manager, _ = make_manager(plan)
        constraint = QoSConstraint("response_time", "<=", 1000.0)
        bound = manager._per_service_bound(constraint, PROPS["response_time"], 4)
        assert bound.bound == pytest.approx(250.0)

    def test_multiplicative_bound_takes_root(self):
        plan = build_plan()
        manager, _ = make_manager(plan)
        constraint = QoSConstraint("availability", ">=", 0.81)
        bound = manager._per_service_bound(constraint, PROPS["availability"], 2)
        assert bound.bound == pytest.approx(0.9)

    def test_handle_before_deploy_raises(self):
        monitor = QoSMonitor(PROPS)
        manager = AdaptationManager(
            PROPS, monitor, ServiceSubstitution(PROPS, monitor)
        )
        with pytest.raises(AdaptationError):
            manager.handle(failure_trigger("svc-x"))


class TestHandling:
    def test_substitution_on_failure_trigger(self):
        plan = build_plan()
        manager, monitor = make_manager(plan)
        failing = plan.selections["A"].primary
        outcome = manager.handle(failure_trigger(failing.service_id))
        assert outcome.action is AdaptationAction.SUBSTITUTION
        assert outcome.substitution is not None
        assert plan.selections["A"].primary != failing
        # Monitoring moved to the replacement.
        replacement_id = outcome.substitution.replacement.service_id
        assert replacement_id in monitor._watches
        assert failing.service_id not in monitor._watches

    def test_stale_trigger_ignored(self):
        plan = build_plan()
        manager, _ = make_manager(plan)
        outcome = manager.handle(failure_trigger("svc-long-gone"))
        assert outcome.action is AdaptationAction.NONE

    def test_failed_when_no_strategy_works(self):
        plan = build_plan()
        # Remove all alternates so substitution has nothing, and no
        # behavioural strategy configured.
        for selection in plan.selections.values():
            selection.services = [selection.primary]
        manager, _ = make_manager(plan)
        failing = plan.selections["A"].primary
        outcome = manager.handle(failure_trigger(failing.service_id))
        assert outcome.action is AdaptationAction.FAILED
        assert outcome.error

    def test_log_and_summary(self):
        plan = build_plan()
        manager, _ = make_manager(plan)
        failing = plan.selections["A"].primary
        manager.handle(failure_trigger(failing.service_id))
        manager.handle(failure_trigger("svc-ghost"))
        assert len(manager.log) == 2
        summary = manager.summary()
        assert summary.get("substitution") == 1
        assert summary.get("none") == 1

    def test_monitor_trigger_flows_into_substitution(self):
        """End-to-end inside the adaptation framework: a violating
        observation leads to a substitution."""
        plan = build_plan()
        monitor = QoSMonitor(PROPS)
        manager = AdaptationManager(
            PROPS, monitor, ServiceSubstitution(PROPS, monitor)
        )
        manager.deploy(plan)
        outcomes = []
        monitor.subscribe(lambda t: outcomes.append(manager.handle(t)))
        failing = plan.selections["A"].primary
        monitor.observe(
            QoSObservation(failing.service_id, "response_time", 1e12, 0.0)
        )
        assert outcomes
        assert outcomes[0].action is AdaptationAction.SUBSTITUTION
