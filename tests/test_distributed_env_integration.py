"""Tests for partitioning distributed QASSA over a real environment."""

from __future__ import annotations

import pytest

from repro.qos.properties import STANDARD_PROPERTIES
from repro.services.generator import ServiceGenerator
from repro.composition.distributed import (
    DistributedQASSA,
    nodes_from_environment,
)
from repro.composition.request import UserRequest
from repro.composition.selection import CandidateSets
from repro.composition.task import Task, leaf, sequence
from repro.env.device import DeviceClass
from repro.env.environment import PervasiveEnvironment

PROPS = {
    name: STANDARD_PROPERTIES[name]
    for name in ("response_time", "cost", "availability")
}


@pytest.fixture
def setting():
    """Two provider devices, each hosting one capability's candidates."""
    environment = PervasiveEnvironment(seed=9)
    generator = ServiceGenerator(PROPS, seed=9)
    environment.add_device("vendor-1", DeviceClass.SMARTPHONE)
    environment.add_device("vendor-2", DeviceClass.SMARTPHONE)
    for service in generator.candidates("task:A", 6):
        environment.host(service, "vendor-1")
    for service in generator.candidates("task:B", 6):
        environment.host(service, "vendor-2")

    task = Task("t", sequence(leaf("A", "task:A"), leaf("B", "task:B")))
    candidates = CandidateSets(
        task,
        {
            "A": environment.registry.by_capability("task:A"),
            "B": environment.registry.by_capability("task:B"),
        },
    )
    request = UserRequest(task, weights={n: 1.0 for n in PROPS})
    return environment, task, candidates, request


class TestNodesFromEnvironment:
    def test_activities_follow_their_hosts(self, setting):
        environment, task, candidates, request = setting
        nodes = nodes_from_environment(candidates, environment)
        by_node = {n.node_id: n.activity_names for n in nodes}
        assert by_node == {"vendor-1": ["A"], "vendor-2": ["B"]}

    def test_plurality_wins_for_mixed_hosting(self, setting):
        environment, task, candidates, request = setting
        # Move one A-candidate to vendor-2: vendor-1 still holds 5/6.
        stray = candidates["A"][0]
        stray.host_device = "vendor-2"
        nodes = nodes_from_environment(candidates, environment)
        by_node = {n.node_id: n.activity_names for n in nodes}
        assert "A" in by_node["vendor-1"]

    def test_unhosted_candidates_fall_to_coordinator(self):
        environment = PervasiveEnvironment(seed=10)
        generator = ServiceGenerator(PROPS, seed=10)
        task = Task("t", sequence(leaf("A", "task:A")))
        candidates = CandidateSets(
            task, {"A": generator.candidates("task:A", 3)}
        )
        nodes = nodes_from_environment(candidates, environment)
        assert [n.node_id for n in nodes] == ["coordinator"]

    def test_distributed_run_over_environment_partition(self, setting):
        environment, task, candidates, request = setting
        nodes = nodes_from_environment(candidates, environment)
        plan, timing = DistributedQASSA(PROPS).select(
            request, candidates, nodes
        )
        assert plan.feasible
        assert set(timing.per_node_seconds) == {"vendor-1", "vendor-2"}
