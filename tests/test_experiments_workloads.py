"""Tests for experiment workload generation."""

from __future__ import annotations

import pytest

from repro.composition.aggregation import AggregationApproach
from repro.composition.baselines import ExhaustiveSelection
from repro.composition.task import Conditional, Loop, Parallel
from repro.errors import SelectionError
from repro.services.generator import QoSDistribution
from repro.experiments.workloads import (
    CONSTRAINT_ORDER,
    EXPERIMENT_PROPERTIES,
    WorkloadSpec,
    constraints_at_tightness,
    make_task,
    make_workload,
)


class TestMakeTask:
    def test_sequential_task_size(self):
        task = make_task(7)
        assert task.size() == 7
        assert not task.has_pattern(Parallel)

    def test_mixed_task_has_all_patterns(self):
        task = make_task(10, mixed_patterns=True)
        assert task.size() == 10
        assert task.has_pattern(Parallel)
        assert task.has_pattern(Conditional)
        assert task.has_pattern(Loop)

    def test_small_task_stays_sequential(self):
        task = make_task(3, mixed_patterns=True)
        assert task.size() == 3
        assert not task.has_pattern(Parallel)


class TestMakeWorkload:
    def test_default_workload_shape(self):
        workload = make_workload(WorkloadSpec(activities=4,
                                              services_per_activity=10,
                                              constraints=3))
        assert workload.task.size() == 4
        assert all(n == 10 for n in workload.candidates.sizes().values())
        assert len(workload.request.constraints) == 3
        names = [c.property_name for c in workload.request.constraints]
        assert names == list(CONSTRAINT_ORDER[:3])

    def test_workload_is_deterministic(self):
        a = make_workload(WorkloadSpec(seed=5))
        b = make_workload(WorkloadSpec(seed=5))
        assert [c.bound for c in a.request.constraints] == (
            [c.bound for c in b.request.constraints]
        )

    def test_tightness_one_is_always_feasible(self):
        workload = make_workload(
            WorkloadSpec(activities=3, services_per_activity=5,
                         constraints=4, tightness=1.0)
        )
        plan = ExhaustiveSelection(workload.properties).select(
            workload.request, workload.candidates
        )
        assert plan.feasible

    def test_tightness_zero_is_barely_feasible(self):
        """At tightness 0 the bound equals the best achievable aggregate; at
        most the single best assignment survives."""
        workload = make_workload(
            WorkloadSpec(activities=2, services_per_activity=4,
                         constraints=1, tightness=0.0)
        )
        try:
            plan = ExhaustiveSelection(workload.properties).select(
                workload.request, workload.candidates
            )
        except SelectionError:
            return  # acceptable: float rounding made it infeasible
        # Feasible: bound must be met with (near-)zero slack.
        constraint = workload.request.constraints[0]
        value = plan.aggregated_qos[constraint.property_name]
        assert constraint.slack(value) <= 1e-6 + abs(constraint.bound) * 1e-9

    def test_normal_offset_constraints(self):
        workload = make_workload(
            WorkloadSpec(activities=3, services_per_activity=5,
                         constraints=2,
                         distribution=QoSDistribution.NORMAL),
            sigma_offset=1.0,
        )
        rt = next(
            c for c in workload.request.constraints
            if c.property_name == "response_time"
        )
        law = workload.generator.law("response_time")
        assert rt.bound == pytest.approx(3 * (law.mean + law.stddev))

    def test_mixed_patterns_flag(self):
        workload = make_workload(
            WorkloadSpec(activities=8, mixed_patterns=True,
                         services_per_activity=4)
        )
        assert workload.task.has_pattern(Loop)


class TestConstraintsAtTightness:
    def test_bounds_interpolate(self):
        workload = make_workload(
            WorkloadSpec(activities=3, services_per_activity=6, constraints=0)
        )
        loose = constraints_at_tightness(
            workload.task, workload.candidates, workload.properties,
            ["response_time"], 1.0,
        )[0]
        tight = constraints_at_tightness(
            workload.task, workload.candidates, workload.properties,
            ["response_time"], 0.0,
        )[0]
        mid = constraints_at_tightness(
            workload.task, workload.candidates, workload.properties,
            ["response_time"], 0.5,
        )[0]
        assert tight.bound < mid.bound < loose.bound

    def test_positive_property_direction(self):
        workload = make_workload(
            WorkloadSpec(activities=2, services_per_activity=5, constraints=0)
        )
        constraint = constraints_at_tightness(
            workload.task, workload.candidates, workload.properties,
            ["availability"], 0.5,
        )[0]
        assert constraint.operator == ">="
