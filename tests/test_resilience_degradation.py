"""Tests for graceful degradation: optional activities and partial reports."""

from __future__ import annotations

import pytest

from repro.qos.properties import STANDARD_PROPERTIES
from repro.qos.values import QoSVector
from repro.services.generator import ServiceGenerator
from repro.composition.qassa import QASSA, QassaConfig
from repro.composition.request import GlobalConstraint, UserRequest
from repro.composition.selection import CandidateSets
from repro.composition.task import Task, leaf, sequence
from repro.execution.engine import ExecutionEngine
from repro.middleware.config import MiddlewareConfig
from repro.middleware.qasom import QASOM
from repro.observability import Observability
from repro.env.device import DeviceClass
from repro.env.environment import EnvironmentConfig, PervasiveEnvironment
from repro.resilience import (
    DegradationPolicy,
    FaultSchedule,
    PartialExecutionReport,
    ResilienceConfig,
    RetryPolicy,
)

PROPS = {
    name: STANDARD_PROPERTIES[name]
    for name in ("response_time", "cost", "availability")
}


def build_plan(tree, seed=41, alternates=5):
    task = Task("t", tree)
    generator = ServiceGenerator(PROPS, seed=seed)
    candidates = CandidateSets(
        task,
        {a.name: generator.candidates(a.capability, 8)
         for a in task.activities},
    )
    request = UserRequest(
        task,
        constraints=(GlobalConstraint.at_most("response_time", 1e9),),
        weights={n: 1.0 for n in PROPS},
    )
    return QASSA(PROPS, config=QassaConfig(alternates_kept=alternates)).select(
        request, candidates
    )


def selective_invoker(dead_capability):
    """Succeed everywhere except services providing ``dead_capability``."""

    def invoke(service, timestamp):
        if service.capability == dead_capability:
            return None
        return QoSVector({"response_time": 50.0, "cost": 1.0}, PROPS)

    return invoke


OPTIONAL_TREE = sequence(
    leaf("A", "task:A"),
    leaf("B", "task:B", optional=True),
    leaf("C", "task:C"),
)


class TestActivityFlag:
    def test_optional_defaults_false(self):
        assert not leaf("A", "task:A").activity.optional

    def test_leaf_passes_optional_through(self):
        assert leaf("B", "task:B", optional=True).activity.optional


class TestEngineDegradation:
    def test_optional_activity_is_skipped_when_exhausted(self):
        plan = build_plan(OPTIONAL_TREE)
        obs = Observability()
        engine = ExecutionEngine(
            PROPS, selective_invoker("task:B"),
            retry=RetryPolicy(max_attempts=2, jitter=0.0),
            degradation=DegradationPolicy(),
            observability=obs,
        )
        report = engine.execute(plan)
        assert report.succeeded
        assert report.degraded
        assert report.skipped_activities == ["B"]
        # A and C still ran to completion around the skip.
        assert [r.activity_name for r in report.invocations if r.succeeded] \
            == ["A", "C"]
        assert obs.metrics.value("activities_skipped_total") == 1.0

    def test_required_activity_still_fails_the_run(self):
        plan = build_plan(OPTIONAL_TREE)
        engine = ExecutionEngine(
            PROPS, selective_invoker("task:A"),
            retry=RetryPolicy(max_attempts=2, jitter=0.0),
            degradation=DegradationPolicy(),
        )
        report = engine.execute(plan)
        assert not report.succeeded
        assert report.failed_activity == "A"
        assert not report.degraded

    def test_disabled_policy_fails_even_optional_activities(self):
        plan = build_plan(OPTIONAL_TREE)
        engine = ExecutionEngine(
            PROPS, selective_invoker("task:B"),
            retry=RetryPolicy(max_attempts=2, jitter=0.0),
            degradation=DegradationPolicy(enabled=False),
        )
        report = engine.execute(plan)
        assert not report.succeeded
        assert report.failed_activity == "B"

    def test_no_policy_means_no_degradation(self):
        plan = build_plan(OPTIONAL_TREE)
        engine = ExecutionEngine(
            PROPS, selective_invoker("task:B"),
            retry=RetryPolicy(max_attempts=2, jitter=0.0),
        )
        report = engine.execute(plan)
        assert not report.succeeded


class TestPartialReport:
    def run_degraded(self, penalty=0.15):
        plan = build_plan(OPTIONAL_TREE)
        engine = ExecutionEngine(
            PROPS, selective_invoker("task:B"),
            retry=RetryPolicy(max_attempts=2, jitter=0.0),
            degradation=DegradationPolicy(),
        )
        report = engine.execute(plan)
        policy = DegradationPolicy(utility_penalty_per_skip=penalty)
        return plan, PartialExecutionReport.from_run(plan, report, policy)

    def test_accounts_for_completed_and_skipped(self):
        _, partial = self.run_degraded()
        assert partial.completed_activities == ["A", "C"]
        assert partial.skipped_activities == ["B"]
        assert partial.degraded
        assert partial.completion_ratio == pytest.approx(2 / 3)

    def test_utility_penalty_math(self):
        plan, partial = self.run_degraded(penalty=0.2)
        assert partial.planned_utility == pytest.approx(plan.utility)
        assert partial.degraded_utility == pytest.approx(plan.utility * 0.8)
        assert partial.utility_penalty == pytest.approx(plan.utility * 0.2)

    def test_degraded_utility_clamped_at_zero(self):
        # Two skips at 0.6 penalty each would go negative without the clamp.
        plan = build_plan(OPTIONAL_TREE)
        engine = ExecutionEngine(
            PROPS, selective_invoker("task:B"),
            retry=RetryPolicy(max_attempts=2, jitter=0.0),
            degradation=DegradationPolicy(),
        )
        report = engine.execute(plan)
        report.skipped_activities.append("B2")  # synthetic second skip
        partial = PartialExecutionReport.from_run(
            plan, report, DegradationPolicy(utility_penalty_per_skip=0.6)
        )
        assert partial.degraded_utility == 0.0


class TestQasomSurface:
    def make_qasom(self, generator_seed=9):
        environment = PervasiveEnvironment(
            EnvironmentConfig(qos_noise=0.0), seed=5
        )
        generator = ServiceGenerator(PROPS, seed=generator_seed)
        for capability in ("task:A", "task:B", "task:C"):
            for _ in range(3):
                service = environment.host_on_new_device(
                    generator.service(capability), DeviceClass.SERVER
                )
                service = service.with_qos(QoSVector(
                    {"response_time": 100.0, "cost": 1.0,
                     "availability": 1.0}, PROPS,
                ))
                environment.registry.publish(service)
        config = MiddlewareConfig(
            resilience=ResilienceConfig(
                enabled=True,
                retry=RetryPolicy(max_attempts=2, jitter=0.0),
            )
        )
        return environment, QASOM(environment, PROPS, config=config)

    def request(self):
        task = Task("t", OPTIONAL_TREE)
        return UserRequest(
            task,
            constraints=(GlobalConstraint.at_most("response_time", 1e9),),
            weights={n: 1.0 for n in PROPS},
        )

    def test_execute_surfaces_partial_report(self):
        environment, qasom = self.make_qasom()
        plan = qasom.submit(self.request(), execute=False).plan()
        # Kill every provider of the optional activity B before running.
        schedule = FaultSchedule.kill_services(
            [s.service_id for s in environment.registry.services()
             if s.capability == "task:B"],
            between=(0.0, 0.0),
        )
        environment.schedule_faults(schedule)
        result = qasom.submit(plan=plan, adapt=False).result()
        assert result.report.succeeded
        assert result.partial is not None
        assert result.partial.skipped_activities == ["B"]
        assert result.partial.degraded_utility < result.partial.planned_utility

    def test_full_completion_has_no_partial(self):
        _, qasom = self.make_qasom()
        plan = qasom.submit(self.request(), execute=False).plan()
        result = qasom.submit(plan=plan, adapt=False).result()
        assert result.report.succeeded
        assert result.partial is None
