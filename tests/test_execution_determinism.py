"""Determinism regressions: identical seeds ⇒ identical execution traces.

The whole experimental claim of the reproduction rests on runs being
replayable: with the same seeds, the engine must produce the same
invocation sequence — under retries, conditional branches, loops, and a
replayed fault schedule alike.  Service ids come from a process-global
counter, so traces are normalised to creation-order positions before
comparison.
"""

from __future__ import annotations

import random

from repro.qos.properties import STANDARD_PROPERTIES
from repro.qos.values import QoSVector
from repro.services.generator import ServiceGenerator
from repro.composition.qassa import QASSA, QassaConfig
from repro.composition.request import GlobalConstraint, UserRequest
from repro.composition.selection import CandidateSets
from repro.composition.task import Task, conditional, leaf, loop, sequence
from repro.execution.engine import ExecutionEngine
from repro.middleware.config import MiddlewareConfig
from repro.middleware.qasom import QASOM
from repro.env.device import DeviceClass
from repro.env.environment import EnvironmentConfig, PervasiveEnvironment
from repro.resilience import FaultSchedule, ResilienceConfig, RetryPolicy

PROPS = {
    name: STANDARD_PROPERTIES[name]
    for name in ("response_time", "cost", "availability")
}

BRANCHY_TREE = sequence(
    leaf("A", "task:A"),
    conditional(
        sequence(leaf("B1", "task:B")),
        sequence(leaf("B2", "task:B")),
        probabilities=[0.5, 0.5],
    ),
    loop(sequence(leaf("C", "task:C")), max_iterations=4),
    leaf("D", "task:D"),
)


def build_plan(tree, seed=41):
    task = Task("t", tree)
    generator = ServiceGenerator(PROPS, seed=seed)
    candidates = CandidateSets(
        task,
        {a.name: generator.candidates(a.capability, 6)
         for a in task.activities},
    )
    request = UserRequest(
        task,
        constraints=(GlobalConstraint.at_most("response_time", 1e9),),
        weights={n: 1.0 for n in PROPS},
    )
    return QASSA(PROPS, config=QassaConfig(alternates_kept=4)).select(
        request, candidates
    )


def normalised_trace(plan, report):
    """(activity, provider position, time, attempt, ok) per invocation."""
    order = {}
    for name in sorted(plan.selections):
        for service in plan.selections[name].services:
            order.setdefault(service.service_id, len(order))
    return [
        (
            r.activity_name,
            order.get(r.service_id, -1),
            round(r.started_at, 9),
            r.attempt,
            r.succeeded,
        )
        for r in report.invocations
    ]


def flaky_invoker(seed, fail_rate=0.3):
    rng = random.Random(seed)

    def invoke(service, timestamp):
        if rng.random() < fail_rate:
            return None
        return QoSVector({"response_time": 40.0, "cost": 1.0}, PROPS)

    return invoke


def engine_trace(engine_seed=7, invoker_seed=3):
    plan = build_plan(BRANCHY_TREE)
    engine = ExecutionEngine(
        PROPS, flaky_invoker(invoker_seed), seed=engine_seed,
        retry=RetryPolicy(max_attempts=3, backoff_base_s=0.1, jitter=0.2),
    )
    return normalised_trace(plan, engine.execute(plan))


class TestEngineDeterminism:
    def test_identical_seeds_identical_traces(self):
        assert engine_trace() == engine_trace()

    def test_different_invoker_seed_changes_the_trace(self):
        assert engine_trace(invoker_seed=3) != engine_trace(invoker_seed=4)

    def test_retries_do_not_perturb_control_flow(self):
        # The backoff jitter draws from a dedicated RNG stream, so the
        # conditional/loop draws — hence the set of *activities* executed —
        # are identical whether providers fail or not.
        def activities(invoker):
            plan = build_plan(BRANCHY_TREE)
            engine = ExecutionEngine(
                PROPS, invoker, seed=7,
                retry=RetryPolicy(max_attempts=3, backoff_base_s=0.1,
                                  jitter=0.5),
            )
            report = engine.execute(plan)
            path = []
            for record in report.invocations:
                if record.succeeded:
                    path.append(record.activity_name)
            return path

        def healthy(service, timestamp):
            return QoSVector({"response_time": 40.0, "cost": 1.0}, PROPS)

        fail_first = {}

        def flaky_once(service, timestamp):
            # Every activity's first attempt fails, forcing one retry each.
            key = service.capability
            if not fail_first.get(key):
                fail_first[key] = True
                return None
            return healthy(service, timestamp)

        assert activities(healthy) == activities(flaky_once)


def qasom_trace(run_seed=17, with_faults=True):
    """A full middleware run under a replayed fault schedule."""
    environment = PervasiveEnvironment(
        EnvironmentConfig(qos_noise=0.05), seed=run_seed
    )
    generator = ServiceGenerator(PROPS, seed=run_seed + 1)
    creation_order = {}
    for capability in ("task:A", "task:B", "task:C", "task:D"):
        for _ in range(4):
            service = environment.host_on_new_device(
                generator.service(capability), DeviceClass.SERVER
            )
            service = service.with_qos(QoSVector(
                {"response_time": 80.0, "cost": 1.0, "availability": 0.95},
                PROPS,
            ))
            environment.registry.publish(service)
            creation_order[service.service_id] = len(creation_order)

    config = MiddlewareConfig(
        seed=run_seed,
        resilience=ResilienceConfig(
            enabled=True,
            retry=RetryPolicy(max_attempts=3, backoff_base_s=0.05,
                              jitter=0.3),
        ),
    )
    qasom = QASOM(environment, PROPS, config=config)
    task = Task("t", BRANCHY_TREE)
    request = UserRequest(
        task,
        constraints=(GlobalConstraint.at_most("response_time", 1e9),),
        weights={n: 1.0 for n in PROPS},
    )
    plan = qasom.submit(request, execute=False).plan()

    if with_faults:
        bound = sorted({s.service_id for s in plan.binding().values()})
        schedule = FaultSchedule.kill_fraction(
            bound, fraction=0.5, between=(0.0, 0.2), seed=run_seed,
        )
        environment.schedule_faults(schedule)
    result = qasom.submit(plan=plan, adapt=False).result()
    return [
        (
            r.activity_name,
            creation_order[r.service_id],
            round(r.started_at, 9),
            r.attempt,
            r.succeeded,
        )
        for r in result.report.invocations
    ]


class TestMiddlewareDeterminism:
    def test_fault_schedule_replay_is_deterministic(self):
        first = qasom_trace()
        second = qasom_trace()
        assert first == second
        # The schedule actually bit: killed primaries forced the binder
        # onto different providers than the fault-free twin run used.
        assert first != qasom_trace(with_faults=False)

    def test_different_seed_differs(self):
        assert qasom_trace(17) != qasom_trace(23)
