"""Differential fuzzing of the selection path against the exact oracle.

Every selector — QASSA, the four baselines and the branch-and-bound
oracle itself — is thrown at seeded randomized instances from
:mod:`repro.experiments.fuzzing` and cross-checked:

* the oracle is byte-identical to ``ExhaustiveSelection`` on every
  tractable instance (optimum *and* best-effort fallback, including the
  first-in-enumeration-order tie-break) while expanding a fraction of the
  enumeration's nodes;
* heuristics never beat the oracle's utility, never return a feasible
  plan when the oracle proves infeasibility, and never mislabel their
  own plan's feasibility;
* QASSA's optimality gap over the sweep stays within the paper's
  near-optimal band.

The pinned seeds below lock in instances that exercise the trickiest
paths (infeasibility proofs, single-activity tasks, loop-heavy pattern
trees, each aggregation approach).  If a future change makes any of them
diverge, the failing seed reproduces the instance exactly.
"""

from __future__ import annotations

import pytest

from repro.experiments.fuzzing import (
    FuzzSpec,
    check_instance,
    fuzz_sweep,
    generate_instance,
)

# The CI sweep: fixed seeds, fully deterministic, a few hundred ms.
SMOKE_SEEDS = tuple(range(40))

#: Seeds pinned because they cover paths a uniform sweep can miss:
#: proven-infeasible instances (14, 20, 25, 33), single-activity tasks
#: (5, 7, 10), the largest tractable instance in the smoke band (54, the
#: node-efficiency witness), and one per aggregation approach (0, 2, 3).
PINNED_SEEDS = (0, 2, 3, 5, 7, 10, 14, 20, 25, 33, 54)

#: Degenerate envelope — tiny pools (1-2 services) with many constraints,
#: where dominance fixing can empty a pool and tie-breaks dominate.
DEGENERATE_SPEC = FuzzSpec(max_activities=3, max_services=2, max_constraints=5)
DEGENERATE_SEEDS = tuple(range(5000, 5020))


@pytest.fixture(scope="module")
def reports():
    return fuzz_sweep(SMOKE_SEEDS)


class TestDifferentialSweep:
    def test_no_divergences(self, reports):
        failures = [
            f"seed={r.seed}: {'; '.join(r.divergences)}"
            for r in reports
            if not r.ok
        ]
        assert not failures, "\n".join(failures)

    def test_sweep_covers_both_outcomes(self, reports):
        # The seed band must exercise feasible AND proven-infeasible
        # instances, or the feasibility-agreement check is vacuous.
        outcomes = {r.oracle_feasible for r in reports}
        assert outcomes == {True, False}

    def test_oracle_node_efficiency(self, reports):
        # On the largest feasible instance of the sweep the oracle must
        # expand at most 10% of the nodes full enumeration would visit.
        witness = max(
            (r for r in reports if r.oracle_feasible),
            key=lambda r: r.search_space,
        )
        assert witness.oracle_nodes <= 0.10 * witness.search_space, (
            f"seed={witness.seed}: {witness.oracle_nodes:.0f} nodes for a "
            f"{witness.search_space}-assignment space"
        )

    def test_qassa_gap_bound(self, reports):
        gaps = [r.qassa_gap for r in reports if r.qassa_gap is not None]
        assert len(gaps) >= 20
        assert min(gaps) >= 0.90
        assert sum(gaps) / len(gaps) >= 0.99


class TestPinnedRegressions:
    @pytest.mark.parametrize("seed", PINNED_SEEDS)
    def test_pinned_seed(self, seed):
        report = check_instance(generate_instance(seed))
        assert report.ok, f"seed={seed}: {'; '.join(report.divergences)}"

    @pytest.mark.parametrize("seed", DEGENERATE_SEEDS)
    def test_degenerate_envelope(self, seed):
        report = check_instance(
            generate_instance(seed, DEGENERATE_SPEC), DEGENERATE_SPEC
        )
        assert report.ok, f"seed={seed}: {'; '.join(report.divergences)}"

    def test_generator_is_deterministic(self):
        a = generate_instance(54)
        b = generate_instance(54)
        assert a.request.constraints == b.request.constraints
        assert a.approach is b.approach
        assert [
            [s.name for s in a.candidates[name]]
            for name in a.candidates.activity_names()
        ] == [
            [s.name for s in b.candidates[name]]
            for name in b.candidates.activity_names()
        ]


class TestVectorizedKernelSweep:
    """Scalar vs vectorized QASSA: 40 seeds, byte-identical or bust."""

    #: Pattern-heavy envelope: loops and conditionals exercise every
    #: branch of the batched aggregation-bounds kernel.
    VECTOR_SPEC = FuzzSpec(
        max_activities=6, max_services=16, max_constraints=4,
        pattern_probability=0.7, tractable_cap=100_000,
    )
    VECTOR_SEEDS = tuple(range(40))

    def test_forty_seed_sweep_is_byte_identical(self):
        numpy = pytest.importorskip("numpy")
        assert numpy is not None
        from repro.experiments.fuzzing import vectorized_sweep

        results = vectorized_sweep(self.VECTOR_SEEDS, self.VECTOR_SPEC)
        failures = [
            f"seed={seed}: {'; '.join(divergences)}"
            for seed, divergences in results.items()
            if divergences
        ]
        assert failures == [], "\n".join(failures)
        assert len(results) == 40
