"""Tests for counters, gauges and histograms (repro.observability.metrics)."""

from __future__ import annotations

import pytest

from repro.observability import MetricsRegistry, NULL_METRICS
from repro.observability.metrics import Histogram, NULL_METRIC


class TestCounter:
    def test_get_or_create_and_increment(self):
        registry = MetricsRegistry()
        registry.counter("invocations_total").inc()
        registry.counter("invocations_total").inc(2)
        assert registry.value("invocations_total") == 3

    def test_labels_partition_series(self):
        registry = MetricsRegistry()
        registry.counter("invocations_total", status="ok").inc()
        registry.counter("invocations_total", status="failed").inc(4)
        assert registry.value("invocations_total", status="ok") == 1
        assert registry.value("invocations_total", status="failed") == 4
        assert registry.value("invocations_total") is None

    def test_counters_only_go_up(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("x").inc(-1)


class TestGauge:
    def test_set_and_add(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("pool_size")
        gauge.set(10)
        gauge.add(-3)
        assert registry.value("pool_size") == 7


class TestHistogram:
    def test_count_sum_min_max_mean(self):
        histogram = Histogram("h", buckets=(1.0, 2.0, 5.0))
        for value in (0.5, 1.5, 4.0, 10.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.total == 16.0
        assert histogram.minimum == 0.5
        assert histogram.maximum == 10.0
        assert histogram.mean == 4.0

    def test_bucket_assignment_with_overflow(self):
        histogram = Histogram("h", buckets=(1.0, 2.0))
        for value in (0.1, 0.9, 1.5, 99.0):
            histogram.observe(value)
        assert histogram.counts == [2, 1, 1]

    def test_quantiles_are_bucket_bound_estimates(self):
        histogram = Histogram("h", buckets=(1.0, 2.0, 5.0, 10.0))
        for value in [0.5] * 50 + [1.5] * 40 + [8.0] * 10:
            histogram.observe(value)
        assert histogram.quantile(0.5) == 1.0
        assert histogram.quantile(0.9) == 2.0
        assert histogram.quantile(0.99) == 10.0 or histogram.quantile(0.99) == 8.0

    def test_quantile_clamped_to_observed_range(self):
        histogram = Histogram("h", buckets=(100.0,))
        histogram.observe(3.0)
        assert histogram.quantile(0.5) == 3.0

    def test_empty_histogram_summary(self):
        histogram = Histogram("h", buckets=(1.0,))
        summary = histogram.summary()
        assert summary["count"] == 0
        assert summary["min"] == 0.0
        assert summary["p99"] == 0.0

    def test_quantile_validation(self):
        histogram = Histogram("h", buckets=(1.0,))
        with pytest.raises(ValueError):
            histogram.quantile(0.0)
        with pytest.raises(ValueError):
            histogram.quantile(1.5)


class TestRegistrySnapshot:
    def test_snapshot_is_json_shaped_and_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b_total").inc()
        registry.gauge("a_gauge").set(1.0)
        registry.histogram("c_hist", buckets=(1.0,)).observe(0.5)
        snapshot = registry.snapshot()
        assert [r["name"] for r in snapshot] == ["a_gauge", "b_total", "c_hist"]
        histogram_record = snapshot[2]
        assert histogram_record["type"] == "histogram"
        assert histogram_record["summary"]["count"] == 1.0

    def test_reset_clears_everything(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        registry.reset()
        assert registry.snapshot() == []


class TestNullRegistry:
    def test_null_registry_hands_out_shared_sink(self):
        assert NULL_METRICS.counter("a") is NULL_METRIC
        assert NULL_METRICS.gauge("b") is NULL_METRIC
        assert NULL_METRICS.histogram("c") is NULL_METRIC

    def test_null_sink_is_inert(self):
        NULL_METRIC.inc()
        NULL_METRIC.set(5)
        NULL_METRIC.observe(1.0)
        assert NULL_METRICS.snapshot() == []
        assert NULL_METRICS.value("a") is None
