"""Tests for counters, gauges and histograms (repro.observability.metrics)."""

from __future__ import annotations

import pytest

from repro.observability import MetricsRegistry, NULL_METRICS
from repro.observability.metrics import Histogram, NULL_METRIC


class TestCounter:
    def test_get_or_create_and_increment(self):
        registry = MetricsRegistry()
        registry.counter("invocations_total").inc()
        registry.counter("invocations_total").inc(2)
        assert registry.value("invocations_total") == 3

    def test_labels_partition_series(self):
        registry = MetricsRegistry()
        registry.counter("invocations_total", status="ok").inc()
        registry.counter("invocations_total", status="failed").inc(4)
        assert registry.value("invocations_total", status="ok") == 1
        assert registry.value("invocations_total", status="failed") == 4
        assert registry.value("invocations_total") is None

    def test_counters_only_go_up(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("x").inc(-1)


class TestGauge:
    def test_set_and_add(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("pool_size")
        gauge.set(10)
        gauge.add(-3)
        assert registry.value("pool_size") == 7


class TestHistogram:
    def test_count_sum_min_max_mean(self):
        histogram = Histogram("h", buckets=(1.0, 2.0, 5.0))
        for value in (0.5, 1.5, 4.0, 10.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.total == 16.0
        assert histogram.minimum == 0.5
        assert histogram.maximum == 10.0
        assert histogram.mean == 4.0

    def test_bucket_assignment_with_overflow(self):
        histogram = Histogram("h", buckets=(1.0, 2.0))
        for value in (0.1, 0.9, 1.5, 99.0):
            histogram.observe(value)
        assert histogram.counts == [2, 1, 1]

    def test_quantiles_interpolate_within_the_bucket(self):
        histogram = Histogram("h", buckets=(1.0, 2.0, 5.0, 10.0))
        for value in [0.5] * 50 + [1.5] * 40 + [8.0] * 10:
            histogram.observe(value)
        # p50: rank 50 of 100 sits at the end of the first bucket, whose
        # span is [min=0.5, 1.0] -> 0.5 + (50/50)*0.5 = 1.0.
        assert histogram.quantile(0.5) == pytest.approx(1.0)
        # p90: rank 90, 40th of 40 in bucket (1.0, 2.0] -> its upper edge.
        assert histogram.quantile(0.9) == pytest.approx(2.0)
        # p99: rank 99, 9th of 10 in bucket (5.0, 10.0], clamped to the
        # observed maximum 8.0 (interpolation alone would say 9.5).
        assert histogram.quantile(0.99) == pytest.approx(8.0)
        # Interior interpolation: rank 70 is the 20th of 40 observations
        # in bucket (1.0, 2.0] -> 1.0 + (20/40)*1.0 = 1.5.
        assert histogram.quantile(0.7) == pytest.approx(1.5)

    def test_quantile_clamped_to_observed_range(self):
        histogram = Histogram("h", buckets=(100.0,))
        histogram.observe(3.0)
        assert histogram.quantile(0.5) == 3.0

    def test_empty_histogram_summary(self):
        histogram = Histogram("h", buckets=(1.0,))
        summary = histogram.summary()
        assert summary["count"] == 0
        assert summary["min"] == 0.0
        assert summary["p99"] == 0.0

    def test_quantile_validation(self):
        histogram = Histogram("h", buckets=(1.0,))
        with pytest.raises(ValueError):
            histogram.quantile(0.0)
        with pytest.raises(ValueError):
            histogram.quantile(1.5)


class TestHistogramEdgeCases:
    def test_empty_histogram_quantiles_and_mean(self):
        histogram = Histogram("h", buckets=(1.0, 2.0))
        assert histogram.quantile(0.5) == 0.0
        assert histogram.mean == 0.0
        summary = histogram.summary()
        assert summary["p95"] == 0.0 and summary["p999"] == 0.0

    def test_single_observation_pins_every_quantile(self):
        histogram = Histogram("h", buckets=(1.0, 2.0, 5.0))
        histogram.observe(1.7)
        for q in (0.01, 0.5, 0.95, 0.999, 1.0):
            assert histogram.quantile(q) == pytest.approx(1.7)
        summary = histogram.summary()
        assert summary["min"] == summary["max"] == 1.7

    def test_overflow_bucket_interpolates_toward_the_maximum(self):
        histogram = Histogram("h", buckets=(1.0,))
        for value in (5.0, 10.0, 20.0):
            histogram.observe(value)
        # All mass in the overflow bucket [1.0, max=20.0]; quantiles stay
        # inside the observed range and are monotone in q.
        q50, q99 = histogram.quantile(0.5), histogram.quantile(0.99)
        assert 5.0 <= q50 <= q99 <= 20.0

    def test_unsorted_custom_bucket_bounds_are_sorted(self):
        histogram = Histogram("h", buckets=(5.0, 1.0, 2.0))
        assert histogram.buckets == (1.0, 2.0, 5.0)
        histogram.observe(1.5)
        assert histogram.counts == [0, 1, 0, 0]

    def test_summary_exposes_p95_and_p999(self):
        histogram = Histogram("h", buckets=(1.0, 2.0))
        for value in range(1, 101):
            histogram.observe(value / 100)
        summary = histogram.summary()
        assert summary["p50"] <= summary["p90"] <= summary["p95"]
        assert summary["p95"] <= summary["p99"] <= summary["p999"]

    def test_merge_requires_identical_buckets_and_folds_counts(self):
        a = Histogram("h", buckets=(1.0, 2.0))
        b = Histogram("h", buckets=(1.0, 2.0))
        a.observe(0.5)
        b.observe(1.5)
        b.observe(99.0)
        a.merge(b)
        assert a.count == 3
        assert a.counts == [1, 1, 1]
        assert a.minimum == 0.5 and a.maximum == 99.0
        with pytest.raises(ValueError):
            a.merge(Histogram("h", buckets=(1.0,)))

    def test_merge_with_empty_histogram_keeps_extremes(self):
        a = Histogram("h", buckets=(1.0,))
        a.observe(0.5)
        a.merge(Histogram("h", buckets=(1.0,)))
        assert a.minimum == 0.5 and a.maximum == 0.5 and a.count == 1


class TestRegistryLabelKeys:
    def test_label_order_is_irrelevant(self):
        registry = MetricsRegistry()
        registry.counter("x_total", a="1", b="2").inc()
        assert registry.value("x_total", b="2", a="1") == 1
        assert registry.counter("x_total", b="2", a="1") is registry.counter(
            "x_total", a="1", b="2"
        )

    def test_non_string_label_values_are_stringified(self):
        registry = MetricsRegistry()
        registry.counter("x_total", code=200).inc()
        assert registry.value("x_total", code="200") == 1

    def test_same_name_different_label_keys_are_distinct_series(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(1.0)
        registry.gauge("g", shard="a").set(2.0)
        assert registry.value("g") == 1.0
        assert registry.value("g", shard="a") == 2.0
        labels = [r["labels"] for r in registry.snapshot()]
        assert {} in labels and {"shard": "a"} in labels


class TestRegistrySnapshot:
    def test_snapshot_is_json_shaped_and_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b_total").inc()
        registry.gauge("a_gauge").set(1.0)
        registry.histogram("c_hist", buckets=(1.0,)).observe(0.5)
        snapshot = registry.snapshot()
        assert [r["name"] for r in snapshot] == ["a_gauge", "b_total", "c_hist"]
        histogram_record = snapshot[2]
        assert histogram_record["type"] == "histogram"
        assert histogram_record["summary"]["count"] == 1.0

    def test_reset_clears_everything(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        registry.reset()
        assert registry.snapshot() == []


class TestNullRegistry:
    def test_null_registry_hands_out_shared_sink(self):
        assert NULL_METRICS.counter("a") is NULL_METRIC
        assert NULL_METRICS.gauge("b") is NULL_METRIC
        assert NULL_METRICS.histogram("c") is NULL_METRIC

    def test_null_sink_is_inert(self):
        NULL_METRIC.inc()
        NULL_METRIC.set(5)
        NULL_METRIC.observe(1.0)
        assert NULL_METRICS.snapshot() == []
        assert NULL_METRICS.value("a") is None


class TestExemplars:
    def test_observe_keeps_the_worst_exemplar_per_bucket(self):
        histogram = Histogram("h", buckets=(1.0, 5.0))
        histogram.observe(0.4, exemplar="t1")
        histogram.observe(0.9, exemplar="t2")
        histogram.observe(0.5, exemplar="t3")  # not the bucket's worst
        histogram.observe(7.0, exemplar="t4")
        assert histogram.exemplar() == (7.0, "t4")
        record = histogram.to_dict()
        by_bucket = {
            index: entry["trace_id"]
            for index, entry in record["exemplars"].items()
        }
        assert by_bucket["0"] == "t2"
        assert by_bucket["2"] == "t4"

    def test_exemplar_is_none_without_observations_or_trace_ids(self):
        histogram = Histogram("h", buckets=(1.0,))
        assert histogram.exemplar() is None
        histogram.observe(0.5)  # untraced observation
        assert histogram.exemplar() is None
        assert "exemplars" not in histogram.to_dict()

    def test_merge_folds_exemplars_keeping_the_worst(self):
        left = Histogram("h", buckets=(1.0,))
        right = Histogram("h", buckets=(1.0,))
        left.observe(0.5, exemplar="slow-ish")
        right.observe(0.9, exemplar="slowest")
        left.merge(right)
        assert left.exemplar() == (0.9, "slowest")


class TestRegistryValue:
    def test_value_reads_histogram_counts(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency", buckets=(1.0,))
        histogram.observe(0.5)
        histogram.observe(2.0)
        assert registry.value("latency") == 2.0


class TestThreadSafety:
    """Lost-update regressions: instruments under concurrent mutation."""

    THREADS = 8
    PER_THREAD = 5_000

    def _hammer(self, target):
        import threading

        threads = [
            threading.Thread(target=target) for _ in range(self.THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    def test_concurrent_histogram_observes_lose_no_updates(self):
        histogram = Histogram("h", buckets=(1.0, 2.0, 5.0))

        def worker():
            for index in range(self.PER_THREAD):
                histogram.observe(index % 7, exemplar=f"t{index}")

        self._hammer(worker)
        expected = self.THREADS * self.PER_THREAD
        assert histogram.count == expected
        assert sum(histogram.counts) == expected
        per_thread_total = sum(index % 7 for index in range(self.PER_THREAD))
        assert histogram.total == self.THREADS * per_thread_total

    def test_concurrent_gauge_adds_lose_no_updates(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")

        def worker():
            for _ in range(self.PER_THREAD):
                gauge.add(1.0)

        self._hammer(worker)
        assert registry.value("g") == self.THREADS * self.PER_THREAD

    def test_concurrent_counter_incs_lose_no_updates(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total")

        def worker():
            for _ in range(self.PER_THREAD):
                counter.inc()

        self._hammer(worker)
        assert registry.value("c_total") == self.THREADS * self.PER_THREAD
