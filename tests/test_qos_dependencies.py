"""Tests for cross-layer QoS estimation and infrastructure-aware discovery."""

from __future__ import annotations

import pytest

from repro.qos.dependencies import (
    CrossLayerEstimator,
    InfrastructureAwareDiscovery,
    LOW_BATTERY_THRESHOLD,
)
from repro.qos.properties import STANDARD_PROPERTIES
from repro.qos.values import QoSVector
from repro.services.description import ServiceDescription
from repro.services.discovery import (
    DiscoveryQuery,
    QoSAwareDiscovery,
    QoSConstraint,
)
from repro.env.device import DeviceClass
from repro.env.environment import EnvironmentConfig, PervasiveEnvironment

PROPS = {
    name: STANDARD_PROPERTIES[name]
    for name in ("response_time", "availability", "reliability", "throughput")
}


def make_service(**qos):
    defaults = {
        "response_time": 100.0,
        "availability": 0.95,
        "reliability": 0.9,
        "throughput": 100.0,
    }
    defaults.update(qos)
    return ServiceDescription(
        name="svc", capability="task:X",
        advertised_qos=QoSVector(defaults, PROPS),
    )


@pytest.fixture
def environment():
    return PervasiveEnvironment(EnvironmentConfig(qos_noise=0.0), seed=1)


class TestEstimator:
    def test_unhosted_service_estimates_as_advertised(self, environment):
        service = make_service()
        estimator = CrossLayerEstimator(environment)
        assert estimator.estimate(service) == service.advertised_qos

    def test_link_latency_adds_to_response_time(self, environment):
        service = environment.host_on_new_device(make_service(),
                                                 DeviceClass.SERVER)
        link = environment.network.link(service.host_device)
        link.latency.value = 0.1  # 100 ms each way
        estimator = CrossLayerEstimator(environment)
        estimated = estimator.estimate(service)
        # server slowdown = 0.25; 100*0.25 + ~100ms latency + payload time
        assert estimated["response_time"] > 100.0 * 0.25 + 100.0 - 1

    def test_device_slowdown_stretches_response_time(self, environment):
        service = environment.host_on_new_device(make_service(),
                                                 DeviceClass.SENSOR)
        device = environment.hosting_device(service.service_id)
        device.cpu_load = 1.0  # saturated sensor: slowdown = 3 / 0.25 = 12
        estimator = CrossLayerEstimator(environment)
        estimated = estimator.estimate(service)
        assert estimated["response_time"] > 100.0 * 10

    def test_dead_device_zeroes_availability(self, environment):
        service = environment.host_on_new_device(make_service())
        environment.hosting_device(service.service_id).online = False
        estimator = CrossLayerEstimator(environment)
        assert estimator.estimate(service)["availability"] == 0.0

    def test_low_battery_discounts_availability(self, environment):
        service = environment.host_on_new_device(make_service())
        device = environment.hosting_device(service.service_id)
        device.battery_remaining_wh = (
            device.battery_wh * LOW_BATTERY_THRESHOLD / 2
        )
        estimator = CrossLayerEstimator(environment)
        estimated = estimator.estimate(service)
        assert estimated["availability"] == pytest.approx(0.95 * 0.5)

    def test_lossy_link_discounts_reliability(self, environment):
        service = environment.host_on_new_device(make_service())
        environment.network.link(service.host_device).loss_rate.value = 0.4
        estimator = CrossLayerEstimator(environment)
        assert estimator.estimate(service)["reliability"] == (
            pytest.approx(0.9 * 0.6)
        )

    def test_bandwidth_caps_throughput(self, environment):
        service = environment.host_on_new_device(make_service(
            throughput=1000.0
        ))
        link = environment.network.link(service.host_device)
        link.bandwidth.value = 4096.0 * 50  # 50 payloads/s
        estimator = CrossLayerEstimator(environment)
        assert estimator.estimate(service)["throughput"] == pytest.approx(50.0)

    def test_estimated_service_keeps_identity(self, environment):
        service = environment.host_on_new_device(make_service())
        estimator = CrossLayerEstimator(environment)
        estimated = estimator.estimated_service(service)
        assert estimated == service  # same id
        assert estimated.advertised_qos != service.advertised_qos or True


class TestInfrastructureAwareDiscovery:
    def test_degraded_candidate_filtered_by_estimate(self, environment):
        good = environment.host_on_new_device(make_service(),
                                              DeviceClass.SERVER)
        bad = environment.host_on_new_device(make_service(),
                                             DeviceClass.SERVER)
        # Cripple the second provider's link: +450 ms latency.
        environment.network.link(bad.host_device).latency.value = 0.45
        environment.network.link(good.host_device).latency.value = 0.001

        plain = QoSAwareDiscovery(environment.registry)
        aware = InfrastructureAwareDiscovery(
            plain, CrossLayerEstimator(environment)
        )
        query = DiscoveryQuery(
            "task:X",
            local_constraints=(QoSConstraint("response_time", "<=", 200.0),),
        )
        # Plain discovery trusts the (identical) advertisements: both pass.
        assert len(plain.candidates(query)) == 2
        # Estimate-aware discovery rejects the degraded one.
        aware_ids = {s.service_id for s in aware.candidates(query)}
        assert aware_ids == {good.service_id}

    def test_returned_services_advertise_estimates(self, environment):
        service = environment.host_on_new_device(make_service())
        environment.network.link(service.host_device).latency.value = 0.2
        aware = InfrastructureAwareDiscovery(
            QoSAwareDiscovery(environment.registry),
            CrossLayerEstimator(environment),
        )
        found = aware.candidates(DiscoveryQuery("task:X"))
        assert len(found) == 1
        assert found[0].advertised_qos["response_time"] > 200.0

    def test_functional_matching_unchanged(self, environment):
        environment.host_on_new_device(make_service())
        aware = InfrastructureAwareDiscovery(
            QoSAwareDiscovery(environment.registry),
            CrossLayerEstimator(environment),
        )
        assert aware.candidates(DiscoveryQuery("task:Other")) == []
