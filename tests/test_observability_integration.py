"""End-to-end observability: traced middleware runs and the CLI flags."""

from __future__ import annotations

import io
import json

import pytest

from repro.cli import main
from repro.env.scenarios import build_shopping_scenario
from repro.middleware.config import MiddlewareConfig
from repro.middleware.qasom import QASOM
from repro.observability import (
    NULL_OBSERVABILITY,
    Observability,
    ObservabilityConfig,
    enabled,
    get_default,
)
from repro.composition.qassa import QASSA


@pytest.fixture
def scenario():
    return build_shopping_scenario()


def _middleware(scenario, obs=None, config=None):
    return QASOM.for_environment(
        scenario.environment,
        scenario.properties,
        ontology=scenario.ontology,
        repository=scenario.repository,
        config=config,
        observability=obs,
    )


class TestTracedRun:
    def test_span_tree_covers_the_whole_pipeline(self, scenario):
        obs = Observability(clock=scenario.environment.clock)
        middleware = _middleware(scenario, obs)
        result = middleware.run(scenario.request)

        assert result.report.succeeded
        assert len(obs.spans) == 1
        root = obs.spans[0]
        assert root.name == "run"
        assert result.trace is root

        names = {span.name for span in root.walk()}
        assert {"compose", "discovery", "qassa.select", "qassa.cluster",
                "qassa.global", "bind", "invoke", "execute"} <= names

        # One discovery span per activity, carrying the pool size.
        discoveries = root.find("discovery")
        assert len(discoveries) == scenario.task.size()
        assert all(s.attributes["pool_size"] > 0 for s in discoveries)

        # Every invocation attempt produced an attributed span.
        invokes = root.find("invoke")
        assert len(invokes) == len(result.report.invocations)
        assert all("service_id" in s.attributes for s in invokes)

        # Binding spans nest under their invocation attempts.
        for invoke in invokes:
            assert [c.name for c in invoke.children] == ["bind"]

        # Durations are measured, and the simulated clock was captured.
        assert root.duration > 0
        assert root.sim_duration == pytest.approx(result.report.elapsed)

    def test_adaptation_spans_recorded(self, scenario):
        obs = Observability(clock=scenario.environment.clock)
        middleware = _middleware(scenario, obs)
        result = middleware.run(scenario.request)
        # The shopping scenario's default run raises at least one trigger.
        assert result.adaptations
        adapt_spans = result.trace.find("adapt.substitute")
        assert adapt_spans
        assert adapt_spans[0].attributes["trigger_kind"] in (
            "violation", "forecast", "failure",
        )

    def test_metrics_populated_by_a_run(self, scenario):
        obs = Observability(clock=scenario.environment.clock)
        middleware = _middleware(scenario, obs)
        result = middleware.run(scenario.request)

        assert obs.metrics.value("qassa_selections_total") == 1
        ok = obs.metrics.value("invocations_total", status="ok") or 0
        failed = obs.metrics.value("invocations_total", status="failed") or 0
        assert ok + failed == len(result.report.invocations)
        assert obs.metrics.value("discovery_queries_total") >= scenario.task.size()
        assert obs.metrics.value("monitor_observations_total") > 0
        histogram = obs.metrics.histogram("qassa_selection_seconds")
        assert histogram.count == 1

    def test_failed_invocations_traced_as_retries(self, scenario):
        obs = Observability(clock=scenario.environment.clock)
        middleware = _middleware(scenario, obs)
        plan = middleware.submit(scenario.request, execute=False).plan()
        # Kill one bound primary: the engine must retry on an alternate.
        victim = next(iter(plan.selections.values())).primary
        scenario.environment.kill_service(victim.service_id)
        result = middleware.submit(plan=plan, adapt=False).result()
        assert result.report.succeeded
        invokes = result.trace.find("invoke")
        assert invokes, "execution produced no invoke spans"
        assert all(
            s.attributes["service_id"] != victim.service_id for s in invokes
        )


class TestConfigurationSurface:
    def test_observability_off_by_default(self, scenario):
        middleware = _middleware(scenario)
        assert middleware.observability is NULL_OBSERVABILITY
        result = middleware.run(scenario.request)
        assert result.trace is None
        assert middleware.observability.spans == ()

    def test_config_knob_enables_observability(self, scenario):
        config = MiddlewareConfig(
            observability=ObservabilityConfig(enabled=True)
        )
        middleware = _middleware(scenario, config=config)
        assert middleware.observability.enabled
        result = middleware.run(scenario.request)
        assert result.trace is not None
        assert result.trace.find("qassa.select")

    def test_explicit_instance_gets_environment_clock(self, scenario):
        obs = Observability()
        middleware = _middleware(scenario, obs)
        assert middleware.observability.tracer.clock is scenario.environment.clock

    def test_fresh_config_per_instance(self, scenario):
        first = _middleware(scenario)
        second = _middleware(scenario)
        assert first.config is not second.config

    def test_ambient_default_picked_up_by_bare_components(self, scenario):
        with enabled() as obs:
            selector = QASSA(scenario.properties)
        assert selector.obs is obs
        # Outside the block the ambient default is NULL again.
        assert get_default() is NULL_OBSERVABILITY
        assert QASSA(scenario.properties).obs is NULL_OBSERVABILITY


class TestCliFlags:
    def test_scenario_trace_prints_span_tree(self):
        out = io.StringIO()
        code = main(["scenario", "shopping", "--trace"], out=out)
        assert code == 0
        text = out.getvalue()
        for stage in ("run", "compose", "discovery", "qassa.select",
                      "qassa.cluster", "qassa.global", "bind", "invoke"):
            assert stage in text, f"span {stage!r} missing from --trace output"
        assert "ms" in text  # durations are printed

    def test_scenario_metrics_out_round_trips(self, tmp_path):
        out = io.StringIO()
        path = tmp_path / "metrics.jsonl"
        code = main(
            ["scenario", "shopping", "--metrics-out", str(path)], out=out
        )
        assert code == 0
        records = [
            json.loads(line)
            for line in path.read_text().splitlines() if line.strip()
        ]
        assert records
        types = {record["type"] for record in records}
        assert "span" in types
        assert any(t.startswith("metric.") for t in types)
        spans = [r for r in records if r["type"] == "span"]
        by_id = {r["span_id"]: r for r in spans}
        assert all(
            r["parent_id"] is None or r["parent_id"] in by_id for r in spans
        )

    def test_experiment_trace_prints_breakdown(self):
        out = io.StringIO()
        code = main(["experiment", "fig-vi5a", "--trace"], out=out)
        assert code == 0
        text = out.getvalue()
        assert "per-stage breakdown:" in text
        assert "qassa.select" in text

    def test_flags_do_not_change_exit_code_or_report(self):
        plain, traced = io.StringIO(), io.StringIO()
        assert main(["scenario", "shopping"], out=plain) == 0
        assert main(["scenario", "shopping", "--trace"], out=traced) == 0
        # The scenario output itself is identical; --trace only appends.
        assert traced.getvalue().startswith(plain.getvalue())
