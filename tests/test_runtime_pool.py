"""Tests for the MiddlewareRuntime pool: admission, deadlines, lifecycle."""

from __future__ import annotations

import time

import pytest

from repro.errors import (
    AdmissionRejectedError,
    DeadlineExceededError,
    MiddlewareRuntimeError,
    RuntimeShutdownError,
)
from repro.middleware.qasom import QASOM
from repro.qos.properties import STANDARD_PROPERTIES
from repro.resilience.policies import TimeoutPolicy
from repro.runtime import (
    MiddlewareRuntime,
    RequestStatus,
    RunSpec,
    RuntimeConfig,
)
from repro.semantics.ontology import Ontology
from repro.services.generator import ServiceGenerator
from repro.composition.request import UserRequest
from repro.composition.task import Task, leaf, sequence
from repro.env.environment import PervasiveEnvironment

PROPS = {
    name: STANDARD_PROPERTIES[name]
    for name in ("response_time", "cost", "availability")
}
CAPS = ("task:One", "task:Two", "task:Three")


def build_world(seed=3, services=6):
    ontology = Ontology("runtime-pool-tests")
    root = ontology.declare_class("task:Root")
    for capability in CAPS:
        ontology.declare_class(capability, [root])
    environment = PervasiveEnvironment(seed=seed)
    generator = ServiceGenerator(PROPS, seed=seed)
    for capability in CAPS:
        for service in generator.candidates(capability, services):
            environment.host_on_new_device(service)
    middleware = QASOM.for_environment(environment, PROPS,
                                       ontology=ontology)
    task = Task("pool", sequence(leaf("A", CAPS[0]), leaf("B", CAPS[1]),
                                 leaf("C", CAPS[2])))
    request = UserRequest(task=task, constraints=(),
                          weights={name: 1.0 for name in PROPS})
    return middleware, request


class TestConfig:
    def test_rejects_zero_workers(self):
        with pytest.raises(MiddlewareRuntimeError):
            RuntimeConfig(workers=0)

    def test_rejects_zero_queue_depth(self):
        with pytest.raises(MiddlewareRuntimeError):
            RuntimeConfig(queue_depth=0)

    def test_config_is_keyword_only(self):
        with pytest.raises(TypeError):
            RuntimeConfig(8)  # noqa: the redesigned API bans positionals


class TestRunSpecValidation:
    def test_needs_request_or_plan(self):
        with pytest.raises(MiddlewareRuntimeError):
            RunSpec()

    def test_ranked_excludes_execute(self, small_task=None):
        middleware, request = build_world()
        with pytest.raises(MiddlewareRuntimeError):
            RunSpec(request=request, ranked=2, execute=True)


class TestAdmission:
    def test_overload_rejects_without_raising(self):
        middleware, request = build_world()
        runtime = MiddlewareRuntime(
            middleware,
            RuntimeConfig(workers=1, queue_depth=2),
            autostart=False,
        )
        admitted = [runtime.submit(request) for _ in range(2)]
        rejected = runtime.submit(request)
        assert all(h.status is RequestStatus.QUEUED for h in admitted)
        assert rejected.status is RequestStatus.REJECTED
        assert rejected.done()
        with pytest.raises(AdmissionRejectedError):
            rejected.result()
        assert isinstance(rejected.exception(), AdmissionRejectedError)
        runtime.close(drain=False)

    def test_queue_depth_tracks_admissions(self):
        middleware, request = build_world()
        runtime = MiddlewareRuntime(
            middleware, RuntimeConfig(queue_depth=8), autostart=False
        )
        assert runtime.queue_depth == 0
        runtime.submit(request)
        runtime.submit(request)
        assert runtime.queue_depth == 2
        runtime.close(drain=False)

    def test_submit_after_close_raises(self):
        middleware, request = build_world()
        runtime = MiddlewareRuntime(middleware, autostart=False)
        runtime.close()
        with pytest.raises(RuntimeShutdownError):
            runtime.submit(request)


class TestDeadlines:
    def test_expired_in_queue_is_never_run(self):
        middleware, request = build_world()
        runtime = MiddlewareRuntime(
            middleware,
            RuntimeConfig(deadline=TimeoutPolicy(invoke_timeout_ms=1.0)),
            autostart=False,
        )
        handle = runtime.submit(request)
        time.sleep(0.02)  # let the 1 ms deadline lapse while queued
        runtime.start()
        handle.wait(timeout=10.0)
        assert handle.status is RequestStatus.EXPIRED
        with pytest.raises(DeadlineExceededError):
            handle.result()
        runtime.close()

    def test_generous_deadline_completes(self):
        middleware, request = build_world()
        config = RuntimeConfig(
            deadline=TimeoutPolicy(invoke_timeout_ms=60_000.0)
        )
        with MiddlewareRuntime(middleware, config) as runtime:
            result = runtime.run(request)
        assert result.plan.feasible


class TestLifecycle:
    def test_close_without_drain_cancels_queued(self):
        middleware, request = build_world()
        runtime = MiddlewareRuntime(middleware, autostart=False)
        handles = [runtime.submit(request) for _ in range(3)]
        runtime.close(drain=False)
        for handle in handles:
            assert handle.status is RequestStatus.CANCELLED
            with pytest.raises(RuntimeShutdownError):
                handle.result()

    def test_context_manager_drains_and_completes(self):
        middleware, request = build_world()
        with MiddlewareRuntime(middleware,
                               RuntimeConfig(workers=2)) as runtime:
            handles = [runtime.submit(request) for _ in range(4)]
            runtime.drain()
            assert runtime.queue_depth == 0
            assert runtime.in_flight == 0
        for handle in handles:
            assert handle.status is RequestStatus.DONE
            assert handle.result().report.succeeded in (True, False)
            assert handle.total_seconds is not None
            assert handle.queue_seconds is not None

    def test_start_is_idempotent(self):
        middleware, request = build_world()
        runtime = MiddlewareRuntime(middleware, autostart=False)
        runtime.start()
        runtime.start()
        assert runtime.run(request).plan is not None
        runtime.close()

    def test_drain_timeout_raises(self):
        middleware, request = build_world()
        runtime = MiddlewareRuntime(middleware, autostart=False)
        runtime.submit(request)  # never started -> never drains
        with pytest.raises(MiddlewareRuntimeError):
            runtime.drain(timeout=0.05)
        runtime.close(drain=False)


class TestSubmissionSurface:
    def test_plan_only_submission(self):
        middleware, request = build_world()
        with MiddlewareRuntime(middleware) as runtime:
            handle = runtime.submit(request, execute=False)
            plan = handle.plan()
            assert handle.status is RequestStatus.DONE
            assert plan.feasible
            with pytest.raises(MiddlewareRuntimeError):
                handle.result()  # no execution result to read

    def test_ranked_submission(self):
        middleware, request = build_world()
        with MiddlewareRuntime(middleware) as runtime:
            handle = runtime.submit(request, execute=False, ranked=3)
            alternatives = handle.alternatives()
        assert 1 <= len(alternatives) <= 3
        assert alternatives[0].utility == max(p.utility for p in alternatives)

    def test_execute_prebuilt_plan(self):
        middleware, request = build_world()
        plan = middleware.submit(request, execute=False).plan()
        with MiddlewareRuntime(middleware) as runtime:
            result = runtime.submit(plan=plan).result()
        assert result.plan is plan

    def test_repeated_requests_coalesce_composition(self):
        middleware, request = build_world()
        with MiddlewareRuntime(middleware,
                               RuntimeConfig(workers=4)) as runtime:
            handles = [runtime.submit(request, execute=False)
                       for _ in range(6)]
            runtime.drain()
            assert runtime.coalescer.computed == 1
            assert runtime.coalescer.coalesced >= 5
        signatures = {
            tuple(sorted(
                (a, sel.primary.service_id)
                for a, sel in handle.plan().selections.items()
            ))
            for handle in handles
        }
        assert len(signatures) == 1
