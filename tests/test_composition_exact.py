"""Tests for the exact branch-and-bound selection oracle."""

from __future__ import annotations

import pytest

from repro.errors import NoCandidateError, SelectionError
from repro.qos.properties import STANDARD_PROPERTIES
from repro.services.generator import ServiceGenerator
from repro.composition.aggregation import AggregationApproach
from repro.composition.baselines import ExhaustiveSelection
from repro.composition.exact import ExactSelection
from repro.composition.request import GlobalConstraint, UserRequest
from repro.composition.selection import CandidateSets
from repro.composition.task import Task, leaf, sequence

PROPS = {
    name: STANDARD_PROPERTIES[name]
    for name in ("response_time", "cost", "availability")
}


def build_problem(activities=3, services=6, seed=0, rt_bound=None):
    task = Task(
        "p", sequence(*[leaf(f"A{i}", f"task:C{i}") for i in range(activities)])
    )
    generator = ServiceGenerator(PROPS, seed=seed)
    candidates = CandidateSets(
        task,
        {a.name: generator.candidates(a.capability, services)
         for a in task.activities},
    )
    constraints = ()
    if rt_bound is not None:
        constraints = (GlobalConstraint.at_most("response_time", rt_bound),)
    request = UserRequest(
        task, constraints=constraints, weights={n: 1.0 for n in PROPS}
    )
    return request, candidates


def assert_identical(a, b):
    assert a.service_ids() == b.service_ids()
    assert a.utility == b.utility
    assert a.feasible == b.feasible
    assert a.aggregated_qos == b.aggregated_qos


class TestOptimality:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize(
        "approach", list(AggregationApproach), ids=lambda a: a.name
    )
    def test_byte_identical_to_exhaustive(self, seed, approach):
        request, candidates = build_problem(
            activities=3, services=5, seed=seed
        )
        exact = ExactSelection(PROPS, approach).select(request, candidates)
        full = ExhaustiveSelection(PROPS, approach).select(request, candidates)
        assert_identical(exact, full)

    @pytest.mark.parametrize("rt_bound", (250.0, 400.0, 800.0))
    def test_identical_under_constraints(self, rt_bound):
        request, candidates = build_problem(
            activities=4, services=5, seed=3, rt_bound=rt_bound
        )
        exact_run = lambda **kw: ExactSelection(PROPS).select(
            request, candidates, **kw
        )
        full_run = lambda **kw: ExhaustiveSelection(PROPS).select(
            request, candidates, **kw
        )
        try:
            full = full_run()
        except SelectionError:
            with pytest.raises(SelectionError):
                exact_run()
            assert_identical(
                exact_run(best_effort=True), full_run(best_effort=True)
            )
        else:
            assert_identical(exact_run(), full)

    def test_prunes_most_of_the_space(self):
        request, candidates = build_problem(activities=4, services=8, seed=1)
        plan = ExactSelection(PROPS).select(request, candidates)
        space = candidates.search_space()
        assert plan.statistics.extra["nodes_expanded"] <= 0.10 * space
        # Far fewer leaf evaluations than full enumeration.
        assert plan.statistics.utility_evaluations < space

    def test_deterministic_replay(self):
        request, candidates = build_problem(activities=4, services=7, seed=2)
        a = ExactSelection(PROPS).select(request, candidates)
        b = ExactSelection(PROPS).select(request, candidates)
        assert_identical(a, b)
        assert a.statistics.extra == b.statistics.extra


class TestFeasibility:
    def test_proves_infeasibility(self):
        request, candidates = build_problem(rt_bound=0.001)
        with pytest.raises(SelectionError):
            ExactSelection(PROPS).select(request, candidates)

    def test_best_effort_matches_exhaustive(self):
        request, candidates = build_problem(rt_bound=0.001)
        exact = ExactSelection(PROPS).select(
            request, candidates, best_effort=True
        )
        full = ExhaustiveSelection(PROPS).select(
            request, candidates, best_effort=True
        )
        assert not exact.feasible
        assert_identical(exact, full)

    def test_node_budget_guard(self):
        request, candidates = build_problem(activities=4, services=6)
        with pytest.raises(SelectionError, match="node budget"):
            ExactSelection(PROPS, max_nodes=3).select(request, candidates)


class TestPresolve:
    def test_dominance_fixing_reported(self):
        # Clustered pools always contain weakly dominated candidates.
        request, candidates = build_problem(activities=3, services=12, seed=4)
        plan = ExactSelection(PROPS).select(request, candidates)
        assert plan.statistics.extra["fixed_dominated"] >= 1

    def test_empty_candidate_pool_raises(self):
        task = Task("p", sequence(leaf("A0", "task:C0"), leaf("A1", "task:C1")))
        generator = ServiceGenerator(PROPS, seed=0)
        with pytest.raises(NoCandidateError):
            CandidateSets(
                task, {"A0": generator.candidates("task:C0", 3), "A1": []}
            )

    def test_constraint_on_unadvertised_property_raises(self):
        request, candidates = build_problem(activities=2, services=3)
        throughput = STANDARD_PROPERTIES["throughput"]
        bad_request = UserRequest(
            request.task,
            constraints=(GlobalConstraint.at_least("throughput", 1.0),),
            weights=dict(request.weights),
        )
        props = dict(PROPS, throughput=throughput)
        with pytest.raises(SelectionError):
            ExactSelection(props).select(bad_request, candidates)

    def test_single_candidate_task(self):
        request, candidates = build_problem(activities=2, services=1)
        exact = ExactSelection(PROPS).select(request, candidates)
        full = ExhaustiveSelection(PROPS).select(request, candidates)
        assert_identical(exact, full)
        assert len(exact.selections) == 2
