"""Tests for the flight-recorder event ring (repro.observability.events)."""

from __future__ import annotations

import json
import threading

import pytest

from repro.execution.clock import SimulatedClock
from repro.observability.events import (
    ADMISSION_ACCEPT,
    COMMIT,
    NULL_RECORDER,
    WORKER_CRASH,
    FlightRecorder,
    RuntimeEvent,
)


class TestRuntimeEvent:
    def test_to_dict_is_json_serialisable(self):
        event = RuntimeEvent(
            seq=1, kind=COMMIT, wall=12.5, sim=3.0,
            trace_id="t000001", attributes={"ticket": 4},
        )
        record = json.loads(json.dumps(event.to_dict()))
        assert record["seq"] == 1
        assert record["kind"] == COMMIT
        assert record["trace_id"] == "t000001"
        assert record["attributes"]["ticket"] == 4

    def test_events_are_frozen(self):
        event = RuntimeEvent(seq=1, kind=COMMIT, wall=0.0)
        with pytest.raises(AttributeError):
            event.kind = "tampered"


class TestFlightRecorder:
    def test_records_carry_monotonic_seq_and_wall_time(self):
        recorder = FlightRecorder(capacity=8)
        first = recorder.record(ADMISSION_ACCEPT, trace_id="t1")
        second = recorder.record(COMMIT, trace_id="t1")
        assert (first.seq, second.seq) == (1, 2)
        assert second.wall >= first.wall
        assert len(recorder) == 2

    def test_ring_evicts_oldest_but_keeps_the_total(self):
        recorder = FlightRecorder(capacity=4)
        for index in range(10):
            recorder.record(COMMIT, index=index)
        assert len(recorder) == 4
        assert recorder.recorded_total == 10
        assert [e.attributes["index"] for e in recorder.events()] == [
            6, 7, 8, 9,
        ]

    def test_tail_returns_the_last_n(self):
        recorder = FlightRecorder(capacity=16)
        for index in range(6):
            recorder.record(COMMIT, index=index)
        assert [e.attributes["index"] for e in recorder.tail(2)] == [4, 5]

    def test_for_trace_filters_by_trace_id(self):
        recorder = FlightRecorder()
        recorder.record(ADMISSION_ACCEPT, trace_id="t1")
        recorder.record(ADMISSION_ACCEPT, trace_id="t2")
        recorder.record(WORKER_CRASH, trace_id="t1")
        kinds = [e.kind for e in recorder.for_trace("t1")]
        assert kinds == [ADMISSION_ACCEPT, WORKER_CRASH]

    def test_attached_clock_stamps_sim_time(self):
        clock = SimulatedClock()
        clock.advance(7.25)
        recorder = FlightRecorder()
        recorder.attach_clock(clock)
        event = recorder.record(COMMIT)
        assert event.sim == 7.25

    def test_kind_attribute_does_not_collide_with_the_parameter(self):
        # ``kind`` is positional-only, so an *attribute* named kind is
        # legal (the chaos injector records the fault kind this way).
        recorder = FlightRecorder()
        event = recorder.record(COMMIT, kind_attr=1, fault="worker_crash")
        assert event.kind == COMMIT
        assert event.attributes["fault"] == "worker_crash"

    def test_concurrent_records_lose_nothing(self):
        recorder = FlightRecorder(capacity=100_000)
        threads = [
            threading.Thread(
                target=lambda: [
                    recorder.record(COMMIT) for _ in range(2_000)
                ]
            )
            for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert recorder.recorded_total == 16_000
        assert len(recorder) == 16_000
        seqs = [event.seq for event in recorder.events()]
        assert sorted(set(seqs)) == list(range(1, 16_001))

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)


class TestNullRecorder:
    def test_disabled_and_inert(self):
        assert not NULL_RECORDER.enabled
        assert NULL_RECORDER.record(COMMIT, anything=1) is None
        assert NULL_RECORDER.events() == ()
        assert NULL_RECORDER.tail(5) == ()
        assert NULL_RECORDER.for_trace("t1") == ()
        assert NULL_RECORDER.recorded_total == 0
        assert len(NULL_RECORDER) == 0
