"""Tests for the end-to-end QoS model facade and term mapping."""

from __future__ import annotations

import pytest

from repro.errors import QoSModelError
from repro.qos.model import QoSModel, build_end_to_end_model
from repro.qos.properties import RESPONSE_TIME, STANDARD_PROPERTIES
from repro.semantics.matching import MatchDegree
from repro.semantics.ontology import Ontology


@pytest.fixture(scope="module")
def model():
    return build_end_to_end_model()


class TestRegistration:
    def test_standard_properties_registered(self, model):
        assert "response_time" in model
        assert "energy" in model
        assert len(model.properties()) == len(STANDARD_PROPERTIES)

    def test_property_lookup(self, model):
        assert model.property("response_time") is RESPONSE_TIME
        assert model.property_by_uri("sqos:ResponseTime") is RESPONSE_TIME

    def test_unknown_property_raises(self, model):
        with pytest.raises(QoSModelError):
            model.property("karma")
        with pytest.raises(QoSModelError):
            model.property_by_uri("x:Nothing")

    def test_register_requires_declared_concept(self):
        from repro.qos.properties import QoSProperty, Direction, AggregationKind
        from repro.qos import units as u

        bare = QoSModel(Ontology("empty"))
        orphan = QoSProperty(
            "orphan", "x:Orphan", Direction.NEGATIVE,
            AggregationKind.ADDITIVE, u.SECONDS, (0, 1),
        )
        with pytest.raises(QoSModelError):
            bare.register(orphan)

    def test_re_register_identical_is_idempotent(self, model):
        assert model.register(RESPONSE_TIME) is RESPONSE_TIME


class TestTermMapping:
    def test_user_speed_resolves_exactly(self, model):
        matches = model.resolve_term("uqos:Speed")
        assert matches[0][0].name == "response_time"
        assert matches[0][1] is MatchDegree.EXACT

    def test_user_price_resolves_to_cost(self, model):
        matches = model.resolve_term("uqos:Price")
        assert matches[0][0].name == "cost"

    def test_dependability_resolves_to_both(self, model):
        names = {p.name for p, _ in model.resolve_term("uqos:Dependability")}
        assert names == {"availability", "reliability"}

    def test_provider_term_resolves_to_itself(self, model):
        matches = model.resolve_term("sqos:Availability")
        assert matches[0][0].name == "availability"
        assert matches[0][1] is MatchDegree.EXACT

    def test_minimum_degree_filters(self, model):
        strict = model.resolve_term("uqos:Dependability",
                                    minimum=MatchDegree.EXACT)
        assert strict == []

    def test_unknown_concept_raises(self, model):
        with pytest.raises(QoSModelError):
            model.resolve_term("uqos:Vibes")


class TestVectors:
    def test_vector_construction(self, model):
        v = model.vector({"response_time": 120.0, "availability": 0.98})
        assert v["response_time"] == 120.0
        assert v.property("availability").name == "availability"

    def test_vector_unknown_property_raises(self, model):
        with pytest.raises(QoSModelError):
            model.vector({"karma": 1.0})

    def test_shared_properties(self, model):
        a = model.vector({"cost": 1.0, "availability": 0.9})
        b = model.vector({"cost": 2.0, "response_time": 10.0})
        assert model.shared_properties([a, b]) == ["cost"]
