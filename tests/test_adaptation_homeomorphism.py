"""Tests for extended vertex-disjoint subgraph homeomorphism determination."""

from __future__ import annotations

import pytest

from repro.adaptation.behaviour_graph import BehaviouralGraph, Vertex, task_to_graph
from repro.adaptation.homeomorphism import (
    HomeomorphismConfig,
    find_homeomorphism,
)
from repro.composition.task import Task, leaf, parallel, sequence
from repro.semantics.matching import MatchDegree
from repro.semantics.ontology import Ontology


def chain_graph(labels, name="g", prefix="v"):
    g = BehaviouralGraph(name)
    previous = None
    for i, label in enumerate(labels):
        vid = f"{prefix}{i}"
        g.add_vertex(Vertex(vid, label))
        if previous is not None:
            g.add_edge(previous, vid)
        previous = vid
    return g


@pytest.fixture
def ontology():
    onto = Ontology("tasks")
    onto.declare_class("task:Activity")
    for name in ("A", "B", "C", "D", "Extra"):
        onto.declare_class(f"task:{name}", ["task:Activity"])
    onto.declare_class("task:B1", ["task:B"])
    onto.declare_class("task:B2", ["task:B"])
    return onto


class TestExactStructuralMatch:
    def test_identical_chains_match(self):
        pattern = chain_graph(["task:A", "task:B"], prefix="p")
        host = chain_graph(["task:A", "task:B"], prefix="h")
        result = find_homeomorphism(pattern, host)
        assert result.found
        assert result.vertex_mapping == {"p0": ("h0",), "p1": ("h1",)}

    def test_edge_maps_to_path(self):
        pattern = chain_graph(["task:A", "task:B"], prefix="p")
        host = chain_graph(["task:A", "task:X", "task:B"], prefix="h")
        result = find_homeomorphism(pattern, host)
        assert result.found
        assert result.edge_paths[("p0", "p1")] == ["h0", "h1", "h2"]

    def test_reversed_order_fails(self):
        pattern = chain_graph(["task:A", "task:B"], prefix="p")
        host = chain_graph(["task:B", "task:A"], prefix="h")
        assert not find_homeomorphism(pattern, host).found

    def test_missing_label_fails_fast(self):
        pattern = chain_graph(["task:A", "task:Z"], prefix="p")
        host = chain_graph(["task:A", "task:B"], prefix="h")
        result = find_homeomorphism(pattern, host)
        assert not result.found
        assert not result.preliminary.all_vertices_have_candidates
        assert result.backtrack_steps == 0  # pre-check rejected it

    def test_pattern_larger_than_host_fails(self):
        pattern = chain_graph(["task:A"] * 10, prefix="p")
        host = chain_graph(["task:A", "task:A"], prefix="h")
        result = find_homeomorphism(
            pattern, host, config=HomeomorphismConfig(allow_splits=False,
                                                      max_split_length=1)
        )
        assert not result.found
        assert not result.preliminary.vertex_count_ok


class TestVertexDisjointness:
    def test_two_pattern_edges_need_disjoint_paths(self):
        # Pattern: A -> B, A -> C (fan-out).
        pattern = BehaviouralGraph("p")
        for vid, label in (("pa", "task:A"), ("pb", "task:B"), ("pc", "task:C")):
            pattern.add_vertex(Vertex(vid, label))
        pattern.add_edge("pa", "pb")
        pattern.add_edge("pa", "pc")

        # Host where both paths must squeeze through one shared middle
        # vertex: A -> M -> B, A -> M -> C — not vertex-disjoint.
        host = BehaviouralGraph("h")
        for vid, label in (
            ("ha", "task:A"), ("hm", "task:X"),
            ("hb", "task:B"), ("hc", "task:C"),
        ):
            host.add_vertex(Vertex(vid, label))
        host.add_edge("ha", "hm")
        host.add_edge("hm", "hb")
        host.add_edge("hm", "hc")
        assert not find_homeomorphism(pattern, host).found

        # Adding a direct edge A -> B frees the shared vertex for the other
        # path, so the embedding exists.
        host.add_edge("ha", "hb")
        assert find_homeomorphism(pattern, host).found


class TestSemanticMatching:
    def test_plugin_label_match(self, ontology):
        pattern = chain_graph(["task:A", "task:B"], prefix="p")
        host = chain_graph(["task:A", "task:B1"], prefix="h")  # B1 ⊑ B
        assert find_homeomorphism(pattern, host, ontology).found

    def test_subsume_rejected_at_default_degree(self, ontology):
        pattern = chain_graph(["task:A", "task:B1"], prefix="p")
        host = chain_graph(["task:A", "task:B"], prefix="h")  # too general
        assert not find_homeomorphism(pattern, host, ontology).found

    def test_subsume_accepted_when_threshold_lowered(self, ontology):
        pattern = chain_graph(["task:A", "task:B1"], prefix="p")
        host = chain_graph(["task:A", "task:B"], prefix="h")
        config = HomeomorphismConfig(minimum_degree=MatchDegree.SUBSUME)
        assert find_homeomorphism(pattern, host, ontology, config).found

    def test_without_ontology_matching_is_syntactic(self):
        pattern = chain_graph(["task:B"], prefix="p")
        host = chain_graph(["task:B1"], prefix="h")
        assert not find_homeomorphism(pattern, host).found


class TestDataConstraints:
    def _vertex(self, vid, label, inputs=(), outputs=()):
        return Vertex(vid, label, inputs=frozenset(inputs),
                      outputs=frozenset(outputs))

    def test_pattern_outputs_must_be_produced(self, ontology):
        pattern = BehaviouralGraph("p")
        pattern.add_vertex(
            self._vertex("p0", "task:A", outputs=["task:D"])
        )
        host_good = BehaviouralGraph("h1")
        host_good.add_vertex(self._vertex("h0", "task:A", outputs=["task:D"]))
        host_bad = BehaviouralGraph("h2")
        host_bad.add_vertex(self._vertex("h0", "task:A"))
        assert find_homeomorphism(pattern, host_good, ontology).found
        assert not find_homeomorphism(pattern, host_bad, ontology).found

    def test_host_inputs_must_be_providable(self, ontology):
        pattern = BehaviouralGraph("p")
        pattern.add_vertex(self._vertex("p0", "task:A", inputs=["task:B"]))
        host = BehaviouralGraph("h")
        host.add_vertex(self._vertex("h0", "task:A", inputs=["task:D"]))
        assert not find_homeomorphism(pattern, host, ontology).found

    def test_empty_pattern_inputs_unconstrained(self, ontology):
        pattern = BehaviouralGraph("p")
        pattern.add_vertex(self._vertex("p0", "task:A"))
        host = BehaviouralGraph("h")
        host.add_vertex(self._vertex("h0", "task:A", inputs=["task:D"]))
        assert find_homeomorphism(pattern, host, ontology).found

    def test_data_check_can_be_disabled(self, ontology):
        pattern = BehaviouralGraph("p")
        pattern.add_vertex(self._vertex("p0", "task:A", outputs=["task:D"]))
        host = BehaviouralGraph("h")
        host.add_vertex(self._vertex("h0", "task:A"))
        config = HomeomorphismConfig(check_data=False)
        assert find_homeomorphism(pattern, host, ontology, config).found


class TestSplitMappings:
    def test_coarse_vertex_maps_to_chain(self, ontology):
        # The pattern's single B activity splits into B1 -> B2 in the host.
        pattern = chain_graph(["task:A", "task:B", "task:C"], prefix="p")
        host = chain_graph(
            ["task:A", "task:B1", "task:B2", "task:C"], prefix="h"
        )
        result = find_homeomorphism(pattern, host, ontology)
        assert result.found
        assert result.vertex_mapping["p1"] in {("h1", "h2"), ("h1",), ("h2",)}

    def test_split_disabled(self, ontology):
        pattern = chain_graph(["task:B"], prefix="p")
        # Host offers only a chain of two sub-activities, each individually
        # a PLUGIN match; with splits disabled a single image suffices anyway,
        # so build a case where data requires the chain.
        host = BehaviouralGraph("h")
        host.add_vertex(Vertex("h0", "task:B1",
                               outputs=frozenset({"task:C"})))
        host.add_vertex(Vertex("h1", "task:B2",
                               outputs=frozenset({"task:D"})))
        host.add_edge("h0", "h1")
        pattern2 = BehaviouralGraph("p2")
        pattern2.add_vertex(
            Vertex("p0", "task:B",
                   outputs=frozenset({"task:C", "task:D"}))
        )
        with_splits = find_homeomorphism(pattern2, host, ontology)
        without = find_homeomorphism(
            pattern2, host, ontology, HomeomorphismConfig(allow_splits=False)
        )
        assert with_splits.found           # union of chain outputs suffices
        assert not without.found           # no single vertex produces both


class TestTaskLevel:
    def test_parallel_task_embeds_in_sequential_host(self, ontology):
        """A sequential behaviour linearises a parallel pattern; the pattern
        edges A->B, A->C and B->D, C->D must map to disjoint host paths —
        impossible in a pure chain (C's path to D would reuse vertices), so
        this must NOT match.  This guards against over-eager matching."""
        pattern_task = Task(
            "p", sequence(leaf("A"), parallel(leaf("B"), leaf("C")), leaf("D"))
        )
        host_task = Task(
            "h",
            sequence(leaf("HA", "task:A"), leaf("HB", "task:B"),
                     leaf("HC", "task:C"), leaf("HD", "task:D")),
        )
        result = find_homeomorphism(
            task_to_graph(pattern_task), task_to_graph(host_task), ontology
        )
        assert not result.found

    def test_sequential_task_embeds_in_parallel_host(self, ontology):
        """The reverse direction also fails (a chain A->B->C->D needs a
        B->C path the parallel host does not have)."""
        pattern_task = Task(
            "p", sequence(leaf("A"), leaf("B"), leaf("C"), leaf("D"))
        )
        host_task = Task(
            "h",
            sequence(leaf("HA", "task:A"),
                     parallel(leaf("HB", "task:B"), leaf("HC", "task:C")),
                     leaf("HD", "task:D")),
        )
        result = find_homeomorphism(
            task_to_graph(pattern_task), task_to_graph(host_task), ontology
        )
        assert not result.found

    def test_same_structure_different_granularity(self, ontology):
        pattern_task = Task("p", sequence(leaf("A"), leaf("B"), leaf("D")))
        host_task = Task(
            "h",
            sequence(leaf("HA", "task:A"), leaf("HB1", "task:B1"),
                     leaf("HExtra", "task:Extra"), leaf("HD", "task:D")),
        )
        result = find_homeomorphism(
            task_to_graph(pattern_task), task_to_graph(host_task), ontology
        )
        assert result.found
