"""Tests for the runtime's copy-on-write snapshot manager."""

from __future__ import annotations

from repro.qos.properties import RESPONSE_TIME
from repro.qos.values import QoSVector
from repro.runtime.snapshot import SnapshotManager
from repro.services.description import ServiceDescription
from repro.services.registry import ServiceRegistry

PROPS = {"response_time": RESPONSE_TIME}


def svc(name, capability="task:X"):
    return ServiceDescription(
        name=name,
        capability=capability,
        advertised_qos=QoSVector({"response_time": 100.0}, PROPS),
    )


class TestSnapshotManager:
    def test_acquire_materialises_once_per_generation(self):
        registry = ServiceRegistry()
        registry.publish(svc("a"))
        manager = SnapshotManager(registry)
        first = manager.acquire()
        second = manager.acquire()
        assert first is second  # copy-on-write: same object, no re-copy
        assert manager.acquires == 2
        assert manager.refreshes == 1

    def test_churn_forces_a_fresh_copy(self):
        registry = ServiceRegistry()
        registry.publish(svc("a"))
        manager = SnapshotManager(registry)
        old = manager.acquire()
        registry.publish(svc("b"))
        fresh = manager.acquire()
        assert fresh is not old
        assert fresh.generation > old.generation
        assert len(fresh) == 2 and len(old) == 1
        assert manager.refreshes == 2

    def test_old_snapshot_stays_readable_after_churn(self):
        registry = ServiceRegistry()
        keep = registry.publish(svc("a", "task:Pay"))
        manager = SnapshotManager(registry)
        old = manager.acquire()
        registry.withdraw(keep.service_id)
        manager.acquire()
        # The superseded snapshot still answers for its own generation.
        assert [s.name for s in old.by_capability("task:Pay")] == ["a"]
        assert keep.service_id in old

    def test_invalidate_recopies_same_generation(self):
        registry = ServiceRegistry()
        registry.publish(svc("a"))
        manager = SnapshotManager(registry)
        first = manager.acquire()
        manager.invalidate()
        second = manager.acquire()
        assert second is not first
        assert second.generation == first.generation
        assert manager.refreshes == 2

    def test_concurrent_acquires_share_one_snapshot(self):
        import threading

        registry = ServiceRegistry()
        registry.publish(svc("a"))
        manager = SnapshotManager(registry)
        seen = []
        barrier = threading.Barrier(8)

        def worker():
            barrier.wait()
            seen.append(manager.acquire())

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
        assert len({id(s) for s in seen}) == 1
        assert manager.refreshes == 1
