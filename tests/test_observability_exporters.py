"""Tests for the console tree, JSONL round-trip and stage breakdowns."""

from __future__ import annotations

import io
import json

import pytest

from repro.execution.clock import SimulatedClock
from repro.observability import (
    Observability,
    export_jsonl,
    read_jsonl,
    render_breakdown,
    render_span_tree,
    stage_breakdown,
    write_jsonl,
)


def _sample_observability() -> Observability:
    obs = Observability(clock=SimulatedClock())
    with obs.span("run", task="shopping"):
        with obs.span("compose"):
            with obs.span("discovery", activity="Pay", pool_size=30):
                pass
        with obs.span("invoke", activity="Pay", attempt=1) as span:
            span.set(succeeded=True)
    obs.counter("invocations_total", status="ok").inc()
    obs.histogram("qassa_selection_seconds").observe(0.012)
    return obs


class TestSpanTree:
    def test_tree_contains_names_durations_and_attributes(self):
        obs = _sample_observability()
        text = render_span_tree(obs.spans)
        lines = text.splitlines()
        assert lines[0].startswith("run")
        assert "ms" in lines[0] or "s" in lines[0]
        assert any("discovery" in line and "pool_size=30" in line
                   for line in lines)
        assert any("invoke" in line and "succeeded=True" in line
                   for line in lines)
        # Tree connectors show the hierarchy.
        assert any(line.lstrip().startswith(("├─", "└─")) for line in lines)

    def test_empty_trace_renders_empty(self):
        assert render_span_tree([]) == ""


class TestJsonlRoundTrip:
    def test_every_line_parses_and_types_partition(self):
        obs = _sample_observability()
        buffer = io.StringIO()
        count = write_jsonl(obs, buffer)
        lines = buffer.getvalue().splitlines()
        assert len(lines) == count
        records = [json.loads(line) for line in lines]
        spans = [r for r in records if r["type"] == "span"]
        metrics = [r for r in records if r["type"].startswith("metric.")]
        assert len(spans) == 4
        assert len(metrics) == 2
        assert spans and all("duration_s" in r for r in spans)

    def test_parent_links_reconstruct_the_tree(self):
        obs = _sample_observability()
        records = export_jsonl(obs)
        spans = {r["span_id"]: r for r in records if r["type"] == "span"}
        roots = [r for r in spans.values() if r["parent_id"] is None]
        assert [r["name"] for r in roots] == ["run"]
        compose = next(r for r in spans.values() if r["name"] == "compose")
        discovery = next(r for r in spans.values() if r["name"] == "discovery")
        assert compose["parent_id"] == roots[0]["span_id"]
        assert discovery["parent_id"] == compose["span_id"]

    def test_file_round_trip(self, tmp_path):
        obs = _sample_observability()
        path = tmp_path / "dump.jsonl"
        written = write_jsonl(obs, str(path))
        records = read_jsonl(str(path))
        assert len(records) == written
        counter = next(
            r for r in records if r["type"] == "metric.counter"
        )
        assert counter["name"] == "invocations_total"
        assert counter["labels"] == {"status": "ok"}
        assert counter["value"] == 1.0


class TestStageBreakdown:
    def test_aggregates_by_name_sorted_by_total(self):
        obs = Observability()
        with obs.span("outer"):
            for _ in range(3):
                with obs.span("inner"):
                    sum(range(200))
        breakdown = stage_breakdown(obs.spans)
        assert set(breakdown) == {"outer", "inner"}
        assert breakdown["inner"]["count"] == 3
        assert breakdown["outer"]["total_s"] >= breakdown["inner"]["total_s"]
        # outer contains the inners, so it sorts first.
        assert list(breakdown)[0] == "outer"

    def test_render_breakdown_table(self):
        obs = _sample_observability()
        text = render_breakdown(stage_breakdown(obs.spans))
        lines = text.splitlines()
        assert lines[0].split()[:2] == ["stage", "count"]
        assert any("invoke" in line for line in lines)

    def test_render_empty_breakdown(self):
        text = render_breakdown({})
        assert "stage" in text


class TestAtomicWrites:
    def test_write_atomic_replaces_and_leaves_no_temp_files(self, tmp_path):
        from repro.observability.exporters import write_atomic

        path = tmp_path / "dump.jsonl"
        path.write_text("previous contents\n")
        write_atomic(path, lambda handle: handle.write("fresh\n"))
        assert path.read_text() == "fresh\n"
        assert [p.name for p in tmp_path.iterdir()] == ["dump.jsonl"]

    def test_failed_render_preserves_the_previous_file(self, tmp_path):
        from repro.observability.exporters import write_atomic

        path = tmp_path / "dump.jsonl"
        path.write_text("previous contents\n")

        def torn(handle):
            handle.write("half a reco")
            raise RuntimeError("crash mid-export")

        with pytest.raises(RuntimeError):
            write_atomic(path, torn)
        # The old file survives untouched; the torn temp file is gone.
        assert path.read_text() == "previous contents\n"
        assert [p.name for p in tmp_path.iterdir()] == ["dump.jsonl"]
