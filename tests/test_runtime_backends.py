"""Backend conformance: both execution backends honour the same contract.

The execution-backend redesign makes *where* composition runs a config
knob (``RuntimeConfig(backend="thread" | "process")``).  These tests run
the same conformance suite against both backends through one parametrized
fixture: pooled results stay byte-identical to serial, admission /
deadline / rejection semantics are backend-independent, ``close()`` leaks
nothing, and a killed worker process surfaces as a requeue or a
:class:`~repro.errors.WorkerCrashError` — never a hang.  Config-level
validation (unknown names, unsupported feature combinations, the
``worker_threads`` deprecation shim) rides along.
"""

from __future__ import annotations

import multiprocessing
import time

import pytest

from repro.errors import (
    MiddlewareRuntimeError,
    UnsupportedBackendFeatureError,
    WorkerCrashError,
    WorkerProcessCrash,
)
from repro.middleware.config import MiddlewareConfig
from repro.middleware.qasom import QASOM
from repro.observability import FlightRecorder
from repro.resilience.policies import TimeoutPolicy
from repro.runtime import (
    BACKEND_CHOICES,
    ChaosPolicy,
    ExecutionBackend,
    MiddlewareRuntime,
    ProcessBackend,
    RequestStatus,
    RuntimeConfig,
    ThreadBackend,
)

from tests.test_runtime_determinism import (
    build_world,
    plan_signature,
    report_signature,
)

BACKENDS = ("thread", "process")


@pytest.fixture(params=BACKENDS)
def backend(request):
    """The backend name under test; the whole suite runs once per value."""
    return request.param


def _config(backend_name, **overrides):
    overrides.setdefault("workers", 2)
    overrides.setdefault("queue_depth", 64)
    return RuntimeConfig(backend=backend_name, **overrides)


class TestPooledEqualsSerialOnEveryBackend:
    def test_backend_run_matches_serial_byte_for_byte(self, backend):
        middleware_serial, requests_serial, _ = build_world(seed=29)
        serial = [middleware_serial.submit(r).result()
                  for r in requests_serial]

        middleware_pooled, requests_pooled, _ = build_world(seed=29)
        config = _config(backend, queue_depth=len(requests_pooled))
        with MiddlewareRuntime(middleware_pooled, config) as runtime:
            handles = [runtime.submit(r) for r in requests_pooled]
            runtime.drain(timeout=120.0)

        for index, (expected, handle) in enumerate(zip(serial, handles)):
            pooled = handle.result()
            assert plan_signature(expected.plan) == plan_signature(
                pooled.plan
            ), f"request {index} ({backend}): plans diverged"
            assert report_signature(expected.report) == report_signature(
                pooled.report
            ), f"request {index} ({backend}): reports diverged"

    def test_plan_services_resolve_on_the_parent_registry(self, backend):
        """Rehydrated plans bind the parent's own service objects."""
        middleware, requests, _ = build_world(seed=31, profiles=2, repeats=1)
        registry = middleware.environment.registry
        with MiddlewareRuntime(middleware, _config(backend)) as runtime:
            result = runtime.submit(requests[0]).result()
        for selection in result.plan.selections.values():
            for service in selection.services:
                assert registry.get(service.service_id) is service


class TestAdmissionSemantics:
    def test_overload_rejects_identically(self, backend):
        middleware, requests, _ = build_world(seed=37, repeats=4)
        config = _config(backend, workers=1, queue_depth=1)
        with MiddlewareRuntime(middleware, config) as runtime:
            handles = [runtime.submit(r) for r in requests]
            runtime.drain(timeout=120.0)
        statuses = [h.status for h in handles]
        assert RequestStatus.REJECTED in statuses, (
            f"{backend}: a 1-deep queue fed {len(requests)} requests "
            f"must reject some"
        )
        for handle in handles:
            assert handle.done()
            assert handle.status in (
                RequestStatus.DONE, RequestStatus.REJECTED,
            )

    def test_deadline_expiry_is_backend_independent(self, backend):
        middleware, requests, _ = build_world(seed=41, profiles=1, repeats=1)
        config = _config(
            backend, workers=1,
            deadline=TimeoutPolicy(invoke_timeout_ms=1e-6),
        )
        with MiddlewareRuntime(middleware, config) as runtime:
            handle = runtime.submit(requests[0])
            runtime.drain(timeout=60.0)
        assert handle.status is RequestStatus.EXPIRED

    def test_submit_after_close_raises(self, backend):
        middleware, requests, _ = build_world(seed=43, profiles=1, repeats=1)
        runtime = MiddlewareRuntime(middleware, _config(backend))
        runtime.start()
        runtime.close()
        from repro.errors import RuntimeShutdownError

        with pytest.raises(RuntimeShutdownError):
            runtime.submit(requests[0])


class TestLifecycleHygiene:
    def test_close_leaks_no_workers(self, backend):
        middleware, requests, _ = build_world(seed=47)
        config = _config(backend, queue_depth=len(requests))
        runtime = MiddlewareRuntime(middleware, config)
        with runtime:
            handles = [runtime.submit(r) for r in requests]
            runtime.drain(timeout=120.0)
        assert all(h.done() for h in handles)
        assert runtime.alive_workers == 0
        # No child process may survive a clean close — on either backend
        # (the thread backend must simply never have spawned one).
        deadline = time.time() + 10.0
        while multiprocessing.active_children() and time.time() < deadline:
            time.sleep(0.05)
        assert multiprocessing.active_children() == []

    def test_close_is_idempotent(self, backend):
        middleware, _, _ = build_world(seed=53, profiles=1, repeats=1)
        runtime = MiddlewareRuntime(middleware, _config(backend))
        runtime.start()
        runtime.close()
        runtime.close()  # second close must be a quiet no-op
        assert not runtime.running

    def test_backend_object_matches_config(self, backend):
        middleware, _, _ = build_world(seed=59, profiles=1, repeats=1)
        runtime = MiddlewareRuntime(
            middleware, _config(backend), autostart=False
        )
        expected = {"thread": ThreadBackend, "process": ProcessBackend}
        assert isinstance(runtime.backend, expected[backend])
        assert isinstance(runtime.backend, ExecutionBackend)
        assert runtime.backend.name == backend
        runtime.close()


class TestWorkerProcessCrashes:
    """Process-backend only: killed children never hang the runtime."""

    def test_killed_worker_requeues_or_fails_loudly(self):
        middleware, requests, _ = build_world(seed=61, profiles=3, repeats=1)
        config = _config("process", workers=1,
                         queue_depth=len(requests))
        with MiddlewareRuntime(middleware, config) as runtime:
            # Murder the (idle) worker process out from under the backend:
            # the next dispatch hits a dead pipe, which must surface as a
            # WorkerProcessCrash and a respawn — never a hang.
            victim = runtime.backend._channels[0].process
            victim.terminate()
            victim.join(timeout=10.0)
            assert not victim.is_alive()
            handles = [runtime.submit(r) for r in requests]
            runtime.drain(timeout=120.0)
        for handle in handles:
            assert handle.done(), "killed worker must never hang a request"
            if handle.status is RequestStatus.DONE:
                assert handle.result().plan is not None
            else:
                assert handle.status is RequestStatus.FAILED
                with pytest.raises(WorkerCrashError):
                    handle.result()
        # At least one request observed the corpse and was salvaged.
        assert runtime.requeued >= 1 or any(
            h.status is RequestStatus.FAILED for h in handles
        )

    def test_requeued_request_still_matches_serial(self):
        middleware_serial, requests_serial, _ = build_world(
            seed=67, profiles=2, repeats=1
        )
        serial = [middleware_serial.submit(r).result()
                  for r in requests_serial]

        middleware, requests, _ = build_world(seed=67, profiles=2, repeats=1)
        config = _config("process", workers=1, queue_depth=len(requests))
        with MiddlewareRuntime(middleware, config) as runtime:
            victim = runtime.backend._channels[0].process
            victim.terminate()
            victim.join(timeout=10.0)
            handles = [runtime.submit(r) for r in requests]
            runtime.drain(timeout=120.0)
        for expected, handle in zip(serial, handles):
            if handle.status is RequestStatus.DONE:
                assert plan_signature(handle.result().plan) == (
                    plan_signature(expected.plan)
                ), "a crash-requeued request must still commit serially"

    def test_worker_process_crash_is_a_worker_crash_error(self):
        assert issubclass(WorkerProcessCrash, WorkerCrashError)


class TestConfigValidation:
    def test_unknown_backend_lists_the_choices(self):
        with pytest.raises(ValueError) as excinfo:
            RuntimeConfig(backend="fiber")
        message = str(excinfo.value)
        assert "fiber" in message
        for choice in BACKEND_CHOICES:
            assert choice in message

    def test_process_backend_rejects_flight_recorder(self):
        with pytest.raises(UnsupportedBackendFeatureError):
            RuntimeConfig(backend="process",
                          flight_recorder=FlightRecorder())

    def test_process_backend_rejects_forensics_dir(self, tmp_path):
        with pytest.raises(UnsupportedBackendFeatureError):
            RuntimeConfig(backend="process", forensics_dir=str(tmp_path))

    def test_process_backend_rejects_chaos(self):
        from repro.execution.clock import SimulatedClock
        from repro.resilience import FaultEvent, FaultKind, FaultSchedule

        middleware, _, _ = build_world(seed=71, profiles=1, repeats=1)
        chaos = ChaosPolicy(
            FaultSchedule([FaultEvent(5.0, FaultKind.WORKER_CRASH, "any")]),
            SimulatedClock(),
        )
        with pytest.raises(UnsupportedBackendFeatureError):
            MiddlewareRuntime(
                middleware, RuntimeConfig(backend="process"), chaos=chaos,
            )

    def test_process_backend_rejects_cross_layer_estimation(self):
        from tests.test_runtime_determinism import CAPS, PROPS
        from repro.env.environment import PervasiveEnvironment
        from repro.semantics.ontology import Ontology
        from repro.services.generator import ServiceGenerator

        ontology = Ontology("backend-tests")
        root = ontology.declare_class("task:Root")
        for capability in CAPS:
            ontology.declare_class(capability, [root])
        environment = PervasiveEnvironment(seed=73)
        generator = ServiceGenerator(PROPS, seed=73)
        for service in generator.candidates(CAPS[0], 3):
            environment.host_on_new_device(service)
        middleware = QASOM.for_environment(
            environment, PROPS, ontology=ontology,
            config=MiddlewareConfig(infrastructure_aware=True),
        )
        assert middleware.estimator is not None
        with pytest.raises(UnsupportedBackendFeatureError):
            MiddlewareRuntime(middleware, RuntimeConfig(backend="process"))

    def test_thread_backend_still_supports_everything(self, tmp_path):
        config = RuntimeConfig(
            backend="thread",
            flight_recorder=FlightRecorder(),
            forensics_dir=str(tmp_path),
        )
        assert config.backend == "thread"

    def test_unsupported_feature_error_is_a_runtime_error(self):
        assert issubclass(
            UnsupportedBackendFeatureError, MiddlewareRuntimeError
        )


class TestWorkerThreadsShim:
    def test_worker_threads_warns_and_maps_onto_workers(self):
        with pytest.warns(DeprecationWarning, match="worker_threads"):
            config = RuntimeConfig(worker_threads=6)
        assert config.workers == 6
        assert config.backend == "thread"

    def test_workers_spelling_is_shim_free(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            config = RuntimeConfig(workers=6)
        assert config.workers == 6
