"""Tests for the simulated clock."""

from __future__ import annotations

import pytest

from repro.errors import ExecutionError
from repro.execution.clock import SimulatedClock


class TestSimulatedClock:
    def test_starts_at_zero_by_default(self):
        assert SimulatedClock().now() == 0.0

    def test_custom_start(self):
        assert SimulatedClock(100.0).now() == 100.0

    def test_advance(self):
        clock = SimulatedClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now() == 2.0

    def test_advance_zero_is_fine(self):
        clock = SimulatedClock(5.0)
        clock.advance(0.0)
        assert clock.now() == 5.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ExecutionError):
            SimulatedClock().advance(-1.0)

    def test_advance_to(self):
        clock = SimulatedClock(10.0)
        clock.advance_to(25.0)
        assert clock.now() == 25.0

    def test_advance_to_past_rejected(self):
        clock = SimulatedClock(10.0)
        with pytest.raises(ExecutionError):
            clock.advance_to(5.0)

    def test_advance_to_same_instant_is_fine(self):
        clock = SimulatedClock(10.0)
        clock.advance_to(10.0)
        assert clock.now() == 10.0
