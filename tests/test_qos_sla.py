"""Tests for SLA derivation and compliance tracking."""

from __future__ import annotations

import pytest

from repro.qos.properties import STANDARD_PROPERTIES
from repro.qos.sla import (
    ComplianceTracker,
    ServiceLevelAgreement,
    ServiceLevelObjective,
    derive_slas,
)
from repro.qos.values import QoSVector
from repro.services.discovery import QoSConstraint
from repro.services.generator import ServiceGenerator
from repro.composition.qassa import QASSA
from repro.composition.request import GlobalConstraint, UserRequest
from repro.composition.selection import CandidateSets
from repro.composition.task import Task, leaf, sequence

PROPS = {
    name: STANDARD_PROPERTIES[name]
    for name in ("response_time", "cost", "availability")
}


@pytest.fixture
def plan():
    task = Task("t", sequence(leaf("A", "task:A"), leaf("B", "task:B")))
    generator = ServiceGenerator(PROPS, seed=61)
    candidates = CandidateSets(
        task,
        {a.name: generator.candidates(a.capability, 10)
         for a in task.activities},
    )
    request = UserRequest(
        task,
        constraints=(
            GlobalConstraint.at_most("response_time", 3000.0),
            GlobalConstraint.at_least("availability", 0.36),
        ),
        weights={n: 1.0 for n in PROPS},
    )
    return QASSA(PROPS).select(request, candidates)


class TestDerivation:
    def test_primaries_only_when_alternates_excluded(self, plan):
        slas = derive_slas(plan, PROPS, include_alternates=False)
        bound_ids = {s.primary.service_id for s in plan.selections.values()}
        assert set(slas) == bound_ids

    def test_default_covers_every_ranked_service(self, plan):
        slas = derive_slas(plan, PROPS)
        ranked_ids = {
            service.service_id
            for selection in plan.selections.values()
            for service in selection.services
        }
        assert set(slas) == ranked_ids

    def test_additive_budget_split(self, plan):
        slas = derive_slas(plan, PROPS)
        sla = next(iter(slas.values()))
        rt = sla.objective_for("response_time")
        assert rt is not None
        assert rt.constraint.bound == pytest.approx(1500.0)  # 3000 / 2

    def test_multiplicative_floor_takes_root(self, plan):
        slas = derive_slas(plan, PROPS)
        sla = next(iter(slas.values()))
        avail = sla.objective_for("availability")
        assert avail is not None
        assert avail.constraint.bound == pytest.approx(0.6)  # 0.36 ** 0.5

    def test_penalty_threaded_through(self, plan):
        slas = derive_slas(plan, PROPS, penalty_per_violation=2.5)
        objective = next(iter(slas.values())).objectives[0]
        assert objective.penalty_per_violation == 2.5

    def test_unadvertised_property_excluded(self, plan):
        request = plan.request
        # Add a constraint on a property no candidate advertises objectives
        # for by restricting the property map passed to derive_slas.
        slas = derive_slas(plan, {"cost": PROPS["cost"]})
        for sla in slas.values():
            assert all(
                o.property_name == "cost" for o in sla.objectives
            ) or sla.objectives == ()


class TestComplianceTracking:
    def make_tracker(self, bound=100.0, penalty=1.0):
        sla = ServiceLevelAgreement(
            service_id="svc-1",
            provider="p",
            objectives=(
                ServiceLevelObjective(
                    QoSConstraint("response_time", "<=", bound), penalty
                ),
            ),
        )
        return ComplianceTracker({"svc-1": sla})

    def test_compliant_observations(self):
        tracker = self.make_tracker()
        assert tracker.record("svc-1", "response_time", 50.0) is False
        assert tracker.record("svc-1", "response_time", 99.0) is False
        report = tracker.report("svc-1")[0]
        assert report.observations == 2
        assert report.compliant
        assert report.compliance_ratio == 1.0
        assert tracker.total_penalty() == 0.0

    def test_violation_accrues_penalty(self):
        tracker = self.make_tracker(penalty=2.0)
        assert tracker.record("svc-1", "response_time", 150.0) is True
        tracker.record("svc-1", "response_time", 50.0)
        report = tracker.report("svc-1")[0]
        assert report.violations == 1
        assert report.compliance_ratio == pytest.approx(0.5)
        assert tracker.total_penalty() == 2.0
        assert tracker.breached_agreements() == ["svc-1"]

    def test_worst_value_tracked(self):
        tracker = self.make_tracker()
        for value in (50.0, 170.0, 120.0):
            tracker.record("svc-1", "response_time", value)
        assert tracker.report("svc-1")[0].worst_value == 170.0

    def test_uncontracted_observations_ignored(self):
        tracker = self.make_tracker()
        assert tracker.record("svc-other", "response_time", 1e9) is False
        assert tracker.record("svc-1", "cost", 1e9) is False
        assert tracker.summary()["observations"] == 0.0

    def test_record_vector(self):
        tracker = self.make_tracker()
        vector = QoSVector(
            {"response_time": 500.0, "cost": 1.0}, PROPS
        )
        assert tracker.record_vector("svc-1", vector) == 1

    def test_no_observations_is_compliant(self):
        tracker = self.make_tracker()
        report = tracker.report("svc-1")[0]
        assert report.compliance_ratio == 1.0
        assert report.compliant


class TestEndToEndCompliance:
    def test_execution_trace_feeds_tracker(self, plan):
        """Executing the plan and replaying observed QoS into the tracker
        yields a coherent compliance summary."""
        from repro.execution.engine import ExecutionEngine

        slas = derive_slas(plan, PROPS, penalty_per_violation=1.0)
        tracker = ComplianceTracker(slas)

        def invoker(service, timestamp):
            return service.advertised_qos

        engine = ExecutionEngine(PROPS, invoker)
        report = engine.execute(plan)
        for record in report.invocations:
            if record.observed_qos is not None:
                tracker.record_vector(record.service_id, record.observed_qos)
        summary = tracker.summary()
        # Two activities, each contributing its full ranked list.
        expected_agreements = float(sum(
            len(selection.services) for selection in plan.selections.values()
        ))
        assert summary["agreements"] == expected_agreements
        assert summary["observations"] > 0
        # The plan is feasible and providers are honest here, so additive
        # shares may still be individually exceeded (equal-share is
        # conservative per service); the tracker must simply stay coherent.
        assert 0 <= summary["violations"] <= summary["observations"]
