"""Tests for the shared selection types (CandidateSets, CompositionPlan)."""

from __future__ import annotations

import pytest

from repro.errors import NoCandidateError, SelectionError
from repro.qos.properties import RESPONSE_TIME
from repro.composition.aggregation import AggregationApproach
from repro.composition.request import GlobalConstraint, UserRequest
from repro.composition.selection import (
    CandidateSets,
    SelectedActivity,
    evaluate_assignment,
    make_global_normalizer,
)
from repro.composition.task import Task, leaf, sequence


class TestCandidateSets:
    def test_missing_activity_raises(self, small_task, generator):
        pools = {"A": generator.candidates("task:A", 3)}
        with pytest.raises(NoCandidateError):
            CandidateSets(small_task, pools)

    def test_empty_pool_raises(self, small_task, generator):
        pools = {
            "A": generator.candidates("task:A", 3),
            "B": [],
            "C": generator.candidates("task:C", 3),
        }
        with pytest.raises(NoCandidateError):
            CandidateSets(small_task, pools)

    def test_sizes_and_search_space(self, small_candidates):
        assert small_candidates.sizes() == {"A": 10, "B": 10, "C": 10}
        assert small_candidates.search_space() == 1000

    def test_extremes_direction_aware(self, small_candidates, props4):
        extremes = small_candidates.extremes("response_time", RESPONSE_TIME)
        for best, worst in extremes.values():
            assert best <= worst  # negative property: best is the minimum

    def test_extremes_missing_property_raises(self, small_task, generator):
        candidates = CandidateSets(
            small_task,
            {a.name: generator.candidates(a.capability, 2)
             for a in small_task.activities},
        )
        from repro.qos.properties import STANDARD_PROPERTIES

        with pytest.raises(SelectionError):
            candidates.extremes("security_level",
                                STANDARD_PROPERTIES["security_level"])


class TestSelectedActivity:
    def test_requires_at_least_one_service(self):
        with pytest.raises(SelectionError):
            SelectedActivity("A", [])

    def test_primary_and_alternates(self, generator):
        services = generator.candidates("task:A", 3)
        selected = SelectedActivity("A", services)
        assert selected.primary is services[0]
        assert selected.alternates == services[1:]


class TestGlobalNormalizer:
    def test_aggregated_values_fall_inside_spans(
        self, small_task, small_candidates, props4, loose_request
    ):
        normalizer = make_global_normalizer(
            small_task, small_candidates, props4,
            AggregationApproach.PESSIMISTIC,
        )
        # Any concrete assignment's aggregate must be inside the spans.
        assignment = {
            name: small_candidates[name][0]
            for name in small_candidates.activity_names()
        }
        aggregated, utility, _ = evaluate_assignment(
            small_task, loose_request, assignment, props4, normalizer,
            AggregationApproach.PESSIMISTIC,
        )
        for name in props4:
            low, high = normalizer.span(name)
            assert low - 1e-9 <= aggregated[name] <= high + 1e-9
        assert 0.0 <= utility <= 1.0


class TestNormalizerEdgeCases:
    """Edge cases surfaced while building the differential fuzzing sweep."""

    def test_unadvertised_property_raises(self, small_task, generator):
        # A normaliser over a property no candidate advertises cannot be
        # built — the error must be a SelectionError, not a KeyError.
        from repro.qos.properties import STANDARD_PROPERTIES

        candidates = CandidateSets(
            small_task,
            {a.name: generator.candidates(a.capability, 2)
             for a in small_task.activities},
        )
        props = {"security_level": STANDARD_PROPERTIES["security_level"]}
        with pytest.raises(SelectionError):
            make_global_normalizer(
                small_task, candidates, props, AggregationApproach.PESSIMISTIC
            )

    def test_single_candidate_degenerate_spans(
        self, small_task, generator, props4, loose_request
    ):
        # One candidate per activity collapses every span to a point;
        # normalised utility must stay defined and inside [0, 1].
        candidates = CandidateSets(
            small_task,
            {a.name: generator.candidates(a.capability, 1)
             for a in small_task.activities},
        )
        normalizer = make_global_normalizer(
            small_task, candidates, props4, AggregationApproach.PESSIMISTIC
        )
        assignment = {
            name: candidates[name][0] for name in candidates.activity_names()
        }
        aggregated, utility, feasible = evaluate_assignment(
            small_task, loose_request, assignment, props4, normalizer,
            AggregationApproach.PESSIMISTIC,
        )
        assert 0.0 <= utility <= 1.0
        assert feasible
        for name in props4:
            low, high = normalizer.span(name)
            assert low == aggregated[name] == high

    def test_infeasible_constraint_detected(
        self, small_task, small_candidates, props4
    ):
        request = UserRequest(
            small_task,
            constraints=(GlobalConstraint.at_most("response_time", 0.0),),
            weights={"response_time": 1.0},
        )
        normalizer = make_global_normalizer(
            small_task, small_candidates, props4,
            AggregationApproach.PESSIMISTIC,
        )
        assignment = {
            name: small_candidates[name][0]
            for name in small_candidates.activity_names()
        }
        relevant = {"response_time": props4["response_time"]}
        _, _, feasible = evaluate_assignment(
            small_task, request, assignment, relevant, normalizer,
            AggregationApproach.PESSIMISTIC,
        )
        assert not feasible


class TestCompositionPlanRebind:
    def test_rebind_recomputes_aggregate_and_feasibility(
        self, small_task, small_candidates, props4
    ):
        from repro.composition.qassa import QASSA

        request = UserRequest(
            small_task,
            constraints=(GlobalConstraint.at_most("response_time", 1e9),),
            weights={"response_time": 1.0},
        )
        plan = QASSA(props4).select(request, small_candidates)
        original_qos = plan.aggregated_qos
        alternates = plan.alternates_for("A")
        if not alternates:
            pytest.skip("no alternates kept for activity A")
        rebound = plan.rebind("A", alternates[0], props4)
        assert rebound.selections["A"].primary == alternates[0]
        assert rebound.aggregated_qos != original_qos or True  # recomputed
        assert rebound.feasible  # huge bound still satisfied
        # Original untouched.
        assert plan.selections["A"].primary != alternates[0]
