"""Tests for graded semantic concept matching."""

from __future__ import annotations

import pytest

from repro.semantics.matching import (
    MatchCache,
    MatchDegree,
    match_concepts,
    similarity,
)
from repro.semantics.ontology import Ontology


@pytest.fixture
def tasks():
    onto = Ontology("tasks")
    onto.declare_class("Activity")
    onto.declare_class("Payment", ["Activity"])
    onto.declare_class("CardPayment", ["Payment"])
    onto.declare_class("MobilePayment", ["Payment"])
    onto.declare_class("Notification", ["Activity"])
    onto.declare_class("Billing", ["Activity"])
    onto.declare_equivalence("Billing", "Payment")
    return onto


class TestDegrees:
    def test_exact_same_concept(self, tasks):
        assert match_concepts(tasks, "Payment", "Payment") is MatchDegree.EXACT

    def test_exact_through_equivalence(self, tasks):
        assert match_concepts(tasks, "Payment", "Billing") is MatchDegree.EXACT

    def test_plugin_offer_more_specific(self, tasks):
        assert match_concepts(tasks, "Payment", "CardPayment") is MatchDegree.PLUGIN

    def test_subsume_offer_more_general(self, tasks):
        assert match_concepts(tasks, "CardPayment", "Payment") is MatchDegree.SUBSUME

    def test_sibling_shares_meaningful_ancestor(self, tasks):
        degree = match_concepts(tasks, "CardPayment", "MobilePayment")
        assert degree is MatchDegree.SIBLING

    def test_sibling_suppressed_by_root(self, tasks):
        # Payment and Notification only share Activity; naming it as the
        # root degrades the match to FAIL.
        assert (
            match_concepts(tasks, "Payment", "Notification", root="Activity")
            is MatchDegree.FAIL
        )
        assert (
            match_concepts(tasks, "Payment", "Notification")
            is MatchDegree.SIBLING
        )

    def test_fail_unrelated(self, tasks):
        tasks.declare_class("Orphan")
        assert match_concepts(tasks, "Payment", "Orphan") is MatchDegree.FAIL


class TestOrderingAndSatisfies:
    def test_total_order(self):
        assert (
            MatchDegree.EXACT
            > MatchDegree.PLUGIN
            > MatchDegree.SUBSUME
            > MatchDegree.SIBLING
            > MatchDegree.FAIL
        )

    def test_satisfies_threshold(self):
        assert MatchDegree.EXACT.satisfies
        assert MatchDegree.PLUGIN.satisfies
        assert not MatchDegree.SUBSUME.satisfies
        assert not MatchDegree.SIBLING.satisfies
        assert not MatchDegree.FAIL.satisfies


class TestSimilarity:
    def test_similarity_values(self, tasks):
        assert similarity(tasks, "Payment", "Payment") == 1.0
        assert similarity(tasks, "Payment", "CardPayment") == 0.8
        assert similarity(tasks, "CardPayment", "Payment") == 0.5
        assert similarity(tasks, "CardPayment", "MobilePayment") == 0.2

    def test_similarity_monotone_in_degree(self, tasks):
        chain = [
            similarity(tasks, "Payment", "Payment"),
            similarity(tasks, "Payment", "CardPayment"),
            similarity(tasks, "CardPayment", "Payment"),
            similarity(tasks, "CardPayment", "MobilePayment"),
        ]
        assert chain == sorted(chain, reverse=True)

    def test_similarity_forwards_root(self, tasks):
        # Without a root, Payment/Notification are siblings under Activity;
        # naming Activity as root degrades the pair to FAIL → score 0.
        assert similarity(tasks, "Payment", "Notification") == 0.2
        assert similarity(tasks, "Payment", "Notification", root="Activity") == 0.0


class TestMatchCache:
    def test_hit_and_miss_counting(self, tasks):
        cache = MatchCache(tasks)
        assert cache.match("Payment", "CardPayment") is MatchDegree.PLUGIN
        assert (cache.hits, cache.misses) == (0, 1)
        assert cache.match("Payment", "CardPayment") is MatchDegree.PLUGIN
        assert (cache.hits, cache.misses) == (1, 1)
        assert len(cache) == 1

    def test_fail_results_are_cached_too(self, tasks):
        tasks.declare_class("Orphan")
        cache = MatchCache(tasks)
        assert cache.match("Payment", "Orphan") is MatchDegree.FAIL
        assert cache.match("Payment", "Orphan") is MatchDegree.FAIL
        # FAIL is falsy (IntEnum 0) — the second call must still be a hit.
        assert (cache.hits, cache.misses) == (1, 1)

    def test_root_is_part_of_the_key(self, tasks):
        cache = MatchCache(tasks)
        assert cache.match("Payment", "Notification") is MatchDegree.SIBLING
        assert (
            cache.match("Payment", "Notification", root="Activity")
            is MatchDegree.FAIL
        )
        assert len(cache) == 2

    def test_ontology_mutation_invalidates(self, tasks):
        tasks.declare_class("Orphan")
        cache = MatchCache(tasks)
        assert cache.match("Payment", "Orphan") is MatchDegree.FAIL
        tasks.declare_subclass("Orphan", "Payment")
        assert cache.match("Payment", "Orphan") is MatchDegree.PLUGIN
        # The stale FAIL entry was flushed, not served.
        assert cache.misses == 2

    def test_similarity_matches_module_function(self, tasks):
        cache = MatchCache(tasks)
        for required, offered in (
            ("Payment", "Payment"),
            ("Payment", "CardPayment"),
            ("CardPayment", "Payment"),
            ("CardPayment", "MobilePayment"),
        ):
            assert cache.similarity(required, offered) == similarity(
                tasks, required, offered
            )
