"""Tests for the prebuilt paper scenarios."""

from __future__ import annotations

import pytest

from repro.composition.task import Conditional, Loop, Parallel
from repro.env.scenarios import (
    build_hospital_scenario,
    build_holiday_camp_scenario,
    build_shopping_scenario,
    build_task_ontology,
)


class TestTaskOntology:
    def setup_method(self):
        self.onto = build_task_ontology()

    def test_payment_specialisations(self):
        assert self.onto.subsumes("task:Payment", "task:CardPayment")
        assert self.onto.subsumes("task:Payment", "task:MobilePayment")

    def test_streaming_specialisations(self):
        assert self.onto.subsumes("task:Streaming", "task:AudioStreaming")
        assert self.onto.subsumes("task:UserActivity", "task:VideoStreaming")

    def test_data_concepts(self):
        assert self.onto.subsumes("data:Data", "data:Receipt")
        assert not self.onto.subsumes("task:UserActivity", "data:Receipt")


@pytest.mark.parametrize(
    "builder",
    [build_shopping_scenario, build_hospital_scenario,
     build_holiday_camp_scenario],
)
class TestScenarioShape:
    def test_scenario_is_complete(self, builder):
        scenario = builder()
        assert scenario.task.size() >= 2
        assert len(scenario.environment.registry) > 0
        assert scenario.request.constraints
        assert scenario.repository.get(None) is None or True
        assert len(list(scenario.repository)) >= 1
        # Every task class holds the primary plus at least one alternative.
        for task_class in scenario.repository:
            assert len(task_class) >= 2

    def test_all_activities_have_semantic_candidates(self, builder):
        from repro.services.discovery import DiscoveryQuery, QoSAwareDiscovery

        scenario = builder()
        discovery = QoSAwareDiscovery(
            scenario.environment.registry, scenario.ontology
        )
        for activity in scenario.task.activities:
            candidates = discovery.candidates(
                DiscoveryQuery(activity.capability)
            )
            assert candidates, f"no candidates for {activity.name}"


class TestScenarioSpecifics:
    def test_shopping_has_parallel_payment(self):
        scenario = build_shopping_scenario()
        assert scenario.task.has_pattern(Parallel)

    def test_hospital_has_diagnosis_loop(self):
        scenario = build_hospital_scenario()
        assert scenario.task.has_pattern(Loop)

    def test_camp_has_streaming_choice(self):
        scenario = build_holiday_camp_scenario()
        assert scenario.task.has_pattern(Conditional)

    def test_camp_environment_is_churny(self):
        scenario = build_holiday_camp_scenario()
        assert scenario.environment.config.churn_leave_rate > 0

    def test_scenarios_deterministic_under_seed(self):
        a = build_shopping_scenario(seed=42)
        b = build_shopping_scenario(seed=42)
        ids_a = sorted(s.service_id for s in a.environment.registry)
        ids_b = sorted(s.service_id for s in b.environment.registry)
        # Service ids differ (global counter) but QoS populations match.
        qos_a = sorted(repr(s.advertised_qos) for s in a.environment.registry)
        qos_b = sorted(repr(s.advertised_qos) for s in b.environment.registry)
        assert qos_a == qos_b
