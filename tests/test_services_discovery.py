"""Tests for QoS-aware semantic service discovery."""

from __future__ import annotations

import pytest

from repro.errors import DiscoveryError
from repro.qos.properties import AVAILABILITY, COST, RESPONSE_TIME
from repro.qos.values import QoSVector
from repro.semantics.matching import MatchDegree
from repro.semantics.ontology import Ontology
from repro.services.description import ServiceDescription
from repro.services.discovery import (
    DiscoveryQuery,
    QoSAwareDiscovery,
    QoSConstraint,
)
from repro.services.registry import ServiceRegistry

PROPS = {
    "response_time": RESPONSE_TIME,
    "cost": COST,
    "availability": AVAILABILITY,
}


def svc(name, capability, rt=100.0, cost=1.0, avail=0.95, **kw):
    return ServiceDescription(
        name=name,
        capability=capability,
        advertised_qos=QoSVector(
            {"response_time": rt, "cost": cost, "availability": avail}, PROPS
        ),
        **kw,
    )


@pytest.fixture
def ontology():
    onto = Ontology("tasks")
    onto.declare_class("task:Activity")
    onto.declare_class("task:Payment", ["task:Activity"])
    onto.declare_class("task:CardPayment", ["task:Payment"])
    onto.declare_class("task:Browse", ["task:Activity"])
    onto.declare_class("data:Data")
    onto.declare_class("data:Receipt", ["data:Data"])
    onto.declare_class("data:DetailedReceipt", ["data:Receipt"])
    onto.declare_class("data:Order", ["data:Data"])
    return onto


@pytest.fixture
def registry():
    return ServiceRegistry()


class TestQoSConstraint:
    def test_le_constraint(self):
        c = QoSConstraint("response_time", "<=", 100.0)
        assert c.satisfied_by(100.0)
        assert c.satisfied_by(50.0)
        assert not c.satisfied_by(101.0)

    def test_ge_constraint(self):
        c = QoSConstraint("availability", ">=", 0.9)
        assert c.satisfied_by(0.95)
        assert not c.satisfied_by(0.85)

    def test_slack(self):
        assert QoSConstraint("cost", "<=", 10.0).slack(7.0) == pytest.approx(3.0)
        assert QoSConstraint("availability", ">=", 0.9).slack(0.8) == (
            pytest.approx(-0.1)
        )

    def test_invalid_operator_rejected(self):
        with pytest.raises(DiscoveryError):
            QoSConstraint("cost", "==", 1.0)


class TestFunctionalMatching:
    def test_syntactic_fallback_without_ontology(self, registry):
        registry.publish(svc("p1", "task:Payment"))
        registry.publish(svc("c1", "task:CardPayment"))
        discovery = QoSAwareDiscovery(registry, task_ontology=None)
        results = discovery.discover(DiscoveryQuery("task:Payment"))
        assert [m.service.name for m in results] == ["p1"]

    def test_semantic_plugin_match(self, registry, ontology):
        registry.publish(svc("card", "task:CardPayment"))
        discovery = QoSAwareDiscovery(registry, ontology)
        results = discovery.discover(DiscoveryQuery("task:Payment"))
        assert len(results) == 1
        assert results[0].degree is MatchDegree.PLUGIN

    def test_subsume_excluded_by_default(self, registry, ontology):
        registry.publish(svc("generic", "task:Payment"))
        discovery = QoSAwareDiscovery(registry, ontology)
        results = discovery.discover(DiscoveryQuery("task:CardPayment"))
        assert results == []

    def test_subsume_included_when_requested(self, registry, ontology):
        registry.publish(svc("generic", "task:Payment"))
        discovery = QoSAwareDiscovery(registry, ontology)
        results = discovery.discover(
            DiscoveryQuery("task:CardPayment",
                           minimum_degree=MatchDegree.SUBSUME)
        )
        assert len(results) == 1

    def test_results_sorted_best_degree_first(self, registry, ontology):
        registry.publish(svc("exact", "task:Payment"))
        registry.publish(svc("specific", "task:CardPayment"))
        discovery = QoSAwareDiscovery(registry, ontology)
        results = discovery.discover(DiscoveryQuery("task:Payment"))
        assert [m.service.name for m in results] == ["exact", "specific"]

    def test_unrelated_capability_rejected(self, registry, ontology):
        registry.publish(svc("b", "task:Browse"))
        discovery = QoSAwareDiscovery(registry, ontology)
        assert discovery.discover(DiscoveryQuery("task:Payment")) == []


class TestIOPEMatching:
    def test_required_output_must_be_produced(self, registry, ontology):
        registry.publish(
            svc("with-receipt", "task:Payment",
                outputs=frozenset({"data:Receipt"}))
        )
        registry.publish(svc("no-receipt", "task:Payment"))
        discovery = QoSAwareDiscovery(registry, ontology)
        results = discovery.discover(
            DiscoveryQuery("task:Payment", outputs=frozenset({"data:Receipt"}))
        )
        assert [m.service.name for m in results] == ["with-receipt"]

    def test_output_matches_semantically(self, registry, ontology):
        registry.publish(
            svc("detailed", "task:Payment",
                outputs=frozenset({"data:DetailedReceipt"}))
        )
        discovery = QoSAwareDiscovery(registry, ontology)
        results = discovery.discover(
            DiscoveryQuery("task:Payment", outputs=frozenset({"data:Receipt"}))
        )
        assert len(results) == 1

    def test_service_inputs_must_be_coverable(self, registry, ontology):
        registry.publish(
            svc("needs-order", "task:Payment",
                inputs=frozenset({"data:Order"}))
        )
        discovery = QoSAwareDiscovery(registry, ontology)
        # Query provides only a receipt: the service's input is uncovered.
        assert (
            discovery.discover(
                DiscoveryQuery("task:Payment",
                               inputs=frozenset({"data:Receipt"}))
            )
            == []
        )
        # Query declaring no inputs imposes nothing.
        assert len(discovery.discover(DiscoveryQuery("task:Payment"))) == 1


class TestQoSFiltering:
    def test_local_constraint_prunes(self, registry, ontology):
        registry.publish(svc("fast", "task:Payment", rt=50.0))
        registry.publish(svc("slow", "task:Payment", rt=500.0))
        discovery = QoSAwareDiscovery(registry, ontology)
        results = discovery.discover(
            DiscoveryQuery(
                "task:Payment",
                local_constraints=(QoSConstraint("response_time", "<=", 100.0),),
            )
        )
        assert [m.service.name for m in results] == ["fast"]

    def test_missing_advertised_property_is_a_miss(self, registry, ontology):
        bare = ServiceDescription(
            name="bare",
            capability="task:Payment",
            advertised_qos=QoSVector({"cost": 1.0}, PROPS),
        )
        registry.publish(bare)
        discovery = QoSAwareDiscovery(registry, ontology)
        results = discovery.discover(
            DiscoveryQuery(
                "task:Payment",
                local_constraints=(QoSConstraint("response_time", "<=", 1e9),),
            )
        )
        assert results == []

    def test_candidates_shortcut(self, registry, ontology):
        registry.publish(svc("a", "task:Payment"))
        discovery = QoSAwareDiscovery(registry, ontology)
        services = discovery.candidates(DiscoveryQuery("task:Payment"))
        assert [s.name for s in services] == ["a"]


class TestCapabilityPoolAndCache:
    def test_pool_matches_full_scan(self, registry, ontology):
        # The capability-indexed pool must yield exactly the services a
        # grade-every-service scan would have admitted, in the same order.
        for i in range(4):
            registry.publish(svc(f"p{i}", "task:Payment", rt=10.0 * (i + 1)))
            registry.publish(svc(f"c{i}", "task:CardPayment", rt=10.0 * (i + 1)))
            registry.publish(svc(f"b{i}", "task:Browse"))
        discovery = QoSAwareDiscovery(registry, ontology)
        query = DiscoveryQuery("task:Payment")
        results = discovery.discover(query)
        expected = sorted(
            (
                (s, discovery._functional_degree(query.capability, s.capability))
                for s in registry
                if discovery._functional_degree(
                    query.capability, s.capability
                ) >= query.minimum_degree
            ),
            key=lambda pair: (-pair[1], pair[0].name, pair[0].service_id),
        )
        assert [(m.service, m.degree) for m in results] == expected

    def test_repeated_queries_hit_the_cache(self, registry, ontology):
        for i in range(3):
            registry.publish(svc(f"p{i}", "task:Payment"))
            registry.publish(svc(f"c{i}", "task:CardPayment"))
        discovery = QoSAwareDiscovery(registry, ontology)
        query = DiscoveryQuery("task:Payment")
        first = discovery.discover(query)
        misses_after_first = discovery.match_cache.misses
        second = discovery.discover(query)
        assert [m.service.service_id for m in first] == [
            m.service.service_id for m in second
        ]
        # Two distinct capabilities to grade: the second query re-grades
        # nothing — every lookup is a hit.
        assert discovery.match_cache.misses == misses_after_first
        assert discovery.match_cache.hits >= 2

    def test_shared_cache_instance_accepted(self, registry, ontology):
        from repro.semantics.matching import MatchCache

        shared = MatchCache(ontology)
        registry.publish(svc("p", "task:Payment"))
        discovery = QoSAwareDiscovery(registry, ontology, match_cache=shared)
        discovery.discover(DiscoveryQuery("task:Payment"))
        assert discovery.match_cache is shared
        assert shared.misses > 0

    def test_cache_follows_ontology_mutation(self, registry, ontology):
        registry.publish(svc("browse", "task:Browse"))
        discovery = QoSAwareDiscovery(registry, ontology)
        assert discovery.discover(DiscoveryQuery("task:Payment")) == []
        # A new declaration makes Browse a Payment; the cached FAIL must not
        # survive the ontology mutation.
        ontology.declare_subclass("task:Browse", "task:Payment")
        results = discovery.discover(DiscoveryQuery("task:Payment"))
        assert [m.service.name for m in results] == ["browse"]
