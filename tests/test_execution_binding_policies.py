"""Tests for the dynamic-binding policies."""

from __future__ import annotations

import pytest

from repro.qos.properties import STANDARD_PROPERTIES
from repro.services.generator import ServiceGenerator
from repro.adaptation.monitoring import QoSMonitor, QoSObservation
from repro.composition.qassa import QASSA, QassaConfig
from repro.composition.request import UserRequest
from repro.composition.selection import CandidateSets
from repro.composition.task import Task, leaf, sequence
from repro.execution.binding import BindingPolicy, DynamicBinder

PROPS = {
    name: STANDARD_PROPERTIES[name]
    for name in ("response_time", "cost", "availability")
}


@pytest.fixture
def plan():
    task = Task("t", sequence(leaf("A", "task:A")))
    generator = ServiceGenerator(PROPS, seed=71)
    candidates = CandidateSets(task, {"A": generator.candidates("task:A", 12)})
    request = UserRequest(task, weights={"response_time": 1.0})
    return QASSA(PROPS, config=QassaConfig(alternates_kept=3)).select(
        request, candidates
    )


class TestFailoverPolicy:
    def test_always_primary_when_alive(self, plan):
        binder = DynamicBinder(PROPS, policy=BindingPolicy.FAILOVER)
        for _ in range(3):
            assert binder.bind(plan, "A") == plan.selections["A"].primary

    def test_falls_to_next_ranked(self, plan):
        primary = plan.selections["A"].primary
        binder = DynamicBinder(
            PROPS, policy=BindingPolicy.FAILOVER,
            liveness=lambda s: s != primary,
        )
        assert binder.bind(plan, "A") == plan.selections["A"].services[1]

    def test_ignores_runtime_estimates(self, plan):
        primary = plan.selections["A"].primary
        alternates = plan.selections["A"].alternates
        monitor = QoSMonitor(PROPS)
        monitor.observe(
            QoSObservation(primary.service_id, "response_time", 1e9, 0.0)
        )
        monitor.observe(
            QoSObservation(alternates[0].service_id, "response_time", 1.0, 0.0)
        )
        binder = DynamicBinder(PROPS, monitor=monitor,
                               policy=BindingPolicy.FAILOVER)
        assert binder.bind(plan, "A") == primary


class TestRoundRobinPolicy:
    def test_rotates_over_ranked_services(self, plan):
        binder = DynamicBinder(PROPS, policy=BindingPolicy.ROUND_ROBIN)
        services = plan.selections["A"].services
        picks = [binder.bind(plan, "A") for _ in range(len(services) * 2)]
        assert picks[: len(services)] == services
        assert picks[len(services):] == services  # wraps around

    def test_per_activity_cursors_independent(self):
        task = Task("t", sequence(leaf("A", "task:A"), leaf("B", "task:B")))
        generator = ServiceGenerator(PROPS, seed=72)
        candidates = CandidateSets(
            task,
            {a.name: generator.candidates(a.capability, 6)
             for a in task.activities},
        )
        request = UserRequest(task, weights={"response_time": 1.0})
        plan = QASSA(PROPS, config=QassaConfig(alternates_kept=2)).select(
            request, candidates
        )
        binder = DynamicBinder(PROPS, policy=BindingPolicy.ROUND_ROBIN)
        first_a = binder.bind(plan, "A")
        first_b = binder.bind(plan, "B")
        second_a = binder.bind(plan, "A")
        assert first_a == plan.selections["A"].services[0]
        assert first_b == plan.selections["B"].services[0]
        assert second_a == plan.selections["A"].services[1]

    def test_skips_dead_services(self, plan):
        services = plan.selections["A"].services
        dead = services[1]
        binder = DynamicBinder(
            PROPS, policy=BindingPolicy.ROUND_ROBIN,
            liveness=lambda s: s != dead,
        )
        picks = {binder.bind(plan, "A") for _ in range(6)}
        assert dead not in picks


class TestUtilityPolicyRemainsDefault:
    def test_default_policy(self):
        assert DynamicBinder(PROPS).policy is BindingPolicy.UTILITY

    def test_round_robin_state_survives_engine_retries(self, plan):
        """The engine narrows liveness in place, so the binder keeps its
        per-activity cursor across retry attempts."""
        from repro.execution.engine import ExecutionEngine

        binder = DynamicBinder(PROPS, policy=BindingPolicy.ROUND_ROBIN)
        calls = []

        def invoker(service, timestamp):
            calls.append(service.service_id)
            return service.advertised_qos

        engine = ExecutionEngine(PROPS, invoker, binder=binder)
        engine.execute(plan)
        engine.execute(plan)
        services = plan.selections["A"].services
        assert calls[0] == services[0].service_id
        assert calls[1] == services[1 % len(services)].service_id
