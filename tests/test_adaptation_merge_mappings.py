"""Tests for merge-style particular vertex mappings (§V.6.2.3).

Branches of a conditional are mutually exclusive at run time, so two
pattern vertices from different branches may map onto the *same* host
vertex (and their edge paths may overlap) — the merge counterpart of the
split mappings.
"""

from __future__ import annotations

import pytest

from repro.adaptation.behaviour_graph import task_to_graph
from repro.adaptation.homeomorphism import (
    HomeomorphismConfig,
    find_homeomorphism,
)
from repro.composition.task import (
    Task,
    conditional,
    leaf,
    parallel,
    sequence,
)
from repro.semantics.matching import MatchDegree
from repro.semantics.ontology import Ontology


@pytest.fixture
def ontology():
    onto = Ontology("tasks")
    onto.declare_class("task:Activity")
    for name in ("A", "B", "C", "D"):
        onto.declare_class(f"task:{name}", ["task:Activity"])
    onto.declare_class("task:Stream", ["task:Activity"])
    onto.declare_class("task:AudioStream", ["task:Stream"])
    onto.declare_class("task:VideoStream", ["task:Stream"])
    return onto


class TestBranchPaths:
    def test_conditional_vertices_carry_branch_paths(self):
        task = Task(
            "t", sequence(leaf("A"), conditional(leaf("B"), leaf("C"))),
        )
        graph = task_to_graph(task)
        by_name = {v.activity_name: v for v in graph.vertices()}
        assert by_name["A"].branch_path == ()
        assert by_name["B"].branch_path != by_name["C"].branch_path
        assert by_name["B"].mutually_exclusive_with(by_name["C"])
        assert not by_name["A"].mutually_exclusive_with(by_name["B"])

    def test_nested_conditionals(self):
        task = Task(
            "t",
            conditional(
                conditional(leaf("A"), leaf("B")),
                leaf("C"),
            ),
        )
        graph = task_to_graph(task)
        by_name = {v.activity_name: v for v in graph.vertices()}
        assert by_name["A"].mutually_exclusive_with(by_name["B"])
        assert by_name["A"].mutually_exclusive_with(by_name["C"])
        assert by_name["B"].mutually_exclusive_with(by_name["C"])

    def test_parallel_branches_not_exclusive(self):
        task = Task("t", parallel(leaf("A"), leaf("B")))
        graph = task_to_graph(task)
        by_name = {v.activity_name: v for v in graph.vertices()}
        assert not by_name["A"].mutually_exclusive_with(by_name["B"])

    def test_same_branch_not_exclusive(self):
        task = Task(
            "t",
            conditional(sequence(leaf("A"), leaf("B")), leaf("C")),
        )
        graph = task_to_graph(task)
        by_name = {v.activity_name: v for v in graph.vertices()}
        assert not by_name["A"].mutually_exclusive_with(by_name["B"])


class TestMergeMapping:
    def test_xor_branches_merge_onto_generic_vertex(self, ontology):
        """Audio/video conditional branches both map onto one generic
        Stream activity (SUBSUME threshold needed: the host label is more
        general)."""
        pattern = task_to_graph(
            Task(
                "p",
                sequence(
                    leaf("Top", "task:A"),
                    conditional(
                        leaf("Audio", "task:AudioStream"),
                        leaf("Video", "task:VideoStream"),
                    ),
                ),
            )
        )
        host = task_to_graph(
            Task(
                "h",
                sequence(leaf("TopH", "task:A"),
                         leaf("StreamH", "task:Stream")),
            )
        )
        config = HomeomorphismConfig(minimum_degree=MatchDegree.SUBSUME)
        result = find_homeomorphism(pattern, host, ontology, config)
        assert result.found
        images = {
            v.activity_name: result.vertex_mapping[v.vertex_id]
            for v in pattern.vertices()
        }
        assert images["Audio"] == images["Video"]  # merged

    def test_parallel_branches_may_not_merge(self, ontology):
        """AND branches both execute, so they must keep distinct images —
        the same shape that merges for XOR fails for AND."""
        pattern = task_to_graph(
            Task(
                "p",
                sequence(
                    leaf("Top", "task:A"),
                    parallel(
                        leaf("Audio", "task:AudioStream"),
                        leaf("Video", "task:VideoStream"),
                    ),
                ),
            )
        )
        host = task_to_graph(
            Task(
                "h",
                sequence(leaf("TopH", "task:A"),
                         leaf("StreamH", "task:Stream")),
            )
        )
        config = HomeomorphismConfig(minimum_degree=MatchDegree.SUBSUME)
        assert not find_homeomorphism(pattern, host, ontology, config).found

    def test_exclusive_paths_may_share_interiors(self, ontology):
        """Two XOR branches continuing to a join may route their edge paths
        through the same host intermediary."""
        pattern = task_to_graph(
            Task(
                "p",
                sequence(
                    leaf("S", "task:A"),
                    conditional(leaf("B1", "task:B"), leaf("C1", "task:C")),
                    leaf("E", "task:D"),
                ),
            )
        )
        # Host: S -> B -> X -> E and S -> C -> X -> E share intermediary X.
        from repro.adaptation.behaviour_graph import BehaviouralGraph, Vertex

        host = BehaviouralGraph("h")
        for vid, label in (
            ("hs", "task:A"), ("hb", "task:B"), ("hc", "task:C"),
            ("hx", "task:Stream"), ("he", "task:D"),
        ):
            host.add_vertex(Vertex(vid, label))
        host.add_edge("hs", "hb")
        host.add_edge("hs", "hc")
        host.add_edge("hb", "hx")
        host.add_edge("hc", "hx")
        host.add_edge("hx", "he")
        result = find_homeomorphism(pattern, host, ontology)
        assert result.found
        # Both join paths traverse hx.
        interiors = [
            set(path[1:-1]) for path in result.edge_paths.values() if path
        ]
        shared = [s for s in interiors if "hx" in s]
        assert len(shared) == 2

    def test_non_exclusive_vertices_still_disjoint(self, ontology):
        """Regression: ordinary sequential vertices may never share images
        even with the merge machinery active."""
        pattern = task_to_graph(
            Task("p", sequence(leaf("A1", "task:B"), leaf("A2", "task:B")))
        )
        host = task_to_graph(Task("h", sequence(leaf("H1", "task:B"))))
        assert not find_homeomorphism(pattern, host, ontology).found


class TestScenarioMergeIntegration:
    def test_camp_task_embeds_into_generic_alternative(self):
        from repro.env.scenarios import build_holiday_camp_scenario

        scenario = build_holiday_camp_scenario()
        alternative = scenario.repository.require("entertainment").behaviour(
            "entertainment-any-stream"
        )
        pattern = task_to_graph(scenario.task)
        config = HomeomorphismConfig(minimum_degree=MatchDegree.SUBSUME)
        result = find_homeomorphism(
            pattern, alternative.graph, scenario.ontology, config
        )
        assert result.found
