"""Tests for the span tracer (repro.observability.spans)."""

from __future__ import annotations

import pytest

from repro.execution.clock import SimulatedClock
from repro.observability import NULL_SPAN, NULL_TRACER, Span, Tracer
from repro.observability.spans import NullTracer


class TestSpanNesting:
    def test_root_span_lands_in_tracer(self):
        tracer = Tracer()
        with tracer.span("compose"):
            pass
        assert [s.name for s in tracer.spans] == ["compose"]
        assert tracer.spans[0].parent_id is None

    def test_children_nest_under_open_parent(self):
        tracer = Tracer()
        with tracer.span("compose") as parent:
            with tracer.span("discovery"):
                pass
            with tracer.span("qassa.select"):
                with tracer.span("qassa.cluster"):
                    pass
        assert [c.name for c in parent.children] == [
            "discovery", "qassa.select",
        ]
        assert [c.name for c in parent.children[1].children] == [
            "qassa.cluster"
        ]
        # Only the root is registered at top level.
        assert [s.name for s in tracer.spans] == ["compose"]

    def test_sequential_roots_accumulate(self):
        tracer = Tracer()
        with tracer.span("run"):
            pass
        with tracer.span("run"):
            pass
        assert len(tracer.spans) == 2

    def test_walk_and_find(self):
        tracer = Tracer()
        with tracer.span("run") as root:
            with tracer.span("invoke"):
                pass
            with tracer.span("invoke"):
                pass
        assert len(root.find("invoke")) == 2
        assert [s.name for s in root.walk()] == ["run", "invoke", "invoke"]


class TestSpanTimestamps:
    def test_wall_duration_is_positive(self):
        tracer = Tracer()
        with tracer.span("stage") as span:
            sum(range(1000))
        assert span.duration > 0.0
        assert span.ended_wall >= span.started_wall

    def test_open_span_reports_zero_duration(self):
        tracer = Tracer()
        span = tracer.span("stage")
        with span:
            assert span.duration == 0.0
        assert span.duration > 0.0

    def test_simulated_clock_captured(self):
        clock = SimulatedClock()
        tracer = Tracer(clock=clock)
        with tracer.span("invoke") as span:
            clock.advance(2.5)
        assert span.started_sim == 0.0
        assert span.ended_sim == 2.5
        assert span.sim_duration == 2.5

    def test_no_clock_means_no_sim_times(self):
        tracer = Tracer()
        with tracer.span("invoke") as span:
            pass
        assert span.started_sim is None
        assert span.sim_duration is None


class TestSpanAttributes:
    def test_creation_and_set_attributes_merge(self):
        tracer = Tracer()
        with tracer.span("discovery", activity="Pay") as span:
            span.set(pool_size=30)
        assert span.attributes == {"activity": "Pay", "pool_size": 30}

    def test_exception_recorded_and_propagated(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("stage") as span:
                raise ValueError("boom")
        assert "ValueError" in span.attributes["error"]
        # The span still closed and registered.
        assert tracer.spans == [span]

    def test_to_dict_round_trip_fields(self):
        tracer = Tracer(clock=SimulatedClock())
        with tracer.span("invoke", attempt=1) as span:
            pass
        record = span.to_dict()
        assert record["name"] == "invoke"
        assert record["attributes"] == {"attempt": 1}
        assert record["parent_id"] is None
        assert record["duration_s"] == span.duration


class TestTracerHousekeeping:
    def test_reset_drops_finished_spans(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        tracer.reset()
        assert tracer.spans == []

    def test_all_spans_flattens_depth_first(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        with tracer.span("c"):
            pass
        assert [s.name for s in tracer.all_spans()] == ["a", "b", "c"]

    def test_span_ids_unique(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        ids = [s.span_id for s in tracer.all_spans()]
        assert len(set(ids)) == len(ids)


class TestNullTracer:
    def test_null_tracer_is_shared_and_allocation_free(self):
        assert isinstance(NULL_TRACER, NullTracer)
        span = NULL_TRACER.span("anything", attr=1)
        assert span is NULL_SPAN
        # Re-issuing returns the very same object: no per-span allocation.
        assert NULL_TRACER.span("other") is NULL_SPAN

    def test_null_span_is_inert(self):
        with NULL_SPAN as span:
            assert span.set(foo=1) is NULL_SPAN
        assert NULL_TRACER.spans == ()
        assert NULL_TRACER.all_spans() == ()

    def test_null_span_propagates_exceptions(self):
        with pytest.raises(RuntimeError):
            with NULL_SPAN:
                raise RuntimeError("boom")


class TestTracerConcurrency:
    """Regression: reset() racing workers that append roots concurrently."""

    def test_reset_never_drops_concurrently_finished_roots(self):
        import threading

        tracer = Tracer()
        per_thread = 500
        workers = 4
        batches = []
        stop = threading.Event()

        def produce():
            for _ in range(per_thread):
                with tracer.span("root"):
                    pass

        def reap():
            while not stop.is_set():
                batches.append(tracer.reset())

        threads = [threading.Thread(target=produce) for _ in range(workers)]
        reaper = threading.Thread(target=reap)
        reaper.start()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stop.set()
        reaper.join()
        batches.append(tracer.reset())
        # Every finished root landed in exactly one reaped batch.
        reaped = [span for batch in batches for span in batch]
        assert len(reaped) == workers * per_thread
        assert len({span.span_id for span in reaped}) == len(reaped)

    def test_all_spans_snapshot_is_stable_under_concurrent_appends(self):
        import threading

        tracer = Tracer()
        done = threading.Event()

        def produce():
            while not done.is_set():
                with tracer.span("root"):
                    pass

        producer = threading.Thread(target=produce)
        producer.start()
        try:
            for _ in range(200):
                snapshot = tracer.all_spans()
                # The walk over the snapshot never raises even while the
                # producer keeps appending to the live roots list.
                assert all(span.name == "root" for span in snapshot)
        finally:
            done.set()
            producer.join()
