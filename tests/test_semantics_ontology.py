"""Tests for ontology declaration and subsumption reasoning."""

from __future__ import annotations

import pytest

from repro.errors import OntologyError, UnknownConceptError
from repro.semantics.ontology import Ontology


@pytest.fixture
def animals():
    onto = Ontology("animals")
    onto.declare_class("Animal")
    onto.declare_class("Mammal", ["Animal"])
    onto.declare_class("Bird", ["Animal"])
    onto.declare_class("Dog", ["Mammal"])
    onto.declare_class("Cat", ["Mammal"])
    onto.declare_class("Penguin", ["Bird"])
    return onto


class TestDeclaration:
    def test_declare_class(self, animals):
        assert animals.is_class("Dog")
        assert not animals.is_class("Unicorn")

    def test_unknown_parent_raises(self):
        onto = Ontology()
        with pytest.raises(UnknownConceptError):
            onto.declare_class("Dog", ["Mammal"])

    def test_labels_and_comments(self):
        onto = Ontology()
        onto.declare_class("X", label="The X", comment="A test concept")
        assert onto.label("X") == "The X"
        assert onto.comment("X") == "A test concept"

    def test_multiple_parents(self, animals):
        animals.declare_class("Pet", ["Animal"])
        animals.declare_class("PetDog", ["Dog", "Pet"])
        assert animals.subsumes("Pet", "PetDog")
        assert animals.subsumes("Mammal", "PetDog")

    def test_declare_subclass_post_hoc(self, animals):
        animals.declare_class("Carnivore", ["Animal"])
        animals.declare_subclass("Cat", "Carnivore")
        assert animals.subsumes("Carnivore", "Cat")

    def test_declare_subclass_unknown_raises(self, animals):
        with pytest.raises(UnknownConceptError):
            animals.declare_subclass("Cat", "Unknown")

    def test_declare_property_and_individual(self, animals):
        animals.declare_property("hasOwner", domain="Dog", range_="Animal")
        animals.declare_individual("rex", "Dog")
        assert "Dog" in animals.types_of("rex")
        assert "Mammal" in animals.types_of("rex")
        assert "Animal" in animals.types_of("rex")

    def test_individual_of_unknown_class_raises(self, animals):
        with pytest.raises(UnknownConceptError):
            animals.declare_individual("x", "Unicorn")


class TestReasoning:
    def test_ancestors_are_reflexive_transitive(self, animals):
        assert animals.ancestors("Dog") == frozenset({"Dog", "Mammal", "Animal"})

    def test_descendants(self, animals):
        assert animals.descendants("Mammal") == frozenset({"Mammal", "Dog", "Cat"})

    def test_subsumes(self, animals):
        assert animals.subsumes("Animal", "Penguin")
        assert animals.subsumes("Dog", "Dog")
        assert not animals.subsumes("Mammal", "Penguin")
        assert not animals.subsumes("Dog", "Animal")

    def test_ancestors_unknown_concept_raises(self, animals):
        with pytest.raises(UnknownConceptError):
            animals.ancestors("Unicorn")

    def test_common_ancestors(self, animals):
        common = animals.common_ancestors("Dog", "Cat")
        assert "Mammal" in common and "Animal" in common
        assert "Dog" not in common

    def test_depth(self, animals):
        assert animals.depth("Animal") == 0
        assert animals.depth("Mammal") == 1
        assert animals.depth("Dog") == 2

    def test_individuals_of_transitive(self, animals):
        animals.declare_individual("rex", "Dog")
        animals.declare_individual("tweety", "Penguin")
        assert animals.individuals_of("Animal") == {"rex", "tweety"}
        assert animals.individuals_of("Mammal") == {"rex"}
        assert animals.individuals_of("Animal", transitive=False) == set()


class TestEquivalence:
    def test_equivalents_are_symmetric_transitive(self, animals):
        animals.declare_class("Canine", ["Mammal"])
        animals.declare_class("Hound", ["Mammal"])
        animals.declare_equivalence("Dog", "Canine")
        animals.declare_equivalence("Canine", "Hound")
        assert animals.equivalents("Dog") == {"Dog", "Canine", "Hound"}
        assert animals.equivalents("Hound") == {"Dog", "Canine", "Hound"}

    def test_equivalence_folds_into_subsumption(self, animals):
        animals.declare_class("Canine", ["Animal"])
        animals.declare_equivalence("Dog", "Canine")
        # Dog inherits Canine's parents and vice versa.
        assert animals.subsumes("Canine", "Dog")
        assert animals.subsumes("Dog", "Canine")
        assert animals.subsumes("Mammal", "Canine")

    def test_equivalence_unknown_raises(self, animals):
        with pytest.raises(UnknownConceptError):
            animals.declare_equivalence("Dog", "Unicorn")

    def test_subsumption_through_equivalent_parent(self, animals):
        animals.declare_class("DomesticAnimal", ["Animal"])
        animals.declare_class("Pet", ["Animal"])
        animals.declare_equivalence("DomesticAnimal", "Pet")
        animals.declare_class("GoldFish", ["Pet"])
        assert animals.subsumes("DomesticAnimal", "GoldFish")


class TestValidationAndMerge:
    def test_validate_accepts_dag(self, animals):
        animals.validate()

    def test_validate_rejects_cycle(self):
        onto = Ontology()
        onto.declare_class("A")
        onto.declare_class("B", ["A"])
        onto.declare_subclass("A", "B")
        with pytest.raises(OntologyError):
            onto.validate()

    def test_merge_unions_statements(self, animals):
        other = Ontology("plants")
        other.declare_class("Plant")
        other.declare_class("Tree", ["Plant"])
        animals.merge(other)
        assert animals.is_class("Tree")
        assert animals.subsumes("Plant", "Tree")
        assert animals.subsumes("Animal", "Dog")

    def test_cache_invalidation_on_new_edges(self, animals):
        assert not animals.subsumes("Bird", "Dog")
        animals.declare_class("FlyingDog", ["Dog"])
        animals.declare_subclass("FlyingDog", "Bird")
        assert animals.subsumes("Bird", "FlyingDog")
