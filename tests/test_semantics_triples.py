"""Unit and property tests for the triple store."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.semantics.triples import Triple, TripleStore


def make_store(*triples):
    store = TripleStore()
    for t in triples:
        store.add(*t)
    return store


class TestBasics:
    def test_empty_store(self):
        store = TripleStore()
        assert len(store) == 0
        assert list(store.triples()) == []

    def test_add_and_contains(self):
        store = make_store(("a", "p", "b"))
        assert ("a", "p", "b") in store
        assert ("a", "p", "c") not in store
        assert len(store) == 1

    def test_add_is_idempotent(self):
        store = TripleStore()
        assert store.add("a", "p", "b") is True
        assert store.add("a", "p", "b") is False
        assert len(store) == 1

    def test_remove(self):
        store = make_store(("a", "p", "b"))
        assert store.remove("a", "p", "b") is True
        assert ("a", "p", "b") not in store
        assert len(store) == 0

    def test_remove_missing_returns_false(self):
        store = TripleStore()
        assert store.remove("a", "p", "b") is False

    def test_triple_is_iterable(self):
        s, p, o = Triple("a", "p", "b")
        assert (s, p, o) == ("a", "p", "b")


class TestPatternQueries:
    def setup_method(self):
        self.store = make_store(
            ("a", "p", "b"),
            ("a", "p", "c"),
            ("a", "q", "b"),
            ("x", "p", "b"),
        )

    def test_fully_bound(self):
        assert len(list(self.store.triples("a", "p", "b"))) == 1

    def test_subject_only(self):
        assert len(list(self.store.triples(subject="a"))) == 3

    def test_subject_predicate(self):
        results = {t.object for t in self.store.triples("a", "p")}
        assert results == {"b", "c"}

    def test_predicate_only(self):
        assert len(list(self.store.triples(predicate="p"))) == 3

    def test_predicate_object(self):
        results = {t.subject for t in self.store.triples(None, "p", "b")}
        assert results == {"a", "x"}

    def test_object_only(self):
        results = {
            (t.subject, t.predicate) for t in self.store.triples(object_="b")
        }
        assert results == {("a", "p"), ("a", "q"), ("x", "p")}

    def test_wildcard_all(self):
        assert len(list(self.store.triples())) == 4

    def test_objects_helper(self):
        assert self.store.objects("a", "p") == {"b", "c"}

    def test_subjects_helper(self):
        assert self.store.subjects("p", "b") == {"a", "x"}

    def test_one_object(self):
        assert self.store.one_object("a", "q") == "b"
        assert self.store.one_object("a", "zzz") is None

    def test_no_match_patterns_are_empty(self):
        assert list(self.store.triples("zzz")) == []
        assert list(self.store.triples(predicate="zzz")) == []
        assert list(self.store.triples(object_="zzz")) == []


class TestCopy:
    def test_copy_is_independent(self):
        store = make_store(("a", "p", "b"))
        clone = store.copy()
        clone.add("c", "p", "d")
        assert len(store) == 1
        assert len(clone) == 2


_uris = st.text(alphabet="abcxyz:", min_size=1, max_size=6)
_triples = st.tuples(_uris, _uris, _uris)


@settings(max_examples=50, deadline=None)
@given(st.lists(_triples, max_size=30))
def test_size_matches_distinct_triples(triples):
    store = TripleStore()
    for t in triples:
        store.add(*t)
    assert len(store) == len(set(triples))
    assert {tuple(t) for t in store.triples()} == set(triples)


@settings(max_examples=50, deadline=None)
@given(st.lists(_triples, min_size=1, max_size=20), st.data())
def test_indexes_stay_consistent_after_removal(triples, data):
    store = TripleStore()
    for t in triples:
        store.add(*t)
    victim = data.draw(st.sampled_from(triples))
    store.remove(*victim)
    remaining = set(triples) - {victim}
    assert {tuple(t) for t in store.triples()} == remaining
    # Every index answers consistently with the ground truth.
    for s, p, o in remaining:
        assert o in store.objects(s, p)
        assert s in store.subjects(p, o)
