"""Tests for task-class repository serialisation."""

from __future__ import annotations

import pytest

from repro.errors import BpelParseError
from repro.adaptation.repository_io import (
    dump_repository,
    load_repository,
    read_repository,
    save_repository,
)
from repro.adaptation.task_class import TaskClassRepository
from repro.composition.task import Task, conditional, leaf, loop, parallel, sequence
from repro.env.scenarios import build_shopping_scenario


@pytest.fixture
def repository():
    repo = TaskClassRepository()
    shopping = repo.new_class("shopping", "Buy things")
    shopping.add(Task("primary", sequence(leaf("A"), leaf("B"))))
    shopping.add(
        Task(
            "fancy",
            sequence(
                leaf("A2", "task:A"),
                parallel(leaf("B2", "task:B"), leaf("C2", "task:C")),
                loop(leaf("D2", "task:D"), 3, 2.0),
                conditional(leaf("E2", "task:E"), leaf("F2", "task:F"),
                            probabilities=(0.6, 0.4)),
            ),
        )
    )
    repo.new_class("empty-class", "No behaviours yet")
    return repo


class TestRoundTrip:
    def test_structure_preserved(self, repository):
        bundle = dump_repository(repository)
        recovered = load_repository(bundle)
        assert len(recovered) == 2
        shopping = recovered.require("shopping")
        assert shopping.description == "Buy things"
        assert {b.name for b in shopping} == {"primary", "fancy"}
        fancy = shopping.behaviour("fancy")
        assert fancy.task.pattern_census() == (
            repository.require("shopping").behaviour("fancy")
            .task.pattern_census()
        )

    def test_graphs_rebuilt(self, repository):
        recovered = load_repository(dump_repository(repository))
        behaviour = recovered.require("shopping").behaviour("fancy")
        assert behaviour.graph.vertex_count() == 6

    def test_empty_class_preserved(self, repository):
        recovered = load_repository(dump_repository(repository))
        assert len(recovered.require("empty-class")) == 0

    def test_double_round_trip_stable(self, repository):
        once = dump_repository(repository)
        twice = dump_repository(load_repository(once))
        assert once == twice

    def test_file_round_trip(self, repository, tmp_path):
        path = save_repository(repository, tmp_path / "repo.xml")
        assert path.exists()
        recovered = read_repository(path)
        assert {tc.name for tc in recovered} == {"shopping", "empty-class"}

    def test_ontology_threaded_through(self, repository):
        from repro.semantics.ontology import Ontology

        onto = Ontology("x")
        recovered = load_repository(dump_repository(repository), onto)
        assert recovered.ontology is onto


class TestScenarioRepositories:
    def test_shopping_scenario_repository_round_trips(self):
        scenario = build_shopping_scenario()
        recovered = load_repository(
            dump_repository(scenario.repository), scenario.ontology
        )
        original_class = scenario.repository.require("shopping")
        recovered_class = recovered.require("shopping")
        assert {b.name for b in recovered_class} == {
            b.name for b in original_class
        }
        # Homeomorphic relations survive (graphs rebuilt identically).
        primary = recovered_class.behaviour("shopping")
        assert primary.graph.vertex_count() == scenario.task.size()


class TestMalformedBundles:
    @pytest.mark.parametrize(
        "document",
        [
            "garbage <",
            "<wrongRoot/>",
            "<taskClassRepository><other/></taskClassRepository>",
            '<taskClassRepository><taskClass/></taskClassRepository>',
            '<taskClassRepository><taskClass name="x">'
            "<behaviour/></taskClass></taskClassRepository>",
            '<taskClassRepository><taskClass name="x">'
            "<oops/></taskClass></taskClassRepository>",
        ],
    )
    def test_rejected(self, document):
        with pytest.raises(BpelParseError):
            load_repository(document)
