"""Tests for QoS property definitions."""

from __future__ import annotations

import pytest

from repro.errors import QoSModelError
from repro.qos.properties import (
    AggregationKind,
    Direction,
    QoSProperty,
    AVAILABILITY,
    COST,
    RESPONSE_TIME,
    STANDARD_PROPERTIES,
    THROUGHPUT,
    property_by_name,
)
from repro.qos import units as u


class TestDirection:
    def test_negative_better(self):
        assert Direction.NEGATIVE.better(10, 20)
        assert not Direction.NEGATIVE.better(20, 10)

    def test_positive_better(self):
        assert Direction.POSITIVE.better(0.99, 0.9)

    def test_equal_is_not_better(self):
        assert not Direction.NEGATIVE.better(5, 5)
        assert not Direction.POSITIVE.better(5, 5)

    def test_best_worst(self):
        values = [3.0, 1.0, 2.0]
        assert Direction.NEGATIVE.best(values) == 1.0
        assert Direction.NEGATIVE.worst(values) == 3.0
        assert Direction.POSITIVE.best(values) == 3.0
        assert Direction.POSITIVE.worst(values) == 1.0


class TestStandardProperties:
    def test_response_time_is_negative_additive(self):
        assert RESPONSE_TIME.direction is Direction.NEGATIVE
        assert RESPONSE_TIME.aggregation is AggregationKind.ADDITIVE
        assert RESPONSE_TIME.unit is u.MILLISECONDS

    def test_availability_is_positive_multiplicative(self):
        assert AVAILABILITY.direction is Direction.POSITIVE
        assert AVAILABILITY.aggregation is AggregationKind.MULTIPLICATIVE

    def test_throughput_is_bottleneck(self):
        assert THROUGHPUT.aggregation is AggregationKind.MIN

    def test_standard_set_has_eight_properties(self):
        assert len(STANDARD_PROPERTIES) == 8

    def test_property_by_name(self):
        assert property_by_name("cost") is COST

    def test_property_by_unknown_name_raises(self):
        with pytest.raises(QoSModelError):
            property_by_name("karma")

    def test_better_delegates_to_direction(self):
        assert RESPONSE_TIME.better(10, 100)
        assert AVAILABILITY.better(0.99, 0.5)


class TestValidation:
    def test_empty_value_range_rejected(self):
        with pytest.raises(QoSModelError):
            QoSProperty(
                name="bad",
                uri="x:Bad",
                direction=Direction.NEGATIVE,
                aggregation=AggregationKind.ADDITIVE,
                unit=u.SECONDS,
                value_range=(5.0, 5.0),
            )

    def test_inverted_value_range_rejected(self):
        with pytest.raises(QoSModelError):
            QoSProperty(
                name="bad",
                uri="x:Bad",
                direction=Direction.NEGATIVE,
                aggregation=AggregationKind.ADDITIVE,
                unit=u.SECONDS,
                value_range=(10.0, 1.0),
            )
