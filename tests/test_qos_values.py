"""Tests for QoS values, vectors, dominance and distance."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QoSModelError
from repro.qos import units as u
from repro.qos.properties import (
    AVAILABILITY,
    COST,
    RESPONSE_TIME,
    STANDARD_PROPERTIES,
)
from repro.qos.values import QoSValue, QoSVector

PROPS = {
    "response_time": RESPONSE_TIME,
    "cost": COST,
    "availability": AVAILABILITY,
}


def vec(**values):
    return QoSVector(values, PROPS)


class TestQoSValue:
    def test_default_unit_is_property_unit(self):
        value = QoSValue(RESPONSE_TIME, 120.0)
        assert value.unit is u.MILLISECONDS
        assert value.in_canonical_unit() == 120.0

    def test_unit_conversion(self):
        value = QoSValue(RESPONSE_TIME, 1.5, unit=u.SECONDS)
        assert value.in_canonical_unit() == pytest.approx(1500.0)

    def test_better_than_direction_aware(self):
        fast = QoSValue(RESPONSE_TIME, 100.0)
        slow = QoSValue(RESPONSE_TIME, 0.5, unit=u.SECONDS)  # 500 ms
        assert fast.better_than(slow)
        assert not slow.better_than(fast)

    def test_cross_property_comparison_raises(self):
        with pytest.raises(QoSModelError):
            QoSValue(RESPONSE_TIME, 1.0).better_than(QoSValue(COST, 1.0))


class TestQoSVector:
    def test_mapping_protocol(self):
        v = vec(response_time=100.0, cost=2.0)
        assert v["response_time"] == 100.0
        assert v.get("availability") is None
        assert "cost" in v
        assert len(v) == 2
        assert set(v) == {"response_time", "cost"}

    def test_rejects_undeclared_property(self):
        with pytest.raises(QoSModelError):
            QoSVector({"karma": 1.0}, PROPS)

    def test_from_values_converts_units(self):
        v = QoSVector.from_values(
            [
                QoSValue(RESPONSE_TIME, 2.0, unit=u.SECONDS),
                QoSValue(AVAILABILITY, 99.0, unit=u.PERCENT),
            ]
        )
        assert v["response_time"] == pytest.approx(2000.0)
        assert v["availability"] == pytest.approx(0.99)

    def test_from_values_rejects_duplicates(self):
        with pytest.raises(QoSModelError):
            QoSVector.from_values(
                [QoSValue(COST, 1.0), QoSValue(COST, 2.0)]
            )

    def test_equality_and_hash(self):
        a = vec(cost=1.0, availability=0.9)
        b = vec(availability=0.9, cost=1.0)
        assert a == b
        assert hash(a) == hash(b)

    def test_restrict(self):
        v = vec(response_time=10.0, cost=1.0, availability=0.9)
        r = v.restrict(["cost", "availability", "missing"])
        assert set(r) == {"cost", "availability"}

    def test_replace(self):
        v = vec(cost=1.0)
        w = v.replace("cost", 5.0)
        assert w["cost"] == 5.0
        assert v["cost"] == 1.0  # original untouched

    def test_replace_missing_raises(self):
        with pytest.raises(QoSModelError):
            vec(cost=1.0).replace("availability", 0.5)


class TestDominance:
    def test_dominates_strictly_better_everywhere(self):
        better = vec(response_time=50.0, cost=1.0, availability=0.99)
        worse = vec(response_time=100.0, cost=2.0, availability=0.90)
        assert better.dominates(worse)
        assert not worse.dominates(better)

    def test_equal_vectors_do_not_dominate(self):
        a = vec(cost=1.0, availability=0.9)
        assert not a.dominates(vec(cost=1.0, availability=0.9))

    def test_tradeoff_is_incomparable(self):
        cheap_slow = vec(response_time=500.0, cost=0.5)
        fast_dear = vec(response_time=50.0, cost=5.0)
        assert not cheap_slow.dominates(fast_dear)
        assert not fast_dear.dominates(cheap_slow)

    def test_dominance_over_shared_subset_only(self):
        a = vec(response_time=50.0, cost=1.0)
        b = vec(response_time=100.0, availability=0.9)
        # Shared subset is only response_time, where a is strictly better.
        assert a.dominates(b)

    def test_no_shared_properties_no_dominance(self):
        a = vec(cost=1.0)
        b = vec(availability=0.9)
        assert not a.dominates(b)


class TestDistance:
    def test_distance_to_self_is_zero(self):
        a = vec(response_time=100.0, cost=2.0)
        assert a.distance(a, {"response_time": 100.0, "cost": 10.0}) == 0.0

    def test_distance_is_scaled_euclidean(self):
        a = vec(response_time=0.0, cost=0.0)
        b = vec(response_time=100.0, cost=10.0)
        d = a.distance(b, {"response_time": 100.0, "cost": 10.0})
        assert d == pytest.approx(math.sqrt(2.0))

    def test_distance_symmetry(self):
        a = vec(response_time=20.0, cost=3.0)
        b = vec(response_time=70.0, cost=1.0)
        scales = {"response_time": 100.0, "cost": 10.0}
        assert a.distance(b, scales) == pytest.approx(b.distance(a, scales))

    def test_zero_scale_falls_back_to_one(self):
        a = vec(cost=1.0)
        b = vec(cost=3.0)
        assert a.distance(b, {"cost": 0.0}) == pytest.approx(2.0)


_values = st.fixed_dictionaries(
    {
        "response_time": st.floats(1, 1000, allow_nan=False),
        "cost": st.floats(0, 100, allow_nan=False),
        "availability": st.floats(0.1, 1.0, allow_nan=False),
    }
)


@settings(max_examples=60, deadline=None)
@given(_values, _values)
def test_dominance_is_antisymmetric(raw_a, raw_b):
    a, b = QoSVector(raw_a, PROPS), QoSVector(raw_b, PROPS)
    assert not (a.dominates(b) and b.dominates(a))


@settings(max_examples=60, deadline=None)
@given(_values, _values, _values)
def test_distance_triangle_inequality(raw_a, raw_b, raw_c):
    scales = {"response_time": 999.0, "cost": 100.0, "availability": 0.9}
    a, b, c = (QoSVector(r, PROPS) for r in (raw_a, raw_b, raw_c))
    assert a.distance(c, scales) <= a.distance(b, scales) + b.distance(
        c, scales
    ) + 1e-9
