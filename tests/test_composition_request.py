"""Tests for user requests: constraints, weights, satisfaction."""

from __future__ import annotations

import pytest

from repro.errors import QoSModelError
from repro.qos.properties import AVAILABILITY, COST, RESPONSE_TIME
from repro.qos.values import QoSVector
from repro.composition.request import GlobalConstraint, UserRequest
from repro.composition.task import Task, leaf, sequence

PROPS = {
    "response_time": RESPONSE_TIME,
    "cost": COST,
    "availability": AVAILABILITY,
}


@pytest.fixture
def task():
    return Task("t", sequence(leaf("A"), leaf("B")))


class TestGlobalConstraint:
    def test_at_most_at_least(self):
        assert GlobalConstraint.at_most("cost", 10.0).operator == "<="
        assert GlobalConstraint.at_least("availability", 0.9).operator == ">="

    def test_natural_direction(self):
        assert GlobalConstraint.natural(RESPONSE_TIME, 100.0).operator == "<="
        assert GlobalConstraint.natural(AVAILABILITY, 0.9).operator == ">="


class TestWeights:
    def test_negative_weight_rejected(self, task):
        with pytest.raises(QoSModelError):
            UserRequest(task, weights={"cost": -1.0})

    def test_normalised_weights_sum_to_one(self, task):
        request = UserRequest(task, weights={"cost": 2.0, "availability": 1.0})
        weights = request.normalised_weights(["cost", "availability"])
        assert sum(weights.values()) == pytest.approx(1.0)
        assert weights["cost"] == pytest.approx(2 / 3)

    def test_unweighted_property_gets_mean_declared_weight(self, task):
        request = UserRequest(task, weights={"cost": 2.0, "availability": 4.0})
        weights = request.normalised_weights(
            ["cost", "availability", "response_time"]
        )
        # response_time defaults to mean(2, 4) = 3 before normalisation.
        assert weights["response_time"] == pytest.approx(3 / 9)

    def test_no_declared_weights_gives_uniform(self, task):
        request = UserRequest(task)
        weights = request.normalised_weights(["cost", "availability"])
        assert weights == {"cost": 0.5, "availability": 0.5}

    def test_empty_property_list_raises(self, task):
        with pytest.raises(QoSModelError):
            UserRequest(task).normalised_weights([])

    def test_all_zero_weights_fall_back_to_uniform(self, task):
        request = UserRequest(task, weights={"cost": 0.0, "availability": 0.0})
        weights = request.normalised_weights(["cost", "availability"])
        assert weights == {"cost": 0.5, "availability": 0.5}


class TestRelevantProperties:
    def test_constrained_properties_in_order(self, task):
        request = UserRequest(
            task,
            constraints=(
                GlobalConstraint.at_most("cost", 1.0),
                GlobalConstraint.at_most("response_time", 2.0),
                GlobalConstraint.at_least("cost", 0.1),  # duplicate property
            ),
        )
        assert request.constrained_properties == ("cost", "response_time")

    def test_relevant_unions_weights(self, task):
        request = UserRequest(
            task,
            constraints=(GlobalConstraint.at_most("cost", 1.0),),
            weights={"availability": 1.0, "cost": 1.0},
        )
        assert set(request.relevant_properties) == {"cost", "availability"}


class TestSatisfaction:
    def test_satisfied_by(self, task):
        request = UserRequest(
            task,
            constraints=(
                GlobalConstraint.at_most("response_time", 100.0),
                GlobalConstraint.at_least("availability", 0.9),
            ),
        )
        good = QoSVector({"response_time": 80.0, "availability": 0.95}, PROPS)
        bad = QoSVector({"response_time": 120.0, "availability": 0.95}, PROPS)
        assert request.satisfied_by(good)
        assert not request.satisfied_by(bad)

    def test_missing_property_fails(self, task):
        request = UserRequest(
            task, constraints=(GlobalConstraint.at_most("cost", 1.0),)
        )
        vector = QoSVector({"response_time": 1.0}, PROPS)
        assert not request.satisfied_by(vector)

    def test_violations_report_negative_slack(self, task):
        request = UserRequest(
            task,
            constraints=(
                GlobalConstraint.at_most("response_time", 100.0),
                GlobalConstraint.at_least("availability", 0.9),
            ),
        )
        vector = QoSVector({"response_time": 150.0, "availability": 0.95}, PROPS)
        violations = request.violations(vector)
        assert list(violations) == ["response_time <= 100"]
        assert violations["response_time <= 100"] == pytest.approx(-50.0)

    def test_no_constraints_always_satisfied(self, task):
        request = UserRequest(task)
        assert request.satisfied_by(QoSVector({}, PROPS))
