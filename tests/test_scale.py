"""Scale tests: the middleware stays responsive on large environments.

Not micro-benchmarks (those live under ``benchmarks/``) — these are
correctness-at-scale guards with generous wall-clock ceilings, so a
complexity regression (accidental O(n²) in discovery, unbounded lattice
exploration) fails the ordinary test run.
"""

from __future__ import annotations

import time

import pytest

from repro.qos.properties import STANDARD_PROPERTIES
from repro.semantics.ontology import Ontology
from repro.services.discovery import DiscoveryQuery, QoSAwareDiscovery
from repro.services.generator import ServiceGenerator
from repro.services.registry import ServiceRegistry
from repro.composition.qassa import QASSA
from repro.composition.request import UserRequest
from repro.composition.selection import CandidateSets
from repro.composition.task import Task, leaf, sequence

PROPS = {
    name: STANDARD_PROPERTIES[name]
    for name in ("response_time", "cost", "availability", "reliability")
}


class TestLargeRegistry:
    def test_thousand_service_discovery(self):
        registry = ServiceRegistry()
        ontology = Ontology("scale")
        root = ontology.declare_class("task:Activity")
        for i in range(20):
            ontology.declare_class(f"task:Cap{i}", [root])
        generator = ServiceGenerator(PROPS, seed=51)
        for i in range(20):
            registry.publish_all(generator.candidates(f"task:Cap{i}", 50))
        assert len(registry) == 1000

        discovery = QoSAwareDiscovery(registry, ontology)
        started = time.perf_counter()
        for i in range(20):
            candidates = discovery.candidates(DiscoveryQuery(f"task:Cap{i}"))
            assert len(candidates) == 50
        elapsed = time.perf_counter() - started
        assert elapsed < 10.0, f"20 discoveries over 1000 services: {elapsed:.1f}s"

    def test_ten_activity_hundred_candidate_selection(self):
        task = Task(
            "big",
            sequence(*[leaf(f"A{i}", f"task:C{i}") for i in range(10)]),
        )
        generator = ServiceGenerator(PROPS, seed=52)
        candidates = CandidateSets(
            task,
            {a.name: generator.candidates(a.capability, 100)
             for a in task.activities},
        )
        request = UserRequest(task, weights={n: 1.0 for n in PROPS})
        assert candidates.search_space() == 100 ** 10

        started = time.perf_counter()
        plan = QASSA(PROPS).select(request, candidates)
        elapsed = time.perf_counter() - started
        assert plan.feasible
        assert elapsed < 10.0, f"10x100 selection took {elapsed:.1f}s"

    def test_churn_on_large_registry_stays_consistent(self):
        registry = ServiceRegistry()
        generator = ServiceGenerator(PROPS, seed=53)
        services = generator.candidates("task:X", 500)
        registry.publish_all(services)
        # Withdraw every other service, republish a quarter.
        for service in services[::2]:
            registry.withdraw(service.service_id)
        for service in services[::4]:
            registry.publish(service)
        expected = {s.service_id for s in services[1::2]} | {
            s.service_id for s in services[::4]
        }
        assert {s.service_id for s in registry} == expected
        assert len(registry.by_capability("task:X")) == len(expected)
