"""Smoke tests for every figure/table entry point (tiny parameters).

Full-size runs live in ``benchmarks/``; here we assert each experiment runs
and produces the series shape the paper plots.
"""

from __future__ import annotations

import pytest

from repro.experiments import figures


class TestTableIV1:
    def test_rows_cover_all_kinds(self):
        rows = figures.table_iv1()
        kinds = [row[0] for row in rows]
        assert "multiplicative" in kinds
        assert len(rows) == 6
        assert all(len(row) == 5 for row in rows)


class TestTimeFigures:
    def test_fig_vi5a(self):
        sweep = figures.fig_vi5a(service_counts=(5, 10), activities=3,
                                 repetitions=1)
        assert len(sweep.points) == 2
        assert all("qassa_ms" in p.values for p in sweep.points)
        assert all(p.values["qassa_ms"] > 0 for p in sweep.points)

    def test_fig_vi5b(self):
        sweep = figures.fig_vi5b(constraint_counts=(1, 3), activities=3,
                                 services=10, repetitions=1)
        assert [p.x for p in sweep.points] == [1, 3]

    def test_fig_vi7_all_approaches(self):
        sweeps = figures.fig_vi7(service_counts=(5,), activities=5,
                                 repetitions=1)
        assert set(sweeps) == {"pessimistic", "optimistic", "mean"}

    def test_fig_vi10_both_offsets(self):
        sweeps = figures.fig_vi10(service_counts=(5,), activities=3,
                                  repetitions=1)
        assert set(sweeps) == {"m", "m+sigma"}


class TestOptimalityFigures:
    def test_fig_vi6a_optimality_bounded(self):
        sweep = figures.fig_vi6a(service_counts=(5, 8), activities=2)
        for point in sweep.points:
            if "qassa" in point.values:
                assert 0.0 <= point.values["qassa"] <= 1.0

    def test_fig_vi6b(self):
        sweep = figures.fig_vi6b(constraint_counts=(1, 2), activities=2,
                                 services=6)
        assert sweep.points

    def test_fig_vi8(self):
        sweeps = figures.fig_vi8(service_counts=(5,), activities=2,
                                 constraints=2)
        assert len(sweeps) == 3

    def test_fig_vi11(self):
        sweeps = figures.fig_vi11(service_counts=(6,), activities=2,
                                  constraints=2)
        assert set(sweeps) == {"m", "m+sigma"}


class TestDistributionFigure:
    def test_fig_vi9_histogram(self):
        sweep = figures.fig_vi9(samples=500, bins=10)
        counts = [p.values["count"] for p in sweep.points]
        assert sum(counts) == 500
        assert len(counts) == 10
        # Normal law: the middle bins dominate the extremes.
        middle = max(counts[3:7])
        assert middle >= max(counts[0], counts[-1])


class TestStructuralFigures:
    def test_fig_vi12_phases(self):
        sweep = figures.fig_vi12(node_counts=(2, 3), activities=4, services=8)
        for point in sweep.points:
            assert point.values["total_ms"] >= point.values["global_ms"]

    def test_fig_vi13_linear_growth(self):
        sweep = figures.fig_vi13(activity_counts=(10, 40), repetitions=1)
        assert sweep.points[0].values["vertices"] == 10
        assert sweep.points[1].values["vertices"] == 40

    def test_exp_ch5_homeomorphism(self):
        sweep = figures.exp_ch5_homeomorphism(sizes=(3, 5), repetitions=1)
        assert all(p.values["found"] == 1.0 for p in sweep.points)

    def test_exp_ch4_summary(self):
        rows = figures.exp_ch4_summary(activities=3, services=6)
        names = [row[0] for row in rows]
        assert names == ["exhaustive", "qassa", "greedy", "genetic"]
        exhaustive = rows[0]
        assert exhaustive[2] == 1.0
