"""Tests for the task/pattern-tree composition model."""

from __future__ import annotations

import pytest

from repro.errors import InvalidTaskError
from repro.composition.task import (
    Activity,
    Conditional,
    Leaf,
    Loop,
    Parallel,
    Sequence,
    Task,
    conditional,
    leaf,
    loop,
    parallel,
    sequence,
)


class TestActivity:
    def test_requires_name_and_capability(self):
        with pytest.raises(InvalidTaskError):
            Activity("", "task:X")
        with pytest.raises(InvalidTaskError):
            Activity("A", "")

    def test_leaf_helper_derives_capability(self):
        node = leaf("Browse")
        assert node.activity.capability == "task:Browse"

    def test_leaf_helper_explicit_capability(self):
        node = leaf("Pay", "task:CardPayment")
        assert node.activity.capability == "task:CardPayment"


class TestPatternValidation:
    def test_empty_sequence_rejected(self):
        with pytest.raises(InvalidTaskError):
            Sequence(())

    def test_parallel_needs_two_branches(self):
        with pytest.raises(InvalidTaskError):
            Parallel((leaf("A"),))

    def test_conditional_needs_two_branches(self):
        with pytest.raises(InvalidTaskError):
            Conditional((leaf("A"),))

    def test_conditional_probabilities_must_align(self):
        with pytest.raises(InvalidTaskError):
            conditional(leaf("A"), leaf("B"), probabilities=[1.0])

    def test_conditional_probabilities_must_sum_to_one(self):
        with pytest.raises(InvalidTaskError):
            conditional(leaf("A"), leaf("B"), probabilities=[0.5, 0.6])

    def test_conditional_negative_probability_rejected(self):
        with pytest.raises(InvalidTaskError):
            conditional(leaf("A"), leaf("B"), probabilities=[-0.2, 1.2])

    def test_conditional_default_uniform_probabilities(self):
        node = conditional(leaf("A"), leaf("B"), leaf("C"))
        assert node.branch_probabilities() == pytest.approx((1/3, 1/3, 1/3))

    def test_loop_min_iterations(self):
        with pytest.raises(InvalidTaskError):
            loop(leaf("A"), max_iterations=0)

    def test_loop_expected_must_be_in_range(self):
        with pytest.raises(InvalidTaskError):
            loop(leaf("A"), max_iterations=3, expected_iterations=5.0)
        with pytest.raises(InvalidTaskError):
            loop(leaf("A"), max_iterations=3, expected_iterations=0.5)

    def test_loop_mean_iterations_default_midpoint(self):
        assert loop(leaf("A"), 5).mean_iterations() == pytest.approx(3.0)
        assert loop(leaf("A"), 5, 4.0).mean_iterations() == 4.0


class TestTask:
    def test_duplicate_activity_names_rejected(self):
        with pytest.raises(InvalidTaskError):
            Task("t", sequence(leaf("A"), leaf("A")))

    def test_activities_in_document_order(self):
        task = Task(
            "t",
            sequence(leaf("A"), parallel(leaf("B"), leaf("C")), leaf("D")),
        )
        assert task.activity_names == ["A", "B", "C", "D"]
        assert task.size() == 4

    def test_activity_lookup(self):
        task = Task("t", sequence(leaf("A"), leaf("B")))
        assert task.activity("B").capability == "task:B"
        with pytest.raises(InvalidTaskError):
            task.activity("Z")

    def test_pattern_census(self):
        task = Task(
            "t",
            sequence(
                leaf("A"),
                parallel(leaf("B"), leaf("C")),
                loop(leaf("D"), 2),
                conditional(leaf("E"), leaf("F")),
            ),
        )
        census = task.pattern_census()
        assert census["Sequence"] == 1
        assert census["Parallel"] == 1
        assert census["Loop"] == 1
        assert census["Conditional"] == 1
        assert census["Leaf"] == 6

    def test_has_pattern(self):
        task = Task("t", sequence(leaf("A"), loop(leaf("B"), 2)))
        assert task.has_pattern(Loop)
        assert not task.has_pattern(Parallel)

    def test_walk_is_preorder(self):
        inner = parallel(leaf("B"), leaf("C"))
        root = sequence(leaf("A"), inner)
        kinds = [type(n).__name__ for n in root.walk()]
        assert kinds == ["Sequence", "Leaf", "Parallel", "Leaf", "Leaf"]

    def test_loop_activities_counted_once(self):
        task = Task("t", loop(sequence(leaf("A"), leaf("B")), 5))
        assert task.size() == 2
