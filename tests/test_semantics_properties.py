"""Property-based tests of the ontology reasoner over random ontologies.

The reasoner underpins discovery, QoS-term mapping and behavioural
adaptation; these hypothesis tests pin its algebraic laws on randomly
generated class forests with random equivalences.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.semantics.matching import MatchDegree, match_concepts
from repro.semantics.ontology import Ontology


@st.composite
def _ontologies(draw):
    """A random DAG ontology: each class attaches to earlier classes, plus
    a few random equivalences."""
    rng = random.Random(draw(st.integers(0, 10_000)))
    n = draw(st.integers(2, 14))
    onto = Ontology("random")
    names = [f"C{i}" for i in range(n)]
    onto.declare_class(names[0])
    for i in range(1, n):
        parent_count = rng.randint(0, min(2, i))
        parents = rng.sample(names[:i], parent_count)
        onto.declare_class(names[i], parents)
    for _ in range(draw(st.integers(0, 3))):
        a, b = rng.sample(names, 2)
        onto.declare_equivalence(a, b)
    return onto, names, rng


@settings(max_examples=60, deadline=None)
@given(_ontologies())
def test_subsumption_is_reflexive(data):
    onto, names, _ = data
    for name in names:
        assert onto.subsumes(name, name)


@settings(max_examples=60, deadline=None)
@given(_ontologies())
def test_subsumption_is_transitive(data):
    onto, names, rng = data
    for _ in range(10):
        a, b, c = (rng.choice(names) for _ in range(3))
        if onto.subsumes(a, b) and onto.subsumes(b, c):
            assert onto.subsumes(a, c)


@settings(max_examples=60, deadline=None)
@given(_ontologies())
def test_ancestors_descendants_are_dual(data):
    onto, names, rng = data
    for _ in range(10):
        a, b = rng.choice(names), rng.choice(names)
        assert (a in onto.ancestors(b)) == (b in onto.descendants(a))


@settings(max_examples=60, deadline=None)
@given(_ontologies())
def test_equivalents_form_equivalence_classes(data):
    onto, names, rng = data
    for name in names:
        group = onto.equivalents(name)
        assert name in group                       # reflexive
        for other in group:
            assert onto.equivalents(other) == group  # well-defined classes


@settings(max_examples=60, deadline=None)
@given(_ontologies())
def test_match_degree_duality(data):
    """EXACT is symmetric; PLUGIN in one direction is SUBSUME in the other."""
    onto, names, rng = data
    for _ in range(10):
        a, b = rng.choice(names), rng.choice(names)
        forward = match_concepts(onto, a, b)
        backward = match_concepts(onto, b, a)
        if forward is MatchDegree.EXACT:
            assert backward is MatchDegree.EXACT
        if forward is MatchDegree.PLUGIN:
            assert backward is MatchDegree.SUBSUME
        if forward is MatchDegree.SIBLING:
            assert backward is MatchDegree.SIBLING
        if forward is MatchDegree.FAIL:
            assert backward is MatchDegree.FAIL


@settings(max_examples=60, deadline=None)
@given(_ontologies())
def test_serialization_preserves_reasoning(data):
    from repro.semantics.serialization import dump_ontology, load_ontology

    onto, names, rng = data
    recovered = load_ontology(dump_ontology(onto))
    for _ in range(10):
        a, b = rng.choice(names), rng.choice(names)
        assert onto.subsumes(a, b) == recovered.subsumes(a, b)
