"""Tests for deterministic runtime chaos injection (ChaosPolicy + invariants)."""

from __future__ import annotations

import pytest

from repro.errors import (
    MiddlewareRuntimeError,
    RuntimeInvariantError,
    WorkerCrashError,
)
from repro.execution.clock import SimulatedClock
from repro.middleware.qasom import QASOM
from repro.observability import Observability
from repro.qos.properties import STANDARD_PROPERTIES
from repro.resilience import FaultEvent, FaultKind, FaultSchedule
from repro.runtime import (
    ChaosPolicy,
    InjectedSnapshotFailure,
    InjectedWorkerCrash,
    MiddlewareRuntime,
    RequestStatus,
    RuntimeConfig,
    assert_runtime_invariants,
    verify_runtime_invariants,
)
from repro.semantics.ontology import Ontology
from repro.services.generator import ServiceGenerator
from repro.composition.request import UserRequest
from repro.composition.task import Task, leaf, sequence
from repro.env.environment import PervasiveEnvironment

PROPS = {
    name: STANDARD_PROPERTIES[name]
    for name in ("response_time", "cost", "availability")
}
CAPS = ("task:One", "task:Two")


def build_world(seed=3, services=6):
    ontology = Ontology("runtime-chaos-tests")
    root = ontology.declare_class("task:Root")
    for capability in CAPS:
        ontology.declare_class(capability, [root])
    environment = PervasiveEnvironment(seed=seed)
    generator = ServiceGenerator(PROPS, seed=seed)
    for capability in CAPS:
        for service in generator.candidates(capability, services):
            environment.host_on_new_device(service)
    middleware = QASOM.for_environment(environment, PROPS,
                                       ontology=ontology)
    task = Task("chaos", sequence(leaf("A", CAPS[0]), leaf("B", CAPS[1])))
    request = UserRequest(task=task, constraints=(),
                          weights={name: 1.0 for name in PROPS})
    return middleware, request


def policy(events, clock=None, **kwargs):
    return ChaosPolicy(FaultSchedule(events), clock or SimulatedClock(),
                       **kwargs)


class TestChaosPolicyUnits:
    def test_event_not_due_does_not_fire(self):
        clock = SimulatedClock()
        chaos = policy(
            [FaultEvent(5.0, FaultKind.WORKER_CRASH, "any")], clock
        )
        chaos.on_worker_pickup(0)  # t=0 < 5: no crash
        assert chaos.fired == ()
        assert len(chaos.pending) == 1

    def test_due_crash_fires_once_then_never_again(self):
        clock = SimulatedClock()
        clock.advance(5.0)
        chaos = policy(
            [FaultEvent(5.0, FaultKind.WORKER_CRASH, "any")], clock
        )
        with pytest.raises(InjectedWorkerCrash):
            chaos.on_worker_pickup(0)
        chaos.on_worker_pickup(0)  # consumed: at-most-once
        assert len(chaos.fired) == 1
        assert chaos.pending == ()

    def test_worker_targeting(self):
        clock = SimulatedClock()
        clock.advance(1.0)
        chaos = policy(
            [FaultEvent(0.0, FaultKind.WORKER_CRASH, "worker-2")], clock
        )
        chaos.on_worker_pickup(0)  # wrong worker: not consumed
        assert len(chaos.pending) == 1
        with pytest.raises(InjectedWorkerCrash):
            chaos.on_worker_pickup(2)

    def test_snapshot_failure_raises_transient_middleware_error(self):
        clock = SimulatedClock()
        clock.advance(1.0)
        chaos = policy(
            [FaultEvent(0.0, FaultKind.SNAPSHOT_FAILURE, "runtime")], clock
        )
        with pytest.raises(InjectedSnapshotFailure) as excinfo:
            chaos.on_snapshot_acquire()
        assert isinstance(excinfo.value, MiddlewareRuntimeError)
        assert not isinstance(InjectedWorkerCrash("x"), Exception)

    def test_events_fire_in_schedule_order_per_kind(self):
        clock = SimulatedClock()
        clock.advance(10.0)
        chaos = policy([
            FaultEvent(2.0, FaultKind.WORKER_CRASH, "any"),
            FaultEvent(1.0, FaultKind.WORKER_CRASH, "any"),
        ], clock)
        with pytest.raises(InjectedWorkerCrash):
            chaos.on_worker_pickup(0)
        assert chaos.fired[0].event.at == 1.0

    def test_stall_and_commit_delay_sleep_are_capped(self):
        clock = SimulatedClock()
        clock.advance(1.0)
        chaos = policy([
            FaultEvent(0.0, FaultKind.WORKER_STALL, "any", duration=100.0),
            FaultEvent(0.0, FaultKind.COMMIT_DELAY, "runtime",
                       duration=100.0),
        ], clock, max_sleep_seconds=0.001)
        chaos.on_worker_pickup(0)   # returns promptly despite duration=100
        chaos.on_commit(0)
        assert [f.event.kind for f in chaos.fired] == [
            FaultKind.WORKER_STALL, FaultKind.COMMIT_DELAY
        ]

    def test_max_sleep_must_be_positive(self):
        with pytest.raises(MiddlewareRuntimeError):
            policy([], max_sleep_seconds=0.0)

    def test_from_schedule_none_without_runtime_events(self):
        schedule = FaultSchedule(
            [FaultEvent(1.0, FaultKind.KILL_SERVICE, "svc-1")]
        )
        assert ChaosPolicy.from_schedule(schedule, SimulatedClock()) is None

    def test_report_is_replay_stable(self):
        events = [
            FaultEvent(1.0, FaultKind.WORKER_CRASH, "any"),
            FaultEvent(2.0, FaultKind.SNAPSHOT_FAILURE, "runtime"),
        ]
        reports = []
        for _ in range(2):
            clock = SimulatedClock()
            clock.advance(5.0)
            chaos = policy(list(events), clock)
            with pytest.raises(InjectedWorkerCrash):
                chaos.on_worker_pickup(3)
            with pytest.raises(InjectedSnapshotFailure):
                chaos.on_snapshot_acquire()
            reports.append(chaos.report())
        assert reports[0] == reports[1]
        assert reports[0]["pending"] == 0

    def test_injection_counter(self):
        obs = Observability()
        clock = SimulatedClock()
        clock.advance(1.0)
        chaos = policy(
            [FaultEvent(0.0, FaultKind.WORKER_CRASH, "any")], clock,
            observability=obs,
        )
        with pytest.raises(InjectedWorkerCrash):
            chaos.on_worker_pickup(0)
        assert obs.metrics.value(
            "runtime_chaos_injected_total", kind="worker_crash"
        ) == 1.0


class TestChaosUnderLoad:
    def run_chaotic(self, *, workers=2, requests=8, crashes=2, stalls=1,
                    snapshot_failures=1, max_requeues=4):
        middleware, request = build_world()
        schedule = FaultSchedule.runtime_chaos(
            (0.0, 0.2), crashes=crashes, stalls=stalls,
            snapshot_failures=snapshot_failures, stall_seconds=0.005,
            seed=11,
        )
        chaos = ChaosPolicy.from_schedule(
            schedule, middleware.environment.clock
        )
        config = RuntimeConfig(workers=workers, queue_depth=requests,
                               max_requeues=max_requeues)
        with MiddlewareRuntime(middleware, config, chaos=chaos) as runtime:
            handles = [runtime.submit(request) for _ in range(requests)]
            runtime.drain()
            report = assert_runtime_invariants(runtime, handles)
        return runtime, handles, chaos, report

    def test_no_request_lost_and_pool_restored(self):
        runtime, handles, chaos, report = self.run_chaotic()
        assert all(h.done() for h in handles)
        assert report.ok
        assert report.restarts >= 2
        assert report.alive_workers == report.expected_workers == 2
        assert len(chaos.pending) == 0

    def test_commits_unique_and_ticket_ordered(self):
        runtime, handles, chaos, report = self.run_chaotic()
        tickets = [ticket for ticket, _ in runtime.commit_log]
        assert tickets == sorted(tickets)
        assert len(set(tickets)) == len(tickets)
        # every successfully completed handle committed exactly once
        done = [h for h in handles if h.status is RequestStatus.DONE]
        committed_seqs = {seq for _, seq in runtime.commit_log}
        assert {h.seq for h in done} <= committed_seqs

    def test_crashed_requests_complete_with_results(self):
        runtime, handles, chaos, report = self.run_chaotic()
        requeued = [h for h in handles if h.requeues]
        assert requeued, "chaos schedule produced no requeues"
        for handle in requeued:
            assert handle.status is RequestStatus.DONE
            assert handle.result().plan is not None

    def test_budget_exhaustion_fails_fast_with_worker_crash_error(self):
        middleware, request = build_world()
        clock = middleware.environment.clock
        chaos = ChaosPolicy(FaultSchedule([
            FaultEvent(0.0, FaultKind.WORKER_CRASH, "any"),
            FaultEvent(0.0, FaultKind.WORKER_CRASH, "any"),
        ]), clock)
        config = RuntimeConfig(
            workers=1, queue_depth=4, max_requeues=5,
            retry_budget_initial=1.0, retry_budget_ratio=0.0,
            retry_budget_cap=1.0,
        )
        with MiddlewareRuntime(middleware, config, chaos=chaos) as runtime:
            handles = [runtime.submit(request) for _ in range(4)]
            runtime.drain()
            # First crash is paid for by the single token; the second
            # finds the bucket empty and the request fails fast.
            failed = [h for h in handles
                      if h.status is RequestStatus.FAILED]
            assert len(failed) == 1
            with pytest.raises(WorkerCrashError):
                failed[0].result()
            assert runtime.retry_budget.denied == 1
            assert runtime.retry_budget.granted == 1
            # a failed request is not "lost": invariants still hold
            assert verify_runtime_invariants(runtime, handles).ok

    def test_max_requeues_bounds_retries(self):
        runtime, handles, chaos, report = self.run_chaotic(max_requeues=0)
        # with no requeues allowed every fault-hit request fails fast
        failed = [h for h in handles if h.status is RequestStatus.FAILED]
        assert failed
        assert all(h.requeues == 0 for h in handles)
        assert report.ok

    def test_replay_is_deterministic_single_worker(self):
        outcomes = []
        for _ in range(2):
            runtime, handles, chaos, report = self.run_chaotic(workers=1)
            outcomes.append((
                tuple(h.status.value for h in handles),
                tuple(h.requeues for h in handles),
                tuple(sorted(f.signature() for f in chaos.fired)),
                report.restarts,
            ))
        assert outcomes[0] == outcomes[1]


class TestInvariantChecker:
    def test_assert_raises_on_violation(self):
        middleware, request = build_world()
        runtime = MiddlewareRuntime(
            middleware, RuntimeConfig(workers=1, queue_depth=2),
            autostart=False,
        )
        handle = runtime.submit(request)  # queued, never processed
        with pytest.raises(RuntimeInvariantError, match="lost"):
            assert_runtime_invariants(runtime, [handle])
        runtime.close(drain=False)

    def test_clean_run_passes(self):
        middleware, request = build_world()
        with MiddlewareRuntime(
            middleware, RuntimeConfig(workers=2, queue_depth=4)
        ) as runtime:
            handles = [runtime.submit(request) for _ in range(4)]
            runtime.drain()
            report = assert_runtime_invariants(runtime, handles)
        assert report.ok
        assert report.committed == 4
        assert report.restarts == 0
