"""Tests for admission-control policies (repro.runtime.admission)."""

from __future__ import annotations

import pytest

from repro.errors import MiddlewareRuntimeError
from repro.middleware.qasom import QASOM
from repro.observability import Observability
from repro.qos.properties import STANDARD_PROPERTIES
from repro.runtime import (
    AdaptiveAdmissionController,
    MiddlewareRuntime,
    RequestStatus,
    RuntimeConfig,
    StaticAdmissionController,
    build_admission_controller,
)
from repro.semantics.ontology import Ontology
from repro.services.generator import ServiceGenerator
from repro.composition.request import UserRequest
from repro.composition.task import Task, leaf, sequence
from repro.env.environment import PervasiveEnvironment

PROPS = {
    name: STANDARD_PROPERTIES[name]
    for name in ("response_time", "cost", "availability")
}


def build_world(seed=3, services=6):
    ontology = Ontology("admission-tests")
    root = ontology.declare_class("task:Root")
    ontology.declare_class("task:One", [root])
    environment = PervasiveEnvironment(seed=seed)
    generator = ServiceGenerator(PROPS, seed=seed)
    for service in generator.candidates("task:One", services):
        environment.host_on_new_device(service)
    middleware = QASOM.for_environment(environment, PROPS, ontology=ontology)
    task = Task("admission", sequence(leaf("A", "task:One")))
    request = UserRequest(task=task, constraints=(),
                          weights={name: 1.0 for name in PROPS})
    return middleware, request


class TestStaticController:
    def test_admits_strictly_below_depth(self):
        controller = StaticAdmissionController(3)
        assert controller.admit(0) and controller.admit(2)
        assert not controller.admit(3)
        assert controller.effective_depth() == 3

    def test_ignores_load_signals(self):
        controller = StaticAdmissionController(3)
        controller.on_arrival(0.0)
        controller.on_complete(100.0, 1.0)
        assert controller.effective_depth() == 3


class TestAdaptiveController:
    def _controller(self, **overrides):
        options = dict(
            target_delay_seconds=1.0, window_seconds=10.0, min_depth=1,
        )
        options.update(overrides)
        return AdaptiveAdmissionController(16, **options)

    def test_behaves_statically_until_service_samples_exist(self):
        controller = self._controller()
        for t in range(5):
            controller.on_arrival(float(t))
        assert controller.effective_depth() == 16
        assert controller.admit(15) and not controller.admit(16)

    def test_depth_follows_littles_law(self):
        controller = self._controller()
        # Measured service time 0.5 s, target wait 1 s -> depth ceil(2)=2.
        controller.on_complete(0.5, 1.0)
        assert controller.effective_depth() == 2
        assert controller.admit(1) and not controller.admit(2)

    def test_depth_is_floored_and_capped(self):
        controller = self._controller(min_depth=2)
        controller.on_complete(100.0, 1.0)  # pathologically slow
        assert controller.effective_depth() == 2
        controller.on_complete(0.0001, 2.0)  # mean still ~50 s
        assert controller.effective_depth() == 2

    def test_samples_age_out_of_the_window(self):
        controller = self._controller(window_seconds=5.0)
        controller.on_complete(2.0, 1.0)
        assert controller.effective_depth() == 1
        # 10 sim-seconds later the slow sample left the window; with no
        # evidence the controller relaxes back to the static bound.
        controller.on_arrival(11.0)
        assert controller.effective_depth() == 16

    def test_rates_and_decision_count(self):
        controller = self._controller(window_seconds=10.0)
        for t in range(10):
            controller.on_arrival(float(t))
        assert controller.arrival_rate() == pytest.approx(1.0)
        controller.on_complete(0.25, 9.0)
        assert controller.service_seconds() == pytest.approx(0.25)
        assert controller.decisions == 1  # 16 -> 4

    def test_emits_gauges_and_decision_span(self):
        observability = Observability()
        controller = AdaptiveAdmissionController(
            16, target_delay_seconds=1.0, window_seconds=10.0,
            observability=observability,
        )
        controller.on_arrival(0.0)
        controller.on_complete(0.5, 0.5)
        metrics = observability.metrics
        assert metrics.value("runtime_admission_effective_depth") == 2
        assert metrics.value("runtime_admission_arrival_rate") > 0
        assert metrics.value("runtime_admission_service_seconds") == 0.5
        decision_spans = [
            s for s in observability.tracer.all_spans()
            if s.name == "runtime.admission"
        ]
        assert len(decision_spans) == 1
        assert decision_spans[0].attributes["effective_depth"] == 2
        assert decision_spans[0].attributes["previous_depth"] == 16

    def test_identical_timelines_make_identical_decisions(self):
        events = [("a", 0.0), ("c", 0.4, 0.5), ("a", 0.6), ("c", 0.1, 1.0),
                  ("a", 1.2), ("c", 0.9, 2.5), ("a", 7.0)]

        def replay():
            controller = self._controller(window_seconds=5.0)
            depths = []
            for event in events:
                if event[0] == "a":
                    controller.on_arrival(event[1])
                else:
                    controller.on_complete(event[1], event[2])
                depths.append(controller.effective_depth())
            return depths

        assert replay() == replay()

    def test_validation(self):
        with pytest.raises(ValueError):
            self._controller(target_delay_seconds=0.0)
        with pytest.raises(ValueError):
            self._controller(window_seconds=-1.0)
        with pytest.raises(ValueError):
            self._controller(min_depth=0)
        with pytest.raises(ValueError):
            self._controller(min_depth=17)


class TestConfigWiring:
    def test_static_is_the_default_policy(self):
        controller = build_admission_controller(RuntimeConfig(queue_depth=8))
        assert isinstance(controller, StaticAdmissionController)
        assert not controller.adaptive

    def test_adaptive_policy_reads_its_knobs(self):
        config = RuntimeConfig(
            queue_depth=8, admission="adaptive",
            admission_target_delay_ms=500.0, admission_window_seconds=2.0,
            admission_min_depth=3,
        )
        controller = build_admission_controller(config)
        assert isinstance(controller, AdaptiveAdmissionController)
        assert controller.adaptive
        assert controller.target_delay_seconds == pytest.approx(0.5)
        assert controller.window_seconds == 2.0
        assert controller.min_depth == 3

    def test_config_validates_admission_fields(self):
        with pytest.raises(MiddlewareRuntimeError):
            RuntimeConfig(admission="psychic")
        with pytest.raises(MiddlewareRuntimeError):
            RuntimeConfig(admission_target_delay_ms=0.0)
        with pytest.raises(MiddlewareRuntimeError):
            RuntimeConfig(admission_window_seconds=0.0)
        with pytest.raises(MiddlewareRuntimeError):
            RuntimeConfig(queue_depth=4, admission_min_depth=5)


class TestRuntimeIntegration:
    def test_adaptive_runtime_tightens_admission_under_slow_service(self):
        middleware, request = build_world()
        config = RuntimeConfig(
            workers=1, queue_depth=32, admission="adaptive",
            admission_target_delay_ms=1.0, admission_window_seconds=60.0,
        )
        runtime = MiddlewareRuntime(middleware, config, autostart=False)
        # Warm the controller: one completed request whose simulated
        # execution dwarfs the 1 ms target delay tightens the bound to 1.
        runtime.start()
        first = runtime.submit(request)
        assert first.result() is not None
        runtime.drain()
        assert runtime.admission.effective_depth() == 1
        runtime.close()

    def test_handles_carry_simulated_latency_stamps(self):
        middleware, request = build_world()
        runtime = MiddlewareRuntime(
            middleware, RuntimeConfig(workers=1, queue_depth=4)
        )
        handle = runtime.submit(request)
        result = handle.result()
        runtime.close()
        assert result is not None
        assert handle.submitted_sim is not None
        assert handle.finished_sim is not None
        assert handle.sim_seconds is not None and handle.sim_seconds > 0

    def test_rejected_handles_have_zero_sim_latency(self):
        middleware, request = build_world()
        runtime = MiddlewareRuntime(
            middleware,
            RuntimeConfig(workers=1, queue_depth=1),
            autostart=False,
        )
        runtime.submit(request)
        rejected = runtime.submit(request)
        assert rejected.status is RequestStatus.REJECTED
        assert rejected.sim_seconds == 0.0
        runtime.close(drain=False)

    def test_inline_submit_stamps_sim_latency(self):
        middleware, request = build_world()
        handle = middleware.submit(request)
        assert handle.sim_seconds is not None and handle.sim_seconds > 0
        plan_only = middleware.submit(request, execute=False)
        # Composition takes no simulated time.
        assert plan_only.sim_seconds == 0.0
