"""Tests for task classes and the repository."""

from __future__ import annotations

import pytest

from repro.errors import BehaviouralAdaptationError
from repro.adaptation.task_class import Behaviour, TaskClass, TaskClassRepository
from repro.composition.task import Task, leaf, sequence
from repro.semantics.ontology import Ontology


@pytest.fixture
def ontology():
    onto = Ontology("tasks")
    onto.declare_class("task:Activity")
    for name in ("A", "B", "C", "Extra"):
        onto.declare_class(f"task:{name}", ["task:Activity"])
    return onto


def seq_task(name, *specs):
    return Task(name, sequence(*[leaf(n, c) for n, c in specs]))


@pytest.fixture
def primary():
    return seq_task("primary", ("A", "task:A"), ("B", "task:B"), ("C", "task:C"))


@pytest.fixture
def alternative():
    return seq_task(
        "alternative",
        ("A2", "task:A"), ("B2", "task:B"), ("X", "task:Extra"), ("C2", "task:C"),
    )


class TestTaskClass:
    def test_add_task_wraps_into_behaviour(self, primary):
        task_class = TaskClass("tc")
        behaviour = task_class.add(primary)
        assert isinstance(behaviour, Behaviour)
        assert behaviour.graph.vertex_count() == 3
        assert len(task_class) == 1

    def test_duplicate_behaviour_name_rejected(self, primary):
        task_class = TaskClass("tc")
        task_class.add(primary)
        with pytest.raises(BehaviouralAdaptationError):
            task_class.add(primary)

    def test_lookup_and_alternatives(self, primary, alternative):
        task_class = TaskClass("tc")
        task_class.add(primary)
        task_class.add(alternative)
        assert task_class.behaviour("primary").task is primary
        others = task_class.alternatives_to("primary")
        assert [b.name for b in others] == ["alternative"]

    def test_unknown_behaviour_raises(self):
        with pytest.raises(BehaviouralAdaptationError):
            TaskClass("tc").behaviour("ghost")

    def test_verify_equivalence(self, ontology, primary, alternative):
        task_class = TaskClass("tc")
        task_class.add(primary)
        task_class.add(alternative)
        results = task_class.verify_equivalence(ontology)
        # primary embeds into alternative (extra activity interleaved)...
        assert results[("primary", "alternative")] is True
        # ...but not the reverse (alternative has a label primary lacks).
        assert results[("alternative", "primary")] is False


class TestRepository:
    def test_add_and_require(self, primary):
        repo = TaskClassRepository()
        task_class = repo.new_class("shopping", "buy things")
        task_class.add(primary)
        assert repo.require("shopping") is task_class
        assert repo.get("ghost") is None
        assert len(repo) == 1

    def test_duplicate_class_rejected(self):
        repo = TaskClassRepository()
        repo.new_class("tc")
        with pytest.raises(BehaviouralAdaptationError):
            repo.new_class("tc")

    def test_require_unknown_raises(self):
        with pytest.raises(BehaviouralAdaptationError):
            TaskClassRepository().require("ghost")

    def test_classes_for_finds_embedding(self, ontology, primary, alternative):
        repo = TaskClassRepository(ontology)
        task_class = repo.new_class("tc")
        task_class.add(alternative)
        hits = repo.classes_for(primary)
        assert len(hits) == 1
        found_class, behaviour, outcome = hits[0]
        assert found_class.name == "tc"
        assert behaviour.name == "alternative"
        assert outcome.found

    def test_classes_for_no_match(self, ontology, primary):
        repo = TaskClassRepository(ontology)
        unrelated = seq_task("other", ("X", "task:Extra"))
        repo.new_class("tc").add(unrelated)
        assert repo.classes_for(primary) == []
