"""Tests for the wireless network model."""

from __future__ import annotations

import random

import pytest

from repro.errors import EnvironmentError_
from repro.env.network import FluctuationProcess, WirelessLink, WirelessNetwork


class TestFluctuationProcess:
    def test_starts_at_nominal(self):
        process = FluctuationProcess(nominal=10.0, minimum=0.0, maximum=20.0)
        assert process.value == 10.0

    def test_nominal_outside_bounds_rejected(self):
        with pytest.raises(EnvironmentError_):
            FluctuationProcess(nominal=30.0, minimum=0.0, maximum=20.0)

    def test_values_stay_bounded(self):
        process = FluctuationProcess(
            nominal=10.0, minimum=0.0, maximum=20.0, volatility=0.5
        )
        rng = random.Random(1)
        for _ in range(500):
            value = process.step(rng)
            assert 0.0 <= value <= 20.0

    def test_mean_reversion_pulls_back(self):
        process = FluctuationProcess(
            nominal=10.0, minimum=0.0, maximum=20.0,
            volatility=0.0, reversion=0.5,
        )
        process.value = 0.0
        rng = random.Random(0)
        process.step(rng)
        assert process.value == pytest.approx(5.0)

    def test_degrade_pushes_towards_minimum(self):
        process = FluctuationProcess(nominal=10.0, minimum=0.0, maximum=20.0)
        process.degrade(0.25)
        assert process.value == pytest.approx(5.0)


class TestWirelessLink:
    def test_transfer_time(self):
        link = WirelessLink("dev")
        link.latency.value = 0.01
        link.bandwidth.value = 1000.0
        assert link.transfer_seconds(100) == pytest.approx(0.11)

    def test_degrade_worsens_all_dimensions(self):
        link = WirelessLink("dev")
        latency_before = link.latency.value
        bandwidth_before = link.bandwidth.value
        loss_before = link.loss_rate.value
        link.degrade(0.5)
        assert link.latency.value > latency_before
        assert link.bandwidth.value < bandwidth_before
        assert link.loss_rate.value > loss_before


class TestWirelessNetwork:
    def test_attach_and_lookup(self):
        network = WirelessNetwork()
        link = network.attach("dev-1")
        assert network.link("dev-1") is link
        assert network.has_link("dev-1")

    def test_double_attach_rejected(self):
        network = WirelessNetwork()
        network.attach("dev-1")
        with pytest.raises(EnvironmentError_):
            network.attach("dev-1")

    def test_attach_foreign_link_rejected(self):
        network = WirelessNetwork()
        with pytest.raises(EnvironmentError_):
            network.attach("dev-1", WirelessLink("dev-2"))

    def test_unknown_link_raises(self):
        with pytest.raises(EnvironmentError_):
            WirelessNetwork().link("ghost")

    def test_detach(self):
        network = WirelessNetwork()
        network.attach("dev-1")
        network.detach("dev-1")
        assert not network.has_link("dev-1")

    def test_step_moves_links(self):
        network = WirelessNetwork(seed=2)
        network.attach("dev-1")
        before = network.link("dev-1").latency.value
        moved = False
        for _ in range(20):
            network.step()
            if network.link("dev-1").latency.value != before:
                moved = True
                break
        assert moved
