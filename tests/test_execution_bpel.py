"""Tests for the abstract-BPEL dialect (parse + serialise + round trip)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import BpelParseError
from repro.composition.task import (
    Conditional,
    Leaf,
    Loop,
    Parallel,
    Sequence,
    Task,
    conditional,
    leaf,
    loop,
    parallel,
    sequence,
)
from repro.execution.bpel import parse_bpel, to_bpel

SAMPLE = """
<process name="shopping">
  <sequence>
    <invoke name="Browse" capability="task:Browse"
            inputs="data:Query" outputs="data:Catalogue"/>
    <flow>
      <invoke name="Pay" capability="task:Payment"/>
      <invoke name="Notify" capability="task:Notification"/>
    </flow>
    <switch>
      <case probability="0.7"><invoke name="Audio" capability="task:Audio"/></case>
      <case probability="0.3"><invoke name="Video" capability="task:Video"/></case>
    </switch>
    <while maxIterations="3" expectedIterations="2">
      <invoke name="Track" capability="task:Tracking"/>
    </while>
  </sequence>
</process>
"""


class TestParsing:
    def test_full_document(self):
        task = parse_bpel(SAMPLE)
        assert task.name == "shopping"
        assert task.activity_names == [
            "Browse", "Pay", "Notify", "Audio", "Video", "Track",
        ]
        assert isinstance(task.root, Sequence)
        flow = task.root.members[1]
        assert isinstance(flow, Parallel)
        switch = task.root.members[2]
        assert isinstance(switch, Conditional)
        assert switch.probabilities == (0.7, 0.3)
        while_ = task.root.members[3]
        assert isinstance(while_, Loop)
        assert while_.max_iterations == 3
        assert while_.expected_iterations == 2.0

    def test_invoke_attributes(self):
        task = parse_bpel(SAMPLE)
        browse = task.activity("Browse")
        assert browse.capability == "task:Browse"
        assert browse.inputs == frozenset({"data:Query"})
        assert browse.outputs == frozenset({"data:Catalogue"})

    def test_capability_defaults_from_name(self):
        task = parse_bpel(
            '<process name="p"><invoke name="Ship"/></process>'
        )
        assert task.activity("Ship").capability == "task:Ship"

    def test_single_member_sequence_collapsed(self):
        task = parse_bpel(
            '<process name="p"><sequence><invoke name="A"/></sequence></process>'
        )
        assert isinstance(task.root, Leaf)


class TestParseErrors:
    @pytest.mark.parametrize(
        "document",
        [
            "not xml at all <",
            '<task name="p"><invoke name="A"/></task>',        # wrong root
            '<process><invoke name="A"/></process>',            # nameless
            '<process name="p"></process>',                     # empty
            '<process name="p"><invoke/></process>',            # nameless invoke
            '<process name="p"><sequence/></process>',          # empty sequence
            '<process name="p"><flow><invoke name="A"/></flow></process>',
            '<process name="p"><switch><case><invoke name="A"/></case>'
            "</switch></process>",                              # one case
            '<process name="p"><while><invoke name="A"/></while></process>',
            '<process name="p"><while maxIterations="x">'
            '<invoke name="A"/></while></process>',
            '<process name="p"><dance name="A"/></process>',    # unknown tag
            '<process name="p"><switch>'
            '<case probability="0.5"><invoke name="A"/></case>'
            '<case><invoke name="B"/></case></switch></process>',  # mixed probs
        ],
    )
    def test_malformed_documents_rejected(self, document):
        with pytest.raises(BpelParseError):
            parse_bpel(document)


class TestRoundTrip:
    def test_simple_round_trip(self):
        task = Task(
            "rt",
            sequence(
                leaf("A", "task:A", inputs=frozenset({"d:X"})),
                parallel(leaf("B", "task:B"), leaf("C", "task:C")),
                conditional(leaf("D", "task:D"), leaf("E", "task:E"),
                            probabilities=(0.4, 0.6)),
                loop(leaf("F", "task:F"), 4, 2.0),
            ),
        )
        recovered = parse_bpel(to_bpel(task))
        assert recovered.name == task.name
        assert recovered.activity_names == task.activity_names
        assert recovered.pattern_census() == task.pattern_census()
        assert recovered.activity("A").inputs == frozenset({"d:X"})

    def test_round_trip_preserves_loop_parameters(self):
        task = Task("rt", loop(leaf("A"), 7, 3.5))
        recovered = parse_bpel(to_bpel(task))
        root = recovered.root
        assert isinstance(root, Loop)
        assert root.max_iterations == 7
        assert root.expected_iterations == 3.5


# --- hypothesis: random task trees survive the round trip -----------------
_names = st.integers(0, 10_000)


def _leaves(counter):
    return st.builds(
        lambda i: leaf(f"A{next(counter)}", f"task:C{i}"), _names
    )


@st.composite
def _task_trees(draw, max_depth=3):
    counter = iter(range(10_000))

    def node(depth):
        if depth >= max_depth:
            return draw(_leaves(counter))
        kind = draw(st.sampled_from(["leaf", "seq", "par", "cond", "loop"]))
        if kind == "leaf":
            return draw(_leaves(counter))
        if kind == "seq":
            return sequence(*[node(depth + 1)
                              for _ in range(draw(st.integers(1, 3)))])
        if kind == "par":
            return parallel(node(depth + 1), node(depth + 1))
        if kind == "cond":
            return conditional(node(depth + 1), node(depth + 1))
        return loop(node(depth + 1), draw(st.integers(1, 5)))

    return Task("generated", node(0))


@settings(max_examples=30, deadline=None)
@given(_task_trees())
def test_random_tasks_round_trip(task):
    # One parse canonicalises (single-member sequences collapse); after
    # that, serialise/parse must be the identity and activities are always
    # preserved exactly.
    recovered = parse_bpel(to_bpel(task))
    assert recovered.activity_names == task.activity_names
    stable = parse_bpel(to_bpel(recovered))
    assert stable.activity_names == recovered.activity_names
    assert stable.pattern_census() == recovered.pattern_census()
