"""Tests for worker supervision, retry budgets, and shutdown hygiene."""

from __future__ import annotations

import threading

import pytest

from repro.errors import MiddlewareRuntimeError, WorkerCrashError
from repro.middleware.qasom import QASOM
from repro.observability import Observability
from repro.qos.properties import STANDARD_PROPERTIES
from repro.runtime import (
    MiddlewareRuntime,
    RequestStatus,
    RetryBudget,
    RuntimeConfig,
)
from repro.semantics.ontology import Ontology
from repro.services.generator import ServiceGenerator
from repro.composition.request import UserRequest
from repro.composition.task import Task, leaf, sequence
from repro.env.environment import PervasiveEnvironment

PROPS = {
    name: STANDARD_PROPERTIES[name]
    for name in ("response_time", "cost", "availability")
}
CAPS = ("task:One", "task:Two")


def wait_until(predicate, timeout=10.0, interval=0.005):
    """Poll for an asynchronously-updated condition (supervision races)."""
    import time

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def build_world(seed=3, services=6, observability=None):
    ontology = Ontology("runtime-supervisor-tests")
    root = ontology.declare_class("task:Root")
    for capability in CAPS:
        ontology.declare_class(capability, [root])
    environment = PervasiveEnvironment(seed=seed)
    generator = ServiceGenerator(PROPS, seed=seed)
    for capability in CAPS:
        for service in generator.candidates(capability, services):
            environment.host_on_new_device(service)
    middleware = QASOM.for_environment(environment, PROPS,
                                       ontology=ontology,
                                       observability=observability)
    task = Task("sup", sequence(leaf("A", CAPS[0]), leaf("B", CAPS[1])))
    request = UserRequest(task=task, constraints=(),
                          weights={name: 1.0 for name in PROPS})
    return middleware, request


class TestRetryBudget:
    def test_initial_balance_and_acquire(self):
        budget = RetryBudget(ratio=0.1, initial=2.0, cap=4.0)
        assert budget.tokens == 2.0
        assert budget.try_acquire()
        assert budget.try_acquire()
        assert not budget.try_acquire()
        assert budget.granted == 2
        assert budget.denied == 1

    def test_admissions_deposit_up_to_cap(self):
        budget = RetryBudget(ratio=0.5, initial=0.0, cap=1.0)
        assert not budget.try_acquire()
        for _ in range(10):
            budget.on_admit()
        assert budget.tokens == 1.0  # capped, not 5.0
        assert budget.try_acquire()

    def test_ratio_caps_sustained_retry_fraction(self):
        # 100 admissions at ratio 0.25 pay for exactly 25 retries (the
        # ratio is binary-exact, so no float drift muddies the count).
        budget = RetryBudget(ratio=0.25, initial=0.0, cap=100.0)
        granted = 0
        for _ in range(100):
            budget.on_admit()
            if budget.try_acquire():
                granted += 1
        assert granted == 25

    def test_validation(self):
        with pytest.raises(MiddlewareRuntimeError):
            RetryBudget(ratio=1.5)
        with pytest.raises(MiddlewareRuntimeError):
            RetryBudget(initial=-1.0)
        with pytest.raises(MiddlewareRuntimeError):
            RetryBudget(initial=8.0, cap=4.0)

    def test_gauge_tracks_balance(self):
        obs = Observability()
        budget = RetryBudget(ratio=0.0, initial=1.0, cap=1.0,
                             observability=obs)
        budget.try_acquire()
        assert obs.metrics.value("runtime_retry_budget_tokens") == 0.0
        assert obs.metrics.value(
            "runtime_retry_budget_denied_total"
        ) is None
        budget.try_acquire()
        assert obs.metrics.value(
            "runtime_retry_budget_denied_total"
        ) == 1.0


class TestStuckHandleRegression:
    """Satellite fix: a raising ``_process`` must FAIL the handle.

    Before the fix, an exception escaping ``_process`` killed the worker
    and left the in-flight handle permanently QUEUED/RUNNING — its
    ``result()`` blocked forever.  Now the worker loop routes any escapee
    through requeue-or-fail before the thread dies.
    """

    def test_escaping_exception_fails_handle_instead_of_hanging(self):
        middleware, request = build_world()
        config = RuntimeConfig(workers=1, queue_depth=2, max_requeues=0)
        with MiddlewareRuntime(middleware, config) as runtime:
            boom = RuntimeError("worker bug escaped _process")

            def exploding_process(handle):
                raise boom

            runtime._process = exploding_process
            handle = runtime.submit(request)
            # result(timeout=...) returning at all IS the regression test:
            # pre-fix this deadlocked.
            with pytest.raises(RuntimeError, match="escaped _process"):
                handle.result(timeout=10.0)
            assert handle.status is RequestStatus.FAILED
            # the worker died and was respawned (asynchronously)
            assert wait_until(lambda: runtime.supervisor.restarts == 1)
            assert wait_until(lambda: runtime.alive_workers == 1)

    def test_escaping_exception_is_requeued_when_budget_allows(self):
        middleware, request = build_world()
        config = RuntimeConfig(workers=1, queue_depth=2, max_requeues=2)
        with MiddlewareRuntime(middleware, config) as runtime:
            original = runtime._process
            calls = []

            def flaky_process(handle):
                calls.append(handle.seq)
                if len(calls) == 1:
                    raise RuntimeError("transient worker bug")
                return original(handle)

            runtime._process = flaky_process
            handle = runtime.submit(request)
            result = handle.result(timeout=10.0)
            assert result.plan is not None
            assert handle.requeues == 1
            assert len(calls) == 2

    def test_non_terminal_return_fails_handle(self):
        middleware, request = build_world()
        config = RuntimeConfig(workers=1, queue_depth=2, max_requeues=0)
        with MiddlewareRuntime(middleware, config) as runtime:
            runtime._process = lambda handle: None  # forgets to complete
            handle = runtime.submit(request)
            with pytest.raises(MiddlewareRuntimeError,
                               match="without a terminal state"):
                handle.result(timeout=10.0)
            assert handle.status is RequestStatus.FAILED


class TestCloseJoinsWorkers:
    """Satellite fix: ``close()`` bounds its joins and reports leaks."""

    def wedge_runtime(self, observability=None, **config_kwargs):
        middleware, request = build_world(observability=observability)
        config = RuntimeConfig(workers=1, queue_depth=2,
                               close_join_seconds=0.05, **config_kwargs)
        runtime = MiddlewareRuntime(middleware, config)
        release = threading.Event()
        entered = threading.Event()

        def wedged_process(handle):
            entered.set()
            release.wait(timeout=30.0)
            handle._fail(RuntimeError("released"), RequestStatus.FAILED)

        runtime._process = wedged_process
        handle = runtime.submit(request)
        assert entered.wait(timeout=10.0)
        return runtime, handle, release

    def test_non_draining_close_counts_leaked_threads(self):
        obs = Observability()
        runtime, handle, release = self.wedge_runtime(observability=obs)
        runtime.close(drain=False)  # returns despite the wedged worker
        assert obs.metrics.value("runtime_threads_leaked_total") == 1.0
        release.set()

    def test_draining_close_raises_on_leaked_threads(self):
        runtime, handle, release = self.wedge_runtime()
        with pytest.raises(MiddlewareRuntimeError, match="still alive"):
            runtime.close(drain=True)
        release.set()

    def test_close_join_seconds_validated(self):
        with pytest.raises(MiddlewareRuntimeError):
            RuntimeConfig(close_join_seconds=0.0)


class TestSequenceKeyedTickets:
    """Satellite fix: tickets key on ``handle.seq``, never ``id(handle)``.

    ``id()`` is reused after garbage collection, so a ticket map keyed on
    it could cross-wire a dead handle's ticket onto a new submission.
    Monotonic sequence numbers cannot collide.
    """

    def test_handle_seqs_are_unique_and_monotonic(self):
        middleware, request = build_world()
        config = RuntimeConfig(workers=2, queue_depth=16)
        with MiddlewareRuntime(middleware, config) as runtime:
            handles = [runtime.submit(request) for _ in range(8)]
            runtime.drain()
        seqs = [h.seq for h in handles]
        assert len(set(seqs)) == len(seqs)
        assert seqs == sorted(seqs)

    def test_seqs_survive_handle_garbage_collection(self):
        import gc

        middleware, request = build_world()
        config = RuntimeConfig(workers=1, queue_depth=64)
        with MiddlewareRuntime(middleware, config) as runtime:
            seen = set()
            for _ in range(12):
                handle = runtime.submit(request)
                handle.result(timeout=30.0)
                assert handle.seq not in seen
                seen.add(handle.seq)
                del handle
                gc.collect()  # invite id() reuse; seqs must stay fresh
            runtime.drain()
            assert runtime.open_tickets == 0

    def test_commit_log_records_seqs(self):
        middleware, request = build_world()
        config = RuntimeConfig(workers=2, queue_depth=8)
        with MiddlewareRuntime(middleware, config) as runtime:
            handles = [runtime.submit(request) for _ in range(4)]
            runtime.drain()
            assert sorted(seq for _, seq in runtime.commit_log) == sorted(
                h.seq for h in handles
            )


class TestSupervisorRespawn:
    def test_pool_size_restored_after_repeated_deaths(self):
        middleware, request = build_world()
        config = RuntimeConfig(workers=2, queue_depth=8, max_requeues=0)
        with MiddlewareRuntime(middleware, config) as runtime:
            failures = []
            arm_lock = threading.Lock()

            class Bomb(BaseException):
                pass

            original = runtime._process

            def bombing_process(handle):
                with arm_lock:
                    bomb = len(failures) < 3
                    if bomb:
                        failures.append(handle.seq)
                if bomb:
                    raise Bomb("thread-killing failure")
                return original(handle)

            runtime._process = bombing_process
            handles = [runtime.submit(request) for _ in range(6)]
            runtime.drain()
            assert wait_until(lambda: runtime.supervisor.restarts == 3)
            assert wait_until(lambda: runtime.alive_workers == 2)
            # BaseException deaths surface as WorkerCrashError on handles
            failed = [h for h in handles
                      if h.status is RequestStatus.FAILED]
            assert len(failed) == 3
            for handle in failed:
                with pytest.raises(WorkerCrashError):
                    handle.result()
            done = [h for h in handles if h.status is RequestStatus.DONE]
            assert len(done) == 3

    def test_restart_counter_and_span(self):
        obs = Observability()
        middleware, request = build_world(observability=obs)
        config = RuntimeConfig(workers=1, queue_depth=4, max_requeues=0)
        with MiddlewareRuntime(middleware, config) as runtime:
            calls = []
            original = runtime._process

            def crashing_once(handle):
                if not calls:
                    calls.append(1)
                    raise SystemExit("die")
                return original(handle)

            runtime._process = crashing_once
            handles = [runtime.submit(request) for _ in range(2)]
            runtime.drain()
            assert wait_until(
                lambda: obs.metrics.value(
                    "runtime_worker_restarts_total"
                ) == 1.0
            )

    def test_no_respawn_after_close(self):
        middleware, request = build_world()
        config = RuntimeConfig(workers=1, queue_depth=2)
        runtime = MiddlewareRuntime(middleware, config).start()
        runtime.close()
        assert runtime.supervisor.spawn(0) is None
        assert runtime.alive_workers == 0
