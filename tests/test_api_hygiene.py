"""Meta-tests: public-API hygiene of the whole package.

Documentation on every public item is deliverable (e); these tests make the
guarantee executable: every module, public class and public function under
``repro`` carries a docstring, ``__all__`` exports resolve, and the
exception hierarchy is rooted at ReproError.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro


def _walk_modules():
    yield repro
    for module_info in pkgutil.walk_packages(repro.__path__,
                                             prefix="repro."):
        yield importlib.import_module(module_info.name)


ALL_MODULES = list(_walk_modules())


class TestDocstrings:
    @pytest.mark.parametrize(
        "module", ALL_MODULES, ids=lambda m: m.__name__
    )
    def test_module_has_docstring(self, module):
        assert module.__doc__ and module.__doc__.strip(), (
            f"{module.__name__} lacks a module docstring"
        )

    @pytest.mark.parametrize(
        "module", ALL_MODULES, ids=lambda m: m.__name__
    )
    def test_public_classes_and_functions_documented(self, module):
        undocumented = []
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            if getattr(obj, "__module__", None) != module.__name__:
                continue  # re-exports documented at their home
            if not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(name)
        assert undocumented == [], (
            f"{module.__name__} has undocumented public items: "
            f"{undocumented}"
        )


class TestExports:
    @pytest.mark.parametrize(
        "module",
        [m for m in ALL_MODULES if hasattr(m, "__all__")],
        ids=lambda m: m.__name__,
    )
    def test_all_exports_resolve(self, module):
        for name in module.__all__:
            assert hasattr(module, name), (
                f"{module.__name__}.__all__ names missing attribute {name!r}"
            )

    def test_top_level_api_imports(self):
        from repro import (
            QASOM, QASSA, GlobalConstraint, Task, UserRequest,
            build_end_to_end_model, build_shopping_scenario,
        )

        assert QASOM and QASSA and GlobalConstraint and Task
        assert UserRequest and build_end_to_end_model
        assert build_shopping_scenario


class TestExceptionHierarchy:
    def test_every_repro_exception_roots_at_reproerror(self):
        from repro import errors

        for name, obj in vars(errors).items():
            if inspect.isclass(obj) and issubclass(obj, Exception):
                if obj is errors.ReproError:
                    continue
                assert issubclass(obj, errors.ReproError), (
                    f"{name} does not derive from ReproError"
                )

    def test_catching_reproerror_covers_middleware_failures(self):
        from repro.errors import (
            BindingError, NoCandidateError, ReproError, SelectionError,
        )

        for exc in (BindingError("x"), NoCandidateError("a"),
                    SelectionError("y")):
            try:
                raise exc
            except ReproError:
                pass


class TestStableApiSurface:
    """``repro.api`` is the one blessed import surface (this PR's redesign)."""

    def test_api_all_is_pinned(self):
        from repro import api

        assert sorted(api.__all__) == api.__all__ or True  # order is tiered
        expected = {
            # core middleware
            "AdaptiveAdmissionController", "AdmissionRejectedError",
            "BACKEND_CHOICES",
            "CandidateSets", "ChaosPolicy", "CompositionPlan",
            "DeadlineExceededError", "ExecutionBackend",
            "GlobalConstraint", "InvariantReport",
            "MiddlewareConfig",
            "MiddlewareRuntime", "MiddlewareRuntimeError",
            "PartialExecutionReport", "ProcessBackend", "QASOM",
            "ReproError", "RequestStatus",
            "RetryBudget", "RunHandle", "RunResult", "RuntimeConfig",
            "RuntimeInvariantError", "RuntimeShutdownError",
            "Task", "ThreadBackend", "UnsupportedBackendFeatureError",
            "UserRequest", "WorkerCrashError", "WorkerProcessCrash",
            "assert_runtime_invariants", "leaf", "loop", "parallel",
            "sequence", "verify_runtime_invariants",
            # environment & scenarios
            "Device", "DeviceClass", "EnvironmentConfig",
            "PervasiveEnvironment", "RegistrySnapshot", "Scenario",
            "ServiceDescription", "ServiceGenerator", "ServiceRegistry",
            "build_hospital_scenario", "build_holiday_camp_scenario",
            "build_shopping_scenario",
            # toolkit
            "AggregationApproach", "ClosedLoopDriver", "ComplianceTracker",
            "DriverReport", "ExactSelection", "ExecutionEngine",
            "ExecutionReport", "ExhaustiveSelection",
            "FaultEvent", "FaultKind", "FaultSchedule",
            "FlightRecorder", "ForensicReporter",
            "GeneticSelection", "GreedySelection",
            "HomeomorphismConfig", "MatchDegree", "MonitorConfig",
            "Observability", "ObservabilityConfig", "OnOffArrivals",
            "Ontology", "OpenLoopDriver", "PoissonArrivals", "QASSA",
            "QassaConfig", "QoSModel", "QoSObservation", "QoSVector",
            "RandomSelection",
            "ReputationManager", "ResilienceConfig", "RuntimeEvent",
            "STANDARD_PROPERTIES", "Selector",
            "SimulatedClock", "Slo", "StageWindows", "Sweep", "TimeoutPolicy",
            "TraceAssembly", "TraceContext", "WindowedHistogram",
            "aggregate_composition", "assemble_traces",
            "build_end_to_end_model", "derive_slas",
            "dump_repository", "figures", "observability", "render_series",
            "render_table",
        }
        assert set(api.__all__) == expected

    def test_api_exports_resolve_and_are_importable(self):
        from repro import api

        for name in api.__all__:
            assert getattr(api, name) is not None

    def test_cli_imports_only_from_the_api(self):
        import re
        import inspect as _inspect

        from repro import cli

        source = _inspect.getsource(cli)
        deep = [
            line for line in source.splitlines()
            if re.match(r"\s*from repro\.(?!api\b)", line)
            or re.match(r"\s*import repro\.(?!api\b)", line)
        ]
        assert deep == [], f"repro.cli bypasses repro.api: {deep}"

    def test_examples_import_only_from_the_api(self):
        import pathlib
        import re

        examples = (
            pathlib.Path(__file__).resolve().parent.parent / "examples"
        )
        offenders = []
        for path in sorted(examples.glob("*.py")):
            for line in path.read_text().splitlines():
                if re.match(r"\s*(from|import) repro\.(?!api\b)", line):
                    offenders.append(f"{path.name}: {line.strip()}")
        assert offenders == [], f"examples bypass repro.api: {offenders}"


class TestKeywordOnlyConstruction:
    """The redesigned constructors reject positional config soup."""

    def test_middleware_config_rejects_positionals(self):
        from repro.api import MiddlewareConfig

        with pytest.raises(TypeError):
            MiddlewareConfig("pessimistic")

    def test_runtime_config_rejects_positionals(self):
        from repro.api import RuntimeConfig

        with pytest.raises(TypeError):
            RuntimeConfig(8)

    def test_qasom_rejects_extra_positionals(self):
        from repro.api import QASOM

        with pytest.raises(TypeError):
            QASOM(None, None, None)  # everything past (env, props) is kw-only


class TestDeprecatedShims:
    """compose/compose_ranked/execute still work, under DeprecationWarning."""

    @staticmethod
    def _middleware():
        from repro.api import (
            Ontology, PervasiveEnvironment, QASOM, ServiceGenerator,
            STANDARD_PROPERTIES, Task, UserRequest, leaf, sequence,
        )

        props = {
            n: STANDARD_PROPERTIES[n]
            for n in ("response_time", "cost", "availability")
        }
        ontology = Ontology("shim-tests")
        root = ontology.declare_class("task:Root")
        ontology.declare_class("task:Only", [root])
        environment = PervasiveEnvironment(seed=5)
        generator = ServiceGenerator(props, seed=5)
        for service in generator.candidates("task:Only", 5):
            environment.host_on_new_device(service)
        middleware = QASOM.for_environment(environment, props,
                                           ontology=ontology)
        task = Task("shim", sequence(leaf("A", "task:Only")))
        request = UserRequest(task=task, constraints=(),
                              weights={n: 1.0 for n in props})
        return middleware, request

    def test_compose_warns_and_delegates(self):
        middleware, request = self._middleware()
        with pytest.warns(DeprecationWarning, match="submit"):
            plan = middleware.compose(request)
        assert plan.feasible == middleware.submit(
            request, execute=False
        ).plan().feasible

    def test_compose_ranked_warns_and_delegates(self):
        middleware, request = self._middleware()
        with pytest.warns(DeprecationWarning, match="submit"):
            proposals = middleware.compose_ranked(request, k=2)
        assert proposals
        assert proposals == sorted(proposals, key=lambda p: -p.utility)

    def test_execute_warns_and_delegates(self):
        middleware, request = self._middleware()
        plan = middleware.submit(request, execute=False).plan()
        with pytest.warns(DeprecationWarning, match="submit"):
            result = middleware.execute(plan)
        assert result.report is not None

    def test_internal_modules_raise_no_deprecation_warnings(self):
        """An end-to-end run through the new surface is shim-free."""
        import warnings

        middleware, request = self._middleware()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            result = middleware.run(request)
            handle = middleware.submit(request, execute=False)
            assert handle.plan() is not None
        assert result.plan is not None
