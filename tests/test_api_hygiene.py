"""Meta-tests: public-API hygiene of the whole package.

Documentation on every public item is deliverable (e); these tests make the
guarantee executable: every module, public class and public function under
``repro`` carries a docstring, ``__all__`` exports resolve, and the
exception hierarchy is rooted at ReproError.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro


def _walk_modules():
    yield repro
    for module_info in pkgutil.walk_packages(repro.__path__,
                                             prefix="repro."):
        yield importlib.import_module(module_info.name)


ALL_MODULES = list(_walk_modules())


class TestDocstrings:
    @pytest.mark.parametrize(
        "module", ALL_MODULES, ids=lambda m: m.__name__
    )
    def test_module_has_docstring(self, module):
        assert module.__doc__ and module.__doc__.strip(), (
            f"{module.__name__} lacks a module docstring"
        )

    @pytest.mark.parametrize(
        "module", ALL_MODULES, ids=lambda m: m.__name__
    )
    def test_public_classes_and_functions_documented(self, module):
        undocumented = []
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            if getattr(obj, "__module__", None) != module.__name__:
                continue  # re-exports documented at their home
            if not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(name)
        assert undocumented == [], (
            f"{module.__name__} has undocumented public items: "
            f"{undocumented}"
        )


class TestExports:
    @pytest.mark.parametrize(
        "module",
        [m for m in ALL_MODULES if hasattr(m, "__all__")],
        ids=lambda m: m.__name__,
    )
    def test_all_exports_resolve(self, module):
        for name in module.__all__:
            assert hasattr(module, name), (
                f"{module.__name__}.__all__ names missing attribute {name!r}"
            )

    def test_top_level_api_imports(self):
        from repro import (
            QASOM, QASSA, GlobalConstraint, Task, UserRequest,
            build_end_to_end_model, build_shopping_scenario,
        )

        assert QASOM and QASSA and GlobalConstraint and Task
        assert UserRequest and build_end_to_end_model
        assert build_shopping_scenario


class TestExceptionHierarchy:
    def test_every_repro_exception_roots_at_reproerror(self):
        from repro import errors

        for name, obj in vars(errors).items():
            if inspect.isclass(obj) and issubclass(obj, Exception):
                if obj is errors.ReproError:
                    continue
                assert issubclass(obj, errors.ReproError), (
                    f"{name} does not derive from ReproError"
                )

    def test_catching_reproerror_covers_middleware_failures(self):
        from repro.errors import (
            BindingError, NoCandidateError, ReproError, SelectionError,
        )

        for exc in (BindingError("x"), NoCandidateError("a"),
                    SelectionError("y")):
            try:
                raise exc
            except ReproError:
                pass
