"""Tests for the measurement harness and reporting."""

from __future__ import annotations

import pytest

from repro.experiments.harness import (
    ExperimentPoint,
    Sweep,
    Timing,
    measure,
    measure_traced,
    optimality,
    try_select,
)
from repro.experiments.reporting import render_json, render_series, render_table


class TestSweep:
    def test_add_and_series(self):
        sweep = Sweep("s", "x")
        sweep.add(1.0, a=10.0, b=20.0)
        sweep.add(2.0, a=30.0)
        assert sweep.series("a") == [(1.0, 10.0), (2.0, 30.0)]
        assert sweep.series("b") == [(1.0, 20.0)]
        assert sweep.series("missing") == []


class TestMeasure:
    def test_returns_median_and_result(self):
        calls = []

        def work():
            calls.append(1)
            return "result"

        elapsed, result = measure(work, repetitions=5)
        assert result == "result"
        assert len(calls) == 5
        assert elapsed >= 0.0

    def test_minimum_one_repetition(self):
        elapsed, result = measure(lambda: 42, repetitions=0)
        assert result == 42

    def test_timing_carries_the_spread(self):
        elapsed, _ = measure(lambda: sum(range(100)), repetitions=5)
        assert isinstance(elapsed, Timing)
        assert len(elapsed.samples) == 5
        assert elapsed.minimum <= elapsed.median <= elapsed.maximum
        assert elapsed.minimum <= elapsed.mean <= elapsed.maximum
        assert elapsed.stdev >= 0.0


class TestTiming:
    def test_is_the_median_as_a_float(self):
        timing = Timing([3.0, 1.0, 2.0])
        assert float(timing) == 2.0
        assert timing == 2.0
        assert timing.median == 2.0

    def test_spread_statistics(self):
        timing = Timing([1.0, 2.0, 3.0, 4.0])
        assert timing.minimum == 1.0
        assert timing.maximum == 4.0
        assert timing.mean == 2.5
        assert timing.stdev == pytest.approx(1.2909944, rel=1e-6)

    def test_single_sample_has_zero_stdev(self):
        timing = Timing([0.5])
        assert timing.stdev == 0.0
        assert timing.mean == 0.5

    def test_rejects_empty_samples(self):
        with pytest.raises(ValueError):
            Timing([])

    def test_scaling_scales_every_sample(self):
        # Benchmarks convert seconds to milliseconds with `elapsed * 1000`;
        # the spread must survive that conversion.
        scaled = Timing([0.001, 0.002, 0.003]) * 1000
        assert isinstance(scaled, Timing)
        assert scaled == 2.0
        assert scaled.samples == (1.0, 2.0, 3.0)
        assert 1000 * Timing([0.002]) == 2.0

    def test_summary_is_json_ready(self):
        summary = Timing([1.0, 3.0]).summary()
        assert summary == {
            "median": 2.0, "min": 1.0, "max": 3.0, "mean": 2.0,
            "stdev": pytest.approx(1.4142135, rel=1e-6),
            "repetitions": 2.0,
        }


class TestMeasureTraced:
    def test_breakdown_aggregates_instrumented_stages(self):
        from repro.observability import get_default

        def work():
            obs = get_default()
            with obs.span("stage_a"):
                with obs.span("stage_b"):
                    pass
            return "done"

        timing, result, breakdown = measure_traced(work, repetitions=2)
        assert result == "done"
        assert isinstance(timing, Timing)
        assert breakdown["stage_a"]["count"] == 2
        assert breakdown["stage_b"]["count"] == 2
        # The ambient default is restored afterwards.
        assert not get_default().enabled


class TestOptimality:
    class _Plan:
        def __init__(self, utility):
            self.utility = utility

    def test_ratio(self):
        assert optimality(self._Plan(0.8), self._Plan(1.0)) == 0.8

    def test_clamped_to_one(self):
        assert optimality(self._Plan(1.2), self._Plan(1.0)) == 1.0

    def test_zero_optimum(self):
        assert optimality(self._Plan(0.0), self._Plan(0.0)) == 1.0
        assert optimality(self._Plan(0.5), self._Plan(0.0)) == 0.0


class TestTrySelect:
    def test_none_on_selection_error(self):
        from repro.errors import SelectionError

        class Failing:
            def select(self, request, candidates):
                raise SelectionError("nope")

        assert try_select(Failing(), None, None) is None

    def test_passthrough_on_success(self):
        class Working:
            def select(self, request, candidates):
                return "plan"

        assert try_select(Working(), None, None) == "plan"


class TestReporting:
    def test_render_table_alignment(self):
        text = render_table(
            ["name", "value"], [["alpha", 1.5], ["b", 123456.0]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert len(lines) == 5

    def test_render_series_infers_columns(self):
        sweep = Sweep("s", "x")
        sweep.add(1, a=2.0)
        sweep.add(2, b=3.0)
        text = render_series(sweep)
        assert "a" in text and "b" in text and "x" in text

    def test_float_formatting(self):
        text = render_table(["v"], [[0.00001], [12345678.0], [0.5], [True]])
        assert "1.000e-05" in text
        assert "1.235e+07" in text
        assert "0.5" in text
        assert "yes" in text

    def test_render_json_expands_timings(self):
        import json

        sweep = Sweep("s", "x")
        sweep.add(1.0, time_ms=Timing([1.0, 2.0, 3.0]), optimality=0.9)
        data = json.loads(render_json(sweep))
        assert data["name"] == "s"
        point = data["points"][0]
        assert point["x"] == 1.0
        assert point["values"]["optimality"] == 0.9
        spread = point["values"]["time_ms"]
        assert spread["median"] == 2.0
        assert spread["min"] == 1.0
        assert spread["max"] == 3.0
        assert spread["repetitions"] == 3.0
