"""Tests for the measurement harness and reporting."""

from __future__ import annotations

import pytest

from repro.experiments.harness import (
    ExperimentPoint,
    Sweep,
    measure,
    optimality,
    try_select,
)
from repro.experiments.reporting import render_series, render_table


class TestSweep:
    def test_add_and_series(self):
        sweep = Sweep("s", "x")
        sweep.add(1.0, a=10.0, b=20.0)
        sweep.add(2.0, a=30.0)
        assert sweep.series("a") == [(1.0, 10.0), (2.0, 30.0)]
        assert sweep.series("b") == [(1.0, 20.0)]
        assert sweep.series("missing") == []


class TestMeasure:
    def test_returns_median_and_result(self):
        calls = []

        def work():
            calls.append(1)
            return "result"

        elapsed, result = measure(work, repetitions=5)
        assert result == "result"
        assert len(calls) == 5
        assert elapsed >= 0.0

    def test_minimum_one_repetition(self):
        elapsed, result = measure(lambda: 42, repetitions=0)
        assert result == 42


class TestOptimality:
    class _Plan:
        def __init__(self, utility):
            self.utility = utility

    def test_ratio(self):
        assert optimality(self._Plan(0.8), self._Plan(1.0)) == 0.8

    def test_clamped_to_one(self):
        assert optimality(self._Plan(1.2), self._Plan(1.0)) == 1.0

    def test_zero_optimum(self):
        assert optimality(self._Plan(0.0), self._Plan(0.0)) == 1.0
        assert optimality(self._Plan(0.5), self._Plan(0.0)) == 0.0


class TestTrySelect:
    def test_none_on_selection_error(self):
        from repro.errors import SelectionError

        class Failing:
            def select(self, request, candidates):
                raise SelectionError("nope")

        assert try_select(Failing(), None, None) is None

    def test_passthrough_on_success(self):
        class Working:
            def select(self, request, candidates):
                return "plan"

        assert try_select(Working(), None, None) == "plan"


class TestReporting:
    def test_render_table_alignment(self):
        text = render_table(
            ["name", "value"], [["alpha", 1.5], ["b", 123456.0]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert len(lines) == 5

    def test_render_series_infers_columns(self):
        sweep = Sweep("s", "x")
        sweep.add(1, a=2.0)
        sweep.add(2, b=3.0)
        text = render_series(sweep)
        assert "a" in text and "b" in text and "x" in text

    def test_float_formatting(self):
        text = render_table(["v"], [[0.00001], [12345678.0], [0.5], [True]])
        assert "1.000e-05" in text
        assert "1.235e+07" in text
        assert "0.5" in text
        assert "yes" in text
