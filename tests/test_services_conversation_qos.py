"""Tests for white-box conversation QoS folding."""

from __future__ import annotations

import pytest

from repro.errors import ServiceDescriptionError
from repro.qos.properties import STANDARD_PROPERTIES
from repro.qos.values import QoSVector
from repro.services.conversation_qos import (
    aggregate_conversation,
    effective_qos,
    with_effective_qos,
)
from repro.services.description import Conversation, Operation, ServiceDescription

PROPS = {
    name: STANDARD_PROPERTIES[name]
    for name in ("response_time", "cost", "availability", "throughput",
                 "reputation")
}


def op(name, rt, cost=1.0, avail=0.9, throughput=100.0, reputation=4.0):
    return Operation(
        name=name,
        capability=f"task:{name}",
        qos=QoSVector(
            {"response_time": rt, "cost": cost, "availability": avail,
             "throughput": throughput, "reputation": reputation},
            PROPS,
        ),
    )


class TestCriticalPath:
    def test_chain_sums_response_time(self):
        conv = Conversation(
            operations=(op("a", 100.0), op("b", 200.0), op("c", 50.0)),
            flow=(("a", "b"), ("b", "c")),
        )
        folded = aggregate_conversation(conv, PROPS)
        assert folded["response_time"] == 350.0

    def test_diamond_takes_longest_branch(self):
        conv = Conversation(
            operations=(op("a", 10.0), op("fast", 20.0), op("slow", 200.0),
                        op("z", 10.0)),
            flow=(("a", "fast"), ("a", "slow"), ("fast", "z"), ("slow", "z")),
        )
        folded = aggregate_conversation(conv, PROPS)
        assert folded["response_time"] == 220.0

    def test_unordered_operations_run_concurrently(self):
        conv = Conversation(operations=(op("a", 100.0), op("b", 300.0)))
        folded = aggregate_conversation(conv, PROPS)
        assert folded["response_time"] == 300.0

    def test_cyclic_flow_rejected(self):
        conv = Conversation(
            operations=(op("a", 1.0), op("b", 1.0)),
            flow=(("a", "b"), ("b", "a")),
        )
        with pytest.raises(ServiceDescriptionError):
            aggregate_conversation(conv, PROPS)


class TestOtherKinds:
    def setup_method(self):
        self.conv = Conversation(
            operations=(
                op("a", 10.0, cost=1.0, avail=0.9, throughput=50.0,
                   reputation=3.0),
                op("b", 20.0, cost=2.0, avail=0.8, throughput=200.0,
                   reputation=5.0),
            ),
            flow=(("a", "b"),),
        )
        self.folded = aggregate_conversation(self.conv, PROPS)

    def test_cost_sums_over_all_operations(self):
        assert self.folded["cost"] == 3.0

    def test_availability_multiplies(self):
        assert self.folded["availability"] == pytest.approx(0.72)

    def test_throughput_is_bottleneck(self):
        assert self.folded["throughput"] == 50.0

    def test_reputation_averages(self):
        assert self.folded["reputation"] == 4.0


class TestPartialDeclarations:
    def test_property_missing_on_one_operation_not_folded(self):
        partial = Operation(
            "p", "task:P",
            qos=QoSVector({"response_time": 5.0}, PROPS),
        )
        conv = Conversation(operations=(op("a", 10.0), partial),
                            flow=(("a", "p"),))
        folded = aggregate_conversation(conv, PROPS)
        assert "response_time" in folded
        assert "cost" not in folded

    def test_operation_without_qos_blocks_folding(self):
        bare = Operation("bare", "task:B")
        conv = Conversation(operations=(op("a", 10.0), bare))
        folded = aggregate_conversation(conv, PROPS)
        assert len(folded) == 0


class TestEffectiveQoS:
    def make_white_box(self, advertised):
        conv = Conversation(
            operations=(op("a", 100.0), op("b", 200.0)),
            flow=(("a", "b"),),
        )
        return ServiceDescription(
            name="wb", capability="task:X",
            advertised_qos=QoSVector(advertised, PROPS),
            conversation=conv,
        )

    def test_black_box_unchanged(self):
        service = ServiceDescription(
            name="bb", capability="task:X",
            advertised_qos=QoSVector({"cost": 5.0}, PROPS),
        )
        assert effective_qos(service, PROPS) == service.advertised_qos

    def test_folded_values_fill_gaps(self):
        service = self.make_white_box({"reputation": 4.5})
        merged = effective_qos(service, PROPS)
        assert merged["response_time"] == 300.0  # folded from operations
        assert merged["reputation"] == 4.5        # explicit claim kept

    def test_explicit_advertisement_wins(self):
        service = self.make_white_box({"response_time": 250.0})
        merged = effective_qos(service, PROPS)
        assert merged["response_time"] == 250.0

    def test_with_effective_qos_preserves_identity(self):
        service = self.make_white_box({})
        enriched = with_effective_qos(service, PROPS)
        assert enriched == service
        assert "response_time" in enriched.advertised_qos


class TestSelectionIntegration:
    def test_white_box_services_selectable(self):
        """A registry of white-box services flows through QASSA after
        effective-QoS enrichment."""
        from repro.composition.qassa import QASSA
        from repro.composition.request import UserRequest
        from repro.composition.selection import CandidateSets
        from repro.composition.task import Task, leaf, sequence

        def white_box(i):
            conv = Conversation(
                operations=(op("x", 50.0 + i * 10), op("y", 30.0 + i * 5)),
                flow=(("x", "y"),),
            )
            return ServiceDescription(
                name=f"wb-{i}", capability="task:W",
                advertised_qos=QoSVector({}, PROPS),
                conversation=conv,
            )

        services = [
            with_effective_qos(white_box(i), PROPS) for i in range(6)
        ]
        task = Task("t", sequence(leaf("A", "task:W")))
        candidates = CandidateSets(task, {"A": services})
        request = UserRequest(task, weights={"response_time": 1.0})
        plan = QASSA(PROPS).select(request, candidates)
        # Lowest folded response time wins: wb-0 (critical path 80 ms).
        assert plan.selections["A"].primary.name == "wb-0"
