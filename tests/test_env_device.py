"""Tests for simulated devices."""

from __future__ import annotations

import pytest

from repro.errors import EnvironmentError_
from repro.env.device import Device, DeviceClass


class TestProfiles:
    def test_server_has_infinite_battery(self):
        server = Device("srv", DeviceClass.SERVER)
        assert server.battery_level == 1.0
        server.drain(1e9, active_fraction=1.0)
        assert server.alive

    def test_smartphone_profile(self):
        phone = Device("ph", DeviceClass.SMARTPHONE)
        assert phone.cpu_factor == 1.0
        assert phone.battery_level == 1.0
        assert phone.alive

    def test_sensor_is_most_constrained(self):
        sensor = Device("sn", DeviceClass.SENSOR)
        laptop = Device("lp", DeviceClass.LAPTOP)
        assert sensor.cpu_factor < laptop.cpu_factor
        assert sensor.battery_wh < laptop.battery_wh


class TestBattery:
    def test_drain_reduces_level(self):
        phone = Device("ph", DeviceClass.SMARTPHONE)
        phone.drain(3600.0, active_fraction=1.0)  # one active hour
        assert phone.battery_level < 1.0

    def test_full_drain_kills_device(self):
        sensor = Device("sn", DeviceClass.SENSOR)
        sensor.drain(3600.0 * 1000, active_fraction=1.0)
        assert sensor.battery_level == 0.0
        assert not sensor.alive
        assert not sensor.online

    def test_negative_drain_rejected(self):
        with pytest.raises(EnvironmentError_):
            Device("ph").drain(-1.0)

    def test_recharge_restores(self):
        phone = Device("ph", DeviceClass.SMARTPHONE)
        phone.drain(3600.0 * 100, active_fraction=1.0)
        assert not phone.alive
        phone.recharge()
        assert phone.alive
        assert phone.battery_level == 1.0

    def test_idle_drains_slower_than_active(self):
        idle = Device("a", DeviceClass.SMARTPHONE)
        active = Device("b", DeviceClass.SMARTPHONE)
        idle.drain(3600.0, active_fraction=0.0)
        active.drain(3600.0, active_fraction=1.0)
        assert idle.battery_level > active.battery_level


class TestSlowdown:
    def test_unloaded_fast_device(self):
        server = Device("srv", DeviceClass.SERVER)
        assert server.slowdown() == pytest.approx(1.0 / 4.0)

    def test_load_increases_slowdown(self):
        phone = Device("ph", DeviceClass.SMARTPHONE)
        base = phone.slowdown()
        phone.cpu_load = 1.0
        assert phone.slowdown() == pytest.approx(3.0 * base)

    def test_offline_device_not_alive(self):
        phone = Device("ph")
        phone.online = False
        assert not phone.alive
