"""Tests for fault schedules and their deterministic environment replay."""

from __future__ import annotations

import pytest

from repro.errors import EnvironmentError_
from repro.observability import Observability
from repro.qos.properties import STANDARD_PROPERTIES
from repro.qos.values import QoSVector
from repro.services.generator import ServiceGenerator
from repro.env.device import DeviceClass
from repro.env.environment import EnvironmentConfig, PervasiveEnvironment
from repro.resilience import FaultEvent, FaultKind, FaultSchedule

PROPS = {
    name: STANDARD_PROPERTIES[name]
    for name in ("response_time", "cost", "availability")
}


@pytest.fixture
def generator():
    return ServiceGenerator(PROPS, seed=3)


def quiet_environment(seed=3, faults=None, observability=None):
    """No churn, no QoS noise — fault effects stand out exactly."""
    return PervasiveEnvironment(
        EnvironmentConfig(qos_noise=0.0), seed=seed, faults=faults,
        observability=observability,
    )


def fully_available(generator, environment, device_class=DeviceClass.SERVER):
    service = environment.host_on_new_device(
        generator.service("task:X"), device_class
    )
    service = service.with_qos(
        QoSVector({"response_time": 100.0, "cost": 1.0,
                   "availability": 1.0}, PROPS)
    )
    environment.registry.publish(service)
    return service


class TestFaultEvent:
    def test_window_kinds_need_duration(self):
        with pytest.raises(EnvironmentError_):
            FaultEvent(1.0, FaultKind.PARTITION, "dev-1")

    def test_validation(self):
        with pytest.raises(EnvironmentError_):
            FaultEvent(-1.0, FaultKind.KILL_SERVICE, "svc")
        with pytest.raises(EnvironmentError_):
            FaultEvent(0.0, FaultKind.KILL_SERVICE, "")
        with pytest.raises(EnvironmentError_):
            FaultEvent(0.0, FaultKind.LATENCY_SPIKE, "d", duration=1.0,
                       factor=0.5)

    def test_active_window(self):
        event = FaultEvent(2.0, FaultKind.PARTITION, "dev-1", duration=3.0)
        assert not event.active(1.9)
        assert event.active(2.0)
        assert event.active(4.9)
        assert not event.active(5.0)

    def test_dict_round_trip(self):
        event = FaultEvent(1.5, FaultKind.FLAKY_WINDOW, "svc-1",
                           duration=4.0, fail_probability=0.7)
        assert FaultEvent.from_dict(event.to_dict()) == event

    def test_unknown_fields_rejected(self):
        with pytest.raises(EnvironmentError_):
            FaultEvent.from_dict(
                {"at": 0.0, "kind": "kill_service", "target": "s",
                 "typo": True}
            )


class TestFaultSchedule:
    def test_events_sorted_by_time(self):
        schedule = FaultSchedule([
            FaultEvent(5.0, FaultKind.KILL_SERVICE, "b"),
            FaultEvent(1.0, FaultKind.KILL_SERVICE, "a"),
        ])
        assert [e.at for e in schedule] == [1.0, 5.0]

    def test_merge_and_shift(self):
        one = FaultSchedule([FaultEvent(1.0, FaultKind.KILL_SERVICE, "a")])
        two = FaultSchedule([FaultEvent(0.5, FaultKind.KILL_DEVICE, "d")])
        merged = one.merge(two)
        assert [e.target for e in merged] == ["d", "a"]
        shifted = merged.shifted(10.0)
        assert [e.at for e in shifted] == [10.5, 11.0]

    def test_json_round_trip(self, tmp_path):
        schedule = FaultSchedule([
            FaultEvent(1.0, FaultKind.KILL_SERVICE, "svc-1"),
            FaultEvent(2.0, FaultKind.LATENCY_SPIKE, "dev-1",
                       duration=3.0, factor=4.0),
            FaultEvent(3.0, FaultKind.DEGRADE_LINK, "dev-2", fraction=0.8),
        ])
        path = tmp_path / "faults.json"
        schedule.dump(path)
        loaded = FaultSchedule.load(path)
        assert loaded.events == schedule.events

    def test_kill_fraction_is_seeded_and_bounded(self):
        ids = [f"svc-{i}" for i in range(10)]
        one = FaultSchedule.kill_fraction(ids, 0.3, (0.0, 5.0), seed=4)
        two = FaultSchedule.kill_fraction(ids, 0.3, (0.0, 5.0), seed=4)
        assert [e.to_dict() for e in one] == [e.to_dict() for e in two]
        assert len(one) == 3
        assert all(0.0 <= e.at <= 5.0 for e in one)
        assert all(e.kind is FaultKind.KILL_SERVICE for e in one)

    def test_kill_fraction_rounds_up(self):
        assert len(FaultSchedule.kill_fraction(["a", "b"], 0.1, (0, 1))) == 1


class TestScheduleComposition:
    """Round-trips and overlap semantics for the schedule combinators."""

    def test_merge_preserves_every_event_and_round_trips(self):
        one = FaultSchedule([
            FaultEvent(1.0, FaultKind.KILL_SERVICE, "a"),
            FaultEvent(3.0, FaultKind.PARTITION, "dev", duration=2.0),
        ])
        two = FaultSchedule([
            FaultEvent(2.0, FaultKind.WORKER_CRASH, "any"),
        ])
        merged = one.merge(two)
        assert len(merged) == 3
        assert FaultSchedule.from_json(merged.to_json()).events == \
            merged.events

    def test_merge_keeps_same_timestamp_events(self):
        same = [
            FaultEvent(1.0, FaultKind.KILL_SERVICE, "a"),
            FaultEvent(1.0, FaultKind.KILL_SERVICE, "b"),
        ]
        merged = FaultSchedule([same[0]]).merge(FaultSchedule([same[1]]))
        assert sorted(e.target for e in merged) == ["a", "b"]

    def test_shifted_round_trips_through_json(self):
        schedule = FaultSchedule([
            FaultEvent(0.5, FaultKind.WORKER_STALL, "any", duration=1.0),
            FaultEvent(1.0, FaultKind.KILL_DEVICE, "dev-1"),
        ]).shifted(2.5)
        assert [e.at for e in schedule] == [3.0, 3.5]
        assert FaultSchedule.from_json(schedule.to_json()).events == \
            schedule.events

    def test_targeting_filters_by_kind(self):
        schedule = FaultSchedule([
            FaultEvent(1.0, FaultKind.KILL_SERVICE, "a"),
            FaultEvent(2.0, FaultKind.WORKER_CRASH, "any"),
            FaultEvent(3.0, FaultKind.KILL_SERVICE, "b"),
        ])
        killed = schedule.targeting(FaultKind.KILL_SERVICE)
        assert [e.target for e in killed] == ["a", "b"]
        assert schedule.targeting(FaultKind.COMMIT_DELAY) == []

    def test_overlapping_windows_are_both_active(self):
        first = FaultEvent(1.0, FaultKind.PARTITION, "dev-1", duration=4.0)
        second = FaultEvent(3.0, FaultKind.PARTITION, "dev-1", duration=4.0)
        # inside the overlap both apply; outside exactly one does
        assert first.active(3.5) and second.active(3.5)
        assert first.active(2.0) and not second.active(2.0)
        assert not first.active(6.0) and second.active(6.0)

    def test_overlapping_partitions_block_for_combined_window(self, generator):
        environment = quiet_environment()
        service = fully_available(generator, environment)
        device = service.host_device
        environment.schedule_faults(FaultSchedule([
            FaultEvent(1.0, FaultKind.PARTITION, device, duration=2.0),
            FaultEvent(2.0, FaultKind.PARTITION, device, duration=2.0),
        ]))
        assert environment.invoke(service, 0.5) is not None
        assert environment.invoke(service, 1.5) is None   # first window
        assert environment.invoke(service, 2.5) is None   # overlap
        assert environment.invoke(service, 3.5) is None   # second window
        assert environment.invoke(service, 4.5) is not None


class TestRuntimeFaultKinds:
    """The platform-layer kinds added for the runtime's fault domains."""

    def test_delay_kinds_need_positive_duration(self):
        with pytest.raises(EnvironmentError_):
            FaultEvent(1.0, FaultKind.WORKER_STALL, "any")
        with pytest.raises(EnvironmentError_):
            FaultEvent(1.0, FaultKind.COMMIT_DELAY, "runtime")
        # crash and snapshot failure are instantaneous: no duration needed
        FaultEvent(1.0, FaultKind.WORKER_CRASH, "any")
        FaultEvent(1.0, FaultKind.SNAPSHOT_FAILURE, "runtime")

    @pytest.mark.parametrize("event", [
        FaultEvent(1.0, FaultKind.WORKER_CRASH, "worker-3"),
        FaultEvent(2.0, FaultKind.WORKER_STALL, "any", duration=0.5),
        FaultEvent(3.0, FaultKind.SNAPSHOT_FAILURE, "runtime"),
        FaultEvent(4.0, FaultKind.COMMIT_DELAY, "runtime", duration=0.1),
    ], ids=lambda e: e.kind.value)
    def test_runtime_event_dict_round_trip(self, event):
        assert FaultEvent.from_dict(event.to_dict()) == event

    def test_runtime_environment_split(self):
        schedule = FaultSchedule([
            FaultEvent(1.0, FaultKind.KILL_SERVICE, "svc"),
            FaultEvent(2.0, FaultKind.WORKER_CRASH, "any"),
            FaultEvent(3.0, FaultKind.PARTITION, "dev", duration=1.0),
            FaultEvent(4.0, FaultKind.COMMIT_DELAY, "runtime",
                       duration=0.1),
        ])
        runtime = schedule.runtime_events()
        environment = schedule.environment_events()
        assert [e.kind for e in runtime] == [
            FaultKind.WORKER_CRASH, FaultKind.COMMIT_DELAY
        ]
        assert [e.kind for e in environment] == [
            FaultKind.KILL_SERVICE, FaultKind.PARTITION
        ]
        # a lossless partition of the original schedule
        assert runtime.merge(environment).events == schedule.events

    def test_runtime_chaos_builder_is_seeded(self):
        kwargs = dict(crashes=2, stalls=1, snapshot_failures=1,
                      commit_delays=1, stall_seconds=0.05, seed=9)
        one = FaultSchedule.runtime_chaos((0.0, 3.0), **kwargs)
        two = FaultSchedule.runtime_chaos((0.0, 3.0), **kwargs)
        assert [e.to_dict() for e in one] == [e.to_dict() for e in two]
        assert len(one) == 5
        assert all(0.0 <= e.at <= 3.0 for e in one)
        assert len(one.runtime_events()) == 5
        assert not one.environment_events()

    def test_runtime_chaos_json_round_trip(self, tmp_path):
        schedule = FaultSchedule.runtime_chaos((0.0, 2.0), crashes=1,
                                               stalls=1, seed=2)
        path = tmp_path / "chaos.json"
        schedule.dump(path)
        assert FaultSchedule.load(path).events == schedule.events

    def test_environment_skips_runtime_kinds(self, generator):
        obs = Observability()
        environment = quiet_environment(observability=obs)
        service = fully_available(generator, environment)
        environment.schedule_faults(FaultSchedule([
            FaultEvent(1.0, FaultKind.WORKER_CRASH, "any"),
            FaultEvent(1.0, FaultKind.KILL_SERVICE, service.service_id),
        ]))
        environment.step(1)
        # the service kind applied; the runtime kind was skipped, counted
        assert not environment.is_alive(service)
        assert obs.metrics.value(
            "faults_runtime_skipped_total", kind="worker_crash"
        ) == 1.0
        assert environment.pending_faults == []


class TestEnvironmentReplay:
    def test_step_applies_due_kill(self, generator):
        environment = quiet_environment()
        service = fully_available(generator, environment)
        environment.schedule_faults(FaultSchedule([
            FaultEvent(3.0, FaultKind.KILL_SERVICE, service.service_id),
        ]))
        environment.step(2)
        assert environment.is_alive(service)
        environment.step(1)  # clock reaches 3.0
        assert not environment.is_alive(service)

    def test_kill_applies_mid_execution_via_invoke_timestamp(self, generator):
        environment = quiet_environment()
        service = fully_available(generator, environment)
        environment.schedule_faults(FaultSchedule([
            FaultEvent(1.0, FaultKind.KILL_SERVICE, service.service_id),
        ]))
        # No step() in between: the invocation timestamp alone triggers
        # the replay, as it does when the engine advances the clock.
        assert environment.invoke(service, 0.5) is not None
        assert environment.invoke(service, 1.5) is None

    def test_kill_device_takes_cohosted_services_down(self, generator):
        environment = quiet_environment()
        first = fully_available(generator, environment)
        second = generator.service("task:Y")
        environment.host(second, f"dev-{first.service_id}")
        environment.schedule_faults(FaultSchedule([
            FaultEvent(1.0, FaultKind.KILL_DEVICE, f"dev-{first.service_id}"),
        ]))
        environment.step(1)
        assert not environment.is_alive(first)
        assert not environment.is_alive(second)

    def test_partition_window_blocks_then_recovers(self, generator):
        environment = quiet_environment()
        service = fully_available(generator, environment)
        device_id = service.host_device
        environment.schedule_faults(FaultSchedule([
            FaultEvent(1.0, FaultKind.PARTITION, device_id, duration=2.0),
        ]))
        assert environment.invoke(service, 0.5) is not None
        assert environment.invoke(service, 1.5) is None
        assert environment.invoke(service, 2.9) is None
        assert environment.invoke(service, 3.1) is not None

    def test_flaky_window_fails_with_probability_one(self, generator):
        environment = quiet_environment()
        service = fully_available(generator, environment)
        environment.schedule_faults(FaultSchedule([
            FaultEvent(0.0, FaultKind.FLAKY_WINDOW, service.service_id,
                       duration=5.0, fail_probability=1.0),
        ]))
        assert all(
            environment.invoke(service, 0.5 + i) is None for i in range(4)
        )
        assert environment.invoke(service, 6.0) is not None

    def test_latency_spike_multiplies_response_time(self, generator):
        # Twin environments with identical seeds: the only difference is
        # the scheduled spike, so observed response times differ by
        # exactly the spike factor.
        plain_env = quiet_environment(seed=11)
        spiky_env = quiet_environment(seed=11)

        plain = fully_available(generator, plain_env)
        spiked = fully_available(ServiceGenerator(PROPS, seed=3), spiky_env)
        spiky_env.schedule_faults(FaultSchedule([
            FaultEvent(0.0, FaultKind.LATENCY_SPIKE,
                       spiked.host_device, duration=10.0, factor=3.0),
        ]))
        baseline = plain_env.invoke(plain, 1.0)
        boosted = spiky_env.invoke(spiked, 1.0)
        assert baseline is not None and boosted is not None
        assert boosted["response_time"] == pytest.approx(
            baseline["response_time"] * 3.0
        )

    def test_degrade_link_event(self, generator):
        environment = quiet_environment()
        service = fully_available(generator, environment)
        link = environment.network.link(service.host_device)
        before = link.latency.value
        environment.schedule_faults(FaultSchedule([
            FaultEvent(1.0, FaultKind.DEGRADE_LINK, service.host_device,
                       fraction=0.9),
        ]))
        environment.step(1)
        assert link.latency.value > before

    def test_faults_injected_counter(self, generator):
        obs = Observability()
        environment = quiet_environment(observability=obs)
        service = fully_available(generator, environment)
        environment.schedule_faults(FaultSchedule([
            FaultEvent(1.0, FaultKind.KILL_SERVICE, service.service_id),
            FaultEvent(1.0, FaultKind.PARTITION, "dev-x", duration=1.0),
        ]))
        environment.step(1)
        assert obs.metrics.value(
            "faults_injected_total", kind="kill_service"
        ) == 1.0
        assert obs.metrics.value(
            "faults_injected_total", kind="partition"
        ) == 1.0

    def test_schedule_via_constructor_and_pending_introspection(self, generator):
        schedule = FaultSchedule([
            FaultEvent(5.0, FaultKind.KILL_SERVICE, "svc-9"),
        ])
        environment = quiet_environment(faults=schedule)
        assert len(environment.pending_faults) == 1
        environment.step(5)
        assert environment.pending_faults == []
