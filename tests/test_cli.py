"""Tests for the command-line interface."""

from __future__ import annotations

import io

import pytest

from repro.cli import EXPERIMENTS, SCENARIOS, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenario", "mars-colony"])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig-z99"])

    def test_all_scenarios_registered(self):
        assert set(SCENARIOS) == {"shopping", "hospital", "holiday-camp"}

    def test_every_paper_figure_has_an_experiment(self):
        for name in ("fig-vi5a", "fig-vi5b", "fig-vi6a", "fig-vi6b",
                     "fig-vi7", "fig-vi8", "fig-vi9", "fig-vi10",
                     "fig-vi11", "fig-vi12", "fig-vi13", "table-iv1",
                     "ch4-summary", "ch5-homeomorphism",
                     "adaptation-effectiveness"):
            assert name in EXPERIMENTS


class TestScenarioCommand:
    @pytest.mark.parametrize("name", ["shopping", "hospital", "holiday-camp"])
    def test_runs_end_to_end(self, name):
        out = io.StringIO()
        code = main(["scenario", name, "--services", "6"], out=out)
        text = out.getvalue()
        assert f"scenario: " in text
        assert "composition utility" in text
        assert "execution" in text
        assert code in (0, 1)  # success, or honest failure reporting

    def test_seed_option(self):
        out_a, out_b = io.StringIO(), io.StringIO()
        main(["scenario", "shopping", "--seed", "5", "--services", "6"],
             out=out_a)
        main(["scenario", "shopping", "--seed", "5", "--services", "6"],
             out=out_b)
        # Same seed -> same utility line (service ids differ by global
        # counter, utilities must match).
        line_a = [l for l in out_a.getvalue().splitlines()
                  if "composition utility" in l]
        line_b = [l for l in out_b.getvalue().splitlines()
                  if "composition utility" in l]
        assert line_a == line_b


class TestExperimentCommand:
    def test_table_iv1(self):
        out = io.StringIO()
        assert main(["experiment", "table-iv1"], out=out) == 0
        assert "multiplicative" in out.getvalue()

    def test_fig_vi13(self):
        out = io.StringIO()
        assert main(["experiment", "fig-vi13"], out=out) == 0
        assert "transform_ms" in out.getvalue()

    def test_fig_vi9(self):
        out = io.StringIO()
        assert main(["experiment", "fig-vi9"], out=out) == 0
        assert "count" in out.getvalue()


class TestRepositoryCommand:
    def test_dump_is_loadable(self):
        from repro.adaptation.repository_io import load_repository

        out = io.StringIO()
        assert main(["repository", "shopping"], out=out) == 0
        recovered = load_repository(out.getvalue())
        assert recovered.require("shopping")


class TestWindowedObservabilityFlags:
    def test_slo_parses_bound_and_floor(self):
        parser = build_parser()
        args = parser.parse_args(
            ["scenario", "shopping", "--slo", "250:0.95"]
        )
        assert args.slo.p99_ms == 250.0
        assert args.slo.availability == 0.95

    def test_slo_parses_bare_bound(self):
        parser = build_parser()
        args = parser.parse_args(["scenario", "shopping", "--slo", "250"])
        assert args.slo.p99_ms == 250.0
        assert args.slo.availability is None

    def test_slo_rejects_garbage(self):
        parser = build_parser()
        for bad in ("fast", "-1", "250:1.5", "250:soon"):
            with pytest.raises(SystemExit):
                parser.parse_args(["scenario", "shopping", "--slo", bad])

    def test_scenario_slo_prints_timeline_and_verdicts(self):
        out = io.StringIO()
        code = main(["scenario", "shopping", "--services", "6",
                     "--slo", "60000"], out=out)
        text = out.getvalue()
        assert "windowed timeline" in text
        assert "SLO on the 'execution' stage" in text
        assert "SLO PASSED" in text or "SLO VIOLATED" in text
        assert code in (0, 1)

    def test_serve_slo_uses_request_stage(self):
        out = io.StringIO()
        code = main(["scenario", "shopping", "--services", "6", "--serve",
                     "--workers", "2", "--requests", "4",
                     "--slo", "60000:0.5"], out=out)
        text = out.getvalue()
        assert "SLO on the 'request' stage" in text
        assert "availability" in text
        assert code == 0

    def test_metrics_windows_out_writes_jsonl(self, tmp_path):
        import json

        path = tmp_path / "windows.jsonl"
        out = io.StringIO()
        code = main(["scenario", "shopping", "--services", "6",
                     "--metrics-windows-out", str(path)], out=out)
        assert code in (0, 1)
        assert f"window records to {path}" in out.getvalue()
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert records, "no window records written"
        assert all(r["type"] == "window" for r in records)
        stages = {r["stage"] for r in records}
        assert "discovery" in stages and "execution" in stages

    def test_experiment_slo_evaluates_windows(self):
        out = io.StringIO()
        code = main(["experiment", "table-iv1", "--slo", "60000"], out=out)
        assert "windowed timeline" in out.getvalue()
        assert code == 0


class TestServeMode:
    def test_serve_brokers_requests_through_the_pool(self):
        out = io.StringIO()
        code = main(["scenario", "shopping", "--services", "6", "--serve",
                     "--workers", "2", "--requests", "5"], out=out)
        text = out.getvalue()
        assert "serve: 5 requests, 2 workers" in text
        assert "brokered 5 requests" in text
        assert "req/s" in text
        assert "latency: p50" in text
        assert "request coalescing:" in text
        assert "discovery batching:" in text
        assert code == 0

    def test_serve_defaults(self):
        parser = build_parser()
        args = parser.parse_args(["scenario", "shopping", "--serve"])
        assert args.workers == 4
        assert args.requests == 16
        assert args.chaos is None


class TestChaosOption:
    @staticmethod
    def chaos_file(tmp_path):
        from repro.resilience import FaultSchedule

        schedule = FaultSchedule.runtime_chaos(
            (0.0, 0.2), crashes=1, stalls=1, stall_seconds=0.01, seed=3
        )
        path = tmp_path / "chaos.json"
        schedule.dump(path)
        return path

    def test_chaos_requires_serve(self, tmp_path):
        out = io.StringIO()
        code = main(["scenario", "shopping", "--services", "6",
                     "--chaos", str(self.chaos_file(tmp_path))], out=out)
        assert code == 2
        assert "--chaos requires --serve" in out.getvalue()

    def test_chaos_serve_injects_and_verifies_invariants(self, tmp_path):
        out = io.StringIO()
        code = main(["scenario", "shopping", "--services", "6", "--serve",
                     "--workers", "2", "--requests", "6",
                     "--chaos", str(self.chaos_file(tmp_path))], out=out)
        text = out.getvalue()
        assert "chaos: 2 runtime events, 0 environment events" in text
        assert "chaos: fired" in text
        assert "worker_crash" in text
        assert "supervision:" in text
        assert "invariants: OK" in text
        assert code in (0, 1)  # a request may fail under injected faults
