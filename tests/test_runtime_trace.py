"""Cross-thread trace assembly: one causally linked span tree per request.

The tentpole guarantee of the causal-forensics layer: a request brokered
through the pooled runtime — admitted on the submitting thread, composed
on a worker, possibly crash-requeued onto a *different* worker, committed
in order — still yields exactly one span tree under one stable trace id,
and the flight recorder's event slice for that trace reads
admission → pickup → crash → requeue → commit in causal order.
"""

from __future__ import annotations

import json

from repro.execution.clock import SimulatedClock
from repro.middleware.qasom import QASOM
from repro.observability import (
    Observability,
    assemble_traces,
    read_jsonl,
    write_jsonl,
)
from repro.observability.events import (
    ADMISSION_ACCEPT,
    COMMIT,
    REQUEST_DONE,
    REQUEST_REQUEUED,
    WORKER_CRASH,
    WORKER_PICKUP,
    FlightRecorder,
)
from repro.qos.properties import STANDARD_PROPERTIES
from repro.resilience import FaultEvent, FaultKind, FaultSchedule
from repro.runtime import (
    ChaosPolicy,
    MiddlewareRuntime,
    RequestStatus,
    RuntimeConfig,
    assert_runtime_invariants,
)
from repro.semantics.ontology import Ontology
from repro.services.generator import ServiceGenerator
from repro.composition.request import UserRequest
from repro.composition.task import Task, leaf, sequence
from repro.env.environment import PervasiveEnvironment

PROPS = {
    name: STANDARD_PROPERTIES[name]
    for name in ("response_time", "cost", "availability")
}
CAPS = ("task:One", "task:Two")


def build_world(seed=3, services=6):
    ontology = Ontology("runtime-trace-tests")
    root = ontology.declare_class("task:Root")
    for capability in CAPS:
        ontology.declare_class(capability, [root])
    environment = PervasiveEnvironment(seed=seed)
    generator = ServiceGenerator(PROPS, seed=seed)
    for capability in CAPS:
        for service in generator.candidates(capability, services):
            environment.host_on_new_device(service)
    observability = Observability(clock=environment.clock)
    middleware = QASOM.for_environment(environment, PROPS,
                                       ontology=ontology,
                                       observability=observability)
    task = Task("trace", sequence(leaf("A", CAPS[0]), leaf("B", CAPS[1])))
    request = UserRequest(task=task, constraints=(),
                          weights={name: 1.0 for name in PROPS})
    return middleware, request, observability


class TestPooledTraces:
    def test_eight_worker_run_yields_one_root_per_request(self):
        middleware, request, obs = build_world()
        recorder = FlightRecorder(capacity=4096)
        config = RuntimeConfig(workers=8, queue_depth=64,
                               flight_recorder=recorder)
        with MiddlewareRuntime(middleware, config) as runtime:
            handles = [runtime.submit(request) for _ in range(24)]
            runtime.drain()
        trace_ids = [h.trace_id for h in handles]
        assert all(trace_ids), "every admitted handle carries a trace id"
        assert len(set(trace_ids)) == len(handles), "trace ids are unique"
        traces = assemble_traces(obs.tracer.all_spans())
        for handle in handles:
            assert handle.status is RequestStatus.DONE
            trace = traces[handle.trace_id]
            roots = trace.roots
            assert len(roots) == 1, (
                f"{handle.trace_id} has {len(roots)} roots"
            )
            assert roots[0].name == "runtime.request"
            # Every span in the tree carries the handle's trace id.
            assert all(
                span.trace_id == handle.trace_id for span in trace.spans
            )

    def test_trace_id_is_stable_through_requeue_after_crash(self):
        middleware, request, obs = build_world()
        clock = middleware.environment.clock
        recorder = FlightRecorder(capacity=4096)
        chaos = ChaosPolicy(
            FaultSchedule([FaultEvent(0.0, FaultKind.WORKER_CRASH, "any")]),
            clock, observability=obs,
        )
        config = RuntimeConfig(workers=8, queue_depth=64,
                               flight_recorder=recorder)
        with MiddlewareRuntime(middleware, config, chaos=chaos) as runtime:
            handles = [runtime.submit(request) for _ in range(16)]
            runtime.drain()
            assert_runtime_invariants(runtime, handles)
        (victim,) = [h for h in handles if h.crashes]
        assert victim.status is RequestStatus.DONE
        assert victim.requeues >= 1
        minted = victim.trace_id
        assert minted is not None
        # The trace id survived the requeue: the recorder's slice for the
        # victim covers both attempts under the same id, in causal order.
        kinds = [e.kind for e in recorder.for_trace(minted)]
        assert kinds[0] == ADMISSION_ACCEPT
        crash_at = kinds.index(WORKER_CRASH)
        assert WORKER_PICKUP in kinds[:crash_at]
        assert REQUEST_REQUEUED in kinds[crash_at:]
        requeued_at = kinds.index(REQUEST_REQUEUED)
        assert WORKER_PICKUP in kinds[requeued_at:]
        assert COMMIT in kinds[requeued_at:]
        assert kinds.index(COMMIT) < kinds.index(REQUEST_DONE)
        # ... and the span tree still has exactly one root.
        trace = assemble_traces(obs.tracer.all_spans())[minted]
        assert len(trace.roots) == 1
        # Unique, never-reused ids: no other handle shares the trace.
        assert sum(1 for h in handles if h.trace_id == minted) == 1

    def test_crash_produces_a_forensic_bundle_with_the_causal_slice(
        self, tmp_path
    ):
        middleware, request, obs = build_world()
        clock = middleware.environment.clock
        chaos = ChaosPolicy(
            FaultSchedule([FaultEvent(0.0, FaultKind.WORKER_CRASH, "any")]),
            clock, observability=obs,
        )
        config = RuntimeConfig(
            workers=8, queue_depth=64,
            flight_recorder=FlightRecorder(capacity=4096),
            forensics_dir=str(tmp_path),
        )
        with MiddlewareRuntime(middleware, config, chaos=chaos) as runtime:
            handles = [runtime.submit(request) for _ in range(16)]
            runtime.drain()
        (victim,) = [h for h in handles if h.crashes]
        (path,) = runtime.forensics.paths
        with open(path) as handle:
            bundle = json.load(handle)
        assert bundle["reason"] == "worker_crash"
        assert bundle["trace_id"] == victim.trace_id
        kinds = [e["kind"] for e in bundle["trace_events"]]
        # The deferred bundle covers the request's whole life:
        # admission -> pickup -> crash -> requeue -> (pickup) -> commit.
        for earlier, later in zip(
            [ADMISSION_ACCEPT, WORKER_PICKUP, WORKER_CRASH,
             REQUEST_REQUEUED, COMMIT],
            [WORKER_PICKUP, WORKER_CRASH, REQUEST_REQUEUED, COMMIT,
             REQUEST_DONE],
        ):
            assert kinds.index(earlier) < kinds.index(later), (
                f"{earlier} not before {later} in {kinds}"
            )
        # The bundle's span slice is the victim's single-rooted tree.
        roots = [s for s in bundle["spans"] if s.get("parent_id") is None]
        assert len(roots) == 1
        assert all(
            s["trace_id"] == victim.trace_id for s in bundle["spans"]
        )


class TestJsonlRoundTrip:
    def test_jsonl_round_trip_preserves_trace_linkage(self, tmp_path):
        middleware, request, obs = build_world()
        config = RuntimeConfig(workers=4, queue_depth=32)
        with MiddlewareRuntime(middleware, config) as runtime:
            handles = [runtime.submit(request) for _ in range(8)]
            runtime.drain()
        path = tmp_path / "spans.jsonl"
        write_jsonl(obs, path)
        records = [r for r in read_jsonl(path) if r["type"] == "span"]
        by_id = {r["span_id"]: r for r in records}
        for handle in handles:
            mine = [r for r in records
                    if r.get("trace_id") == handle.trace_id]
            assert mine, f"no records for {handle.trace_id}"
            roots = [r for r in mine if r.get("parent_id") is None]
            assert len(roots) == 1
            # Every non-root record links to a parent in the same trace.
            for record in mine:
                parent_id = record.get("parent_id")
                if parent_id is None:
                    continue
                parent = by_id[parent_id]
                assert parent.get("trace_id") == record["trace_id"]


class TestSerialPathTraces:
    def test_inline_submit_mints_and_adopts_a_context(self):
        middleware, request, obs = build_world()
        handle = middleware.submit(request)
        assert handle.trace_id is not None
        trace = assemble_traces(obs.tracer.all_spans())[handle.trace_id]
        assert len(trace.roots) == 1
        assert all(
            span.trace_id == handle.trace_id for span in trace.spans
        )

    def test_blocking_run_convenience_mints_a_context_too(self):
        middleware, request, obs = build_world()
        result = middleware.run(request)
        assert result.trace.trace_id is not None
        # Every span of the run shares that id (one trace, one tree).
        traces = assemble_traces(obs.tracer.all_spans())
        trace = traces[result.trace.trace_id]
        assert len(trace.roots) == 1
        assert {span.trace_id for span in trace.spans} == {
            result.trace.trace_id
        }

    def test_serial_submissions_get_distinct_trace_ids(self):
        middleware, request, _ = build_world()
        ids = {middleware.submit(request).trace_id for _ in range(3)}
        assert len(ids) == 3

    def test_untraced_middleware_mints_nothing(self):
        ontology = Ontology("untraced")
        root = ontology.declare_class("task:Root")
        for capability in CAPS:
            ontology.declare_class(capability, [root])
        environment = PervasiveEnvironment(seed=3)
        generator = ServiceGenerator(PROPS, seed=3)
        for capability in CAPS:
            for service in generator.candidates(capability, 6):
                environment.host_on_new_device(service)
        middleware = QASOM.for_environment(environment, PROPS,
                                           ontology=ontology)
        task = Task("trace",
                    sequence(leaf("A", CAPS[0]), leaf("B", CAPS[1])))
        request = UserRequest(task=task, constraints=(),
                              weights={name: 1.0 for name in PROPS})
        handle = middleware.submit(request)
        assert handle.trace_id is None
