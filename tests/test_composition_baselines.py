"""Tests for the baseline selection algorithms."""

from __future__ import annotations

import random

import pytest

from repro.errors import SelectionError
from repro.qos.properties import STANDARD_PROPERTIES
from repro.services.generator import ServiceGenerator
from repro.composition.baselines import (
    ExhaustiveSelection,
    GeneticSelection,
    GreedySelection,
    RandomSelection,
)
from repro.composition.exact import ExactSelection
from repro.composition.qassa import QASSA
from repro.composition.request import GlobalConstraint, UserRequest
from repro.composition.selection import CandidateSets, evaluate_assignment
from repro.composition.task import Task, leaf, sequence
from repro.composition.utility import Normalizer, service_utility

PROPS = {
    name: STANDARD_PROPERTIES[name]
    for name in ("response_time", "cost", "availability")
}


def build_problem(activities=3, services=6, seed=0, rt_bound=None):
    task = Task(
        "p", sequence(*[leaf(f"A{i}", f"task:C{i}") for i in range(activities)])
    )
    generator = ServiceGenerator(PROPS, seed=seed)
    candidates = CandidateSets(
        task,
        {a.name: generator.candidates(a.capability, services)
         for a in task.activities},
    )
    constraints = ()
    if rt_bound is not None:
        constraints = (GlobalConstraint.at_most("response_time", rt_bound),)
    request = UserRequest(
        task, constraints=constraints, weights={n: 1.0 for n in PROPS}
    )
    return request, candidates


class TestExhaustive:
    def test_explores_full_space(self):
        request, candidates = build_problem(activities=2, services=4)
        plan = ExhaustiveSelection(PROPS).select(request, candidates)
        assert plan.statistics.combinations_explored == 16
        assert plan.feasible

    def test_returns_true_optimum(self):
        request, candidates = build_problem(activities=2, services=5)
        optimal = ExhaustiveSelection(PROPS).select(request, candidates)
        # No other algorithm can find a feasible plan with higher utility.
        for selector in (
            GreedySelection(PROPS),
            RandomSelection(PROPS, attempts=50),
            GeneticSelection(PROPS, generations=20),
        ):
            plan = selector.select(request, candidates, best_effort=True)
            assert plan.utility <= optimal.utility + 1e-9

    def test_limit_guard(self):
        request, candidates = build_problem(activities=3, services=6)
        with pytest.raises(SelectionError):
            ExhaustiveSelection(PROPS, limit=10).select(request, candidates)

    def test_proves_infeasibility(self):
        request, candidates = build_problem(rt_bound=0.001)
        with pytest.raises(SelectionError):
            ExhaustiveSelection(PROPS).select(request, candidates)

    def test_best_effort_on_infeasible(self):
        request, candidates = build_problem(rt_bound=0.001)
        plan = ExhaustiveSelection(PROPS).select(
            request, candidates, best_effort=True
        )
        assert not plan.feasible


class TestGreedy:
    def test_picks_local_best_utilities(self):
        request, candidates = build_problem()
        plan = GreedySelection(PROPS).select(request, candidates)
        assert len(plan.selections) == 3
        assert plan.statistics.combinations_explored == 1

    def test_greedy_equals_optimal_without_constraints(self):
        """With no global constraints and additive utility over per-activity
        local normalisation... greedy is near-optimal but not provably equal;
        we assert it is feasible and well-formed instead."""
        request, candidates = build_problem()
        plan = GreedySelection(PROPS).select(request, candidates)
        assert plan.feasible

    def test_greedy_may_violate_constraints(self):
        request, candidates = build_problem(rt_bound=0.001)
        plan = GreedySelection(PROPS).select(
            request, candidates, best_effort=True
        )
        assert not plan.feasible

    def test_greedy_strict_mode_raises(self):
        request, candidates = build_problem(rt_bound=0.001)
        with pytest.raises(SelectionError):
            GreedySelection(PROPS).select(request, candidates, best_effort=False)


class TestRandom:
    def test_finds_feasible_when_unconstrained(self):
        request, candidates = build_problem()
        plan = RandomSelection(PROPS, attempts=10, seed=1).select(
            request, candidates
        )
        assert plan.feasible

    def test_gives_up_after_attempts(self):
        request, candidates = build_problem(rt_bound=0.001)
        with pytest.raises(SelectionError):
            RandomSelection(PROPS, attempts=5).select(request, candidates)

    def test_deterministic_under_seed(self):
        request, candidates = build_problem()
        a = RandomSelection(PROPS, seed=3).select(request, candidates)
        b = RandomSelection(PROPS, seed=3).select(request, candidates)
        assert a.service_ids() == b.service_ids()


class TestGenetic:
    def test_finds_feasible_composition(self):
        request, candidates = build_problem(services=8, rt_bound=4000.0)
        plan = GeneticSelection(PROPS, generations=30, seed=2).select(
            request, candidates
        )
        assert plan.feasible
        assert request.satisfied_by(plan.aggregated_qos)

    def test_beats_random_on_average(self):
        request, candidates = build_problem(services=10)
        genetic = GeneticSelection(PROPS, generations=40, seed=5).select(
            request, candidates
        )
        random_plan = RandomSelection(PROPS, attempts=1, seed=5).select(
            request, candidates, best_effort=True
        )
        assert genetic.utility >= random_plan.utility

    def test_deterministic_under_seed(self):
        request, candidates = build_problem()
        a = GeneticSelection(PROPS, seed=7).select(request, candidates)
        b = GeneticSelection(PROPS, seed=7).select(request, candidates)
        assert a.service_ids() == b.service_ids()

    def test_single_activity_task(self):
        request, candidates = build_problem(activities=1, services=5)
        plan = GeneticSelection(PROPS, generations=10).select(request, candidates)
        assert plan.feasible
        assert len(plan.selections) == 1

    def test_infeasible_raises_without_best_effort(self):
        request, candidates = build_problem(rt_bound=0.001)
        with pytest.raises(SelectionError):
            GeneticSelection(PROPS, generations=5).select(request, candidates)


ALL_SELECTORS = [
    pytest.param(lambda: ExhaustiveSelection(PROPS), id="exhaustive"),
    pytest.param(lambda: ExactSelection(PROPS), id="exact"),
    pytest.param(lambda: GreedySelection(PROPS), id="greedy"),
    pytest.param(lambda: RandomSelection(PROPS, attempts=10, seed=0),
                 id="random"),
    pytest.param(lambda: GeneticSelection(PROPS, generations=5, seed=0),
                 id="genetic"),
    pytest.param(lambda: QASSA(PROPS), id="qassa"),
]


class TestBestEffortContract:
    """Regression: ``best_effort`` semantics must be uniform.

    GreedySelection used to default ``best_effort=True`` while every other
    selector defaulted to False, so swapping selectors silently changed
    whether infeasibility raised or produced a constraint-violating plan.
    """

    @pytest.mark.parametrize("make_selector", ALL_SELECTORS)
    def test_infeasible_raises_by_default(self, make_selector):
        request, candidates = build_problem(rt_bound=0.001)
        with pytest.raises(SelectionError):
            make_selector().select(request, candidates)

    @pytest.mark.parametrize("make_selector", ALL_SELECTORS)
    def test_best_effort_returns_flagged_plan(self, make_selector):
        request, candidates = build_problem(rt_bound=0.001)
        plan = make_selector().select(request, candidates, best_effort=True)
        assert not plan.feasible
        assert not request.satisfied_by(plan.aggregated_qos)


class TestRankedAlternates:
    """Regression: alternates used to be kept in raw pool order.

    ``_BaseSelector._plan`` now ranks each activity's non-primary
    candidates by their local SAW utility so dynamic binding substitutes
    the *best* remaining service first.
    """

    def test_alternates_sorted_by_local_utility(self):
        request, candidates = build_problem(activities=3, services=8, seed=5)
        plan = ExhaustiveSelection(PROPS).select(
            request, candidates, alternates=4
        )
        relevant = {n: PROPS[n] for n in request.relevant_properties or PROPS}
        weights = request.normalised_weights(relevant)
        for name in candidates.activity_names():
            pool = candidates[name]
            ranked = plan.selections[name].services
            assert len(ranked) == 5  # primary + 4 alternates
            local_norm = Normalizer.from_vectors(
                [s.advertised_qos for s in pool], relevant
            )
            scores = [
                service_utility(s.advertised_qos, local_norm, weights)
                for s in ranked[1:]
            ]
            assert scores == sorted(scores, reverse=True)
            # The kept alternates are the top-scoring non-primary services,
            # not simply the pool prefix.
            best_others = sorted(
                (s for s in pool if s != ranked[0]),
                key=lambda s: -service_utility(
                    s.advertised_qos, local_norm, weights
                ),
            )[:4]
            assert [s.name for s in ranked[1:]] == [
                s.name for s in best_others
            ]

    def test_alternates_available_from_every_selector(self):
        request, candidates = build_problem(activities=2, services=6)
        for make_selector in (
            lambda: ExactSelection(PROPS),
            lambda: GreedySelection(PROPS),
            lambda: RandomSelection(PROPS, attempts=5, seed=1),
            lambda: GeneticSelection(PROPS, generations=5, seed=1),
        ):
            plan = make_selector().select(request, candidates, alternates=2)
            for name in candidates.activity_names():
                assert len(plan.selections[name].alternates) == 2


class TestRandomBestOfAttempts:
    """Regression: RandomSelection used to return the *first* feasible
    assignment instead of the best feasible one across all attempts."""

    def test_returns_best_feasible_across_attempts(self):
        request, candidates = build_problem(activities=3, services=8, seed=9)
        attempts, seed = 25, 4
        plan = RandomSelection(PROPS, attempts=attempts, seed=seed).select(
            request, candidates
        )
        # Replay the selector's own deterministic draw sequence and score
        # every attempt from scratch.
        relevant = {n: PROPS[n] for n in request.relevant_properties or PROPS}
        from repro.composition.selection import make_global_normalizer

        normalizer = make_global_normalizer(
            request.task, candidates, relevant,
            ExhaustiveSelection(PROPS).approach,
        )
        rng = random.Random(seed)
        names = candidates.activity_names()
        utilities = []
        for _ in range(attempts):
            assignment = {n: rng.choice(candidates[n]) for n in names}
            _, utility, feasible = evaluate_assignment(
                request.task, request, assignment, relevant, normalizer,
                ExhaustiveSelection(PROPS).approach,
            )
            if feasible:
                utilities.append(utility)
        assert utilities, "fixture must produce feasible draws"
        assert plan.utility == max(utilities)
        # The instance must actually discriminate first-feasible from
        # best-feasible, or this regression test is vacuous.
        assert utilities[0] < max(utilities)

    def test_more_attempts_never_worse(self):
        request, candidates = build_problem(activities=3, services=8, seed=9)
        utilities = [
            RandomSelection(PROPS, attempts=n, seed=4)
            .select(request, candidates).utility
            for n in (1, 5, 25)
        ]
        assert utilities == sorted(utilities)
