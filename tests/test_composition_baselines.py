"""Tests for the baseline selection algorithms."""

from __future__ import annotations

import pytest

from repro.errors import SelectionError
from repro.qos.properties import STANDARD_PROPERTIES
from repro.services.generator import ServiceGenerator
from repro.composition.baselines import (
    ExhaustiveSelection,
    GeneticSelection,
    GreedySelection,
    RandomSelection,
)
from repro.composition.request import GlobalConstraint, UserRequest
from repro.composition.selection import CandidateSets
from repro.composition.task import Task, leaf, sequence

PROPS = {
    name: STANDARD_PROPERTIES[name]
    for name in ("response_time", "cost", "availability")
}


def build_problem(activities=3, services=6, seed=0, rt_bound=None):
    task = Task(
        "p", sequence(*[leaf(f"A{i}", f"task:C{i}") for i in range(activities)])
    )
    generator = ServiceGenerator(PROPS, seed=seed)
    candidates = CandidateSets(
        task,
        {a.name: generator.candidates(a.capability, services)
         for a in task.activities},
    )
    constraints = ()
    if rt_bound is not None:
        constraints = (GlobalConstraint.at_most("response_time", rt_bound),)
    request = UserRequest(
        task, constraints=constraints, weights={n: 1.0 for n in PROPS}
    )
    return request, candidates


class TestExhaustive:
    def test_explores_full_space(self):
        request, candidates = build_problem(activities=2, services=4)
        plan = ExhaustiveSelection(PROPS).select(request, candidates)
        assert plan.statistics.combinations_explored == 16
        assert plan.feasible

    def test_returns_true_optimum(self):
        request, candidates = build_problem(activities=2, services=5)
        optimal = ExhaustiveSelection(PROPS).select(request, candidates)
        # No other algorithm can find a feasible plan with higher utility.
        for selector in (
            GreedySelection(PROPS),
            RandomSelection(PROPS, attempts=50),
            GeneticSelection(PROPS, generations=20),
        ):
            plan = selector.select(request, candidates, best_effort=True)
            assert plan.utility <= optimal.utility + 1e-9

    def test_limit_guard(self):
        request, candidates = build_problem(activities=3, services=6)
        with pytest.raises(SelectionError):
            ExhaustiveSelection(PROPS, limit=10).select(request, candidates)

    def test_proves_infeasibility(self):
        request, candidates = build_problem(rt_bound=0.001)
        with pytest.raises(SelectionError):
            ExhaustiveSelection(PROPS).select(request, candidates)

    def test_best_effort_on_infeasible(self):
        request, candidates = build_problem(rt_bound=0.001)
        plan = ExhaustiveSelection(PROPS).select(
            request, candidates, best_effort=True
        )
        assert not plan.feasible


class TestGreedy:
    def test_picks_local_best_utilities(self):
        request, candidates = build_problem()
        plan = GreedySelection(PROPS).select(request, candidates)
        assert len(plan.selections) == 3
        assert plan.statistics.combinations_explored == 1

    def test_greedy_equals_optimal_without_constraints(self):
        """With no global constraints and additive utility over per-activity
        local normalisation... greedy is near-optimal but not provably equal;
        we assert it is feasible and well-formed instead."""
        request, candidates = build_problem()
        plan = GreedySelection(PROPS).select(request, candidates)
        assert plan.feasible

    def test_greedy_may_violate_constraints(self):
        request, candidates = build_problem(rt_bound=0.001)
        plan = GreedySelection(PROPS).select(request, candidates)
        assert not plan.feasible  # best_effort default is True

    def test_greedy_strict_mode_raises(self):
        request, candidates = build_problem(rt_bound=0.001)
        with pytest.raises(SelectionError):
            GreedySelection(PROPS).select(request, candidates, best_effort=False)


class TestRandom:
    def test_finds_feasible_when_unconstrained(self):
        request, candidates = build_problem()
        plan = RandomSelection(PROPS, attempts=10, seed=1).select(
            request, candidates
        )
        assert plan.feasible

    def test_gives_up_after_attempts(self):
        request, candidates = build_problem(rt_bound=0.001)
        with pytest.raises(SelectionError):
            RandomSelection(PROPS, attempts=5).select(request, candidates)

    def test_deterministic_under_seed(self):
        request, candidates = build_problem()
        a = RandomSelection(PROPS, seed=3).select(request, candidates)
        b = RandomSelection(PROPS, seed=3).select(request, candidates)
        assert a.service_ids() == b.service_ids()


class TestGenetic:
    def test_finds_feasible_composition(self):
        request, candidates = build_problem(services=8, rt_bound=4000.0)
        plan = GeneticSelection(PROPS, generations=30, seed=2).select(
            request, candidates
        )
        assert plan.feasible
        assert request.satisfied_by(plan.aggregated_qos)

    def test_beats_random_on_average(self):
        request, candidates = build_problem(services=10)
        genetic = GeneticSelection(PROPS, generations=40, seed=5).select(
            request, candidates
        )
        random_plan = RandomSelection(PROPS, attempts=1, seed=5).select(
            request, candidates, best_effort=True
        )
        assert genetic.utility >= random_plan.utility

    def test_deterministic_under_seed(self):
        request, candidates = build_problem()
        a = GeneticSelection(PROPS, seed=7).select(request, candidates)
        b = GeneticSelection(PROPS, seed=7).select(request, candidates)
        assert a.service_ids() == b.service_ids()

    def test_single_activity_task(self):
        request, candidates = build_problem(activities=1, services=5)
        plan = GeneticSelection(PROPS, generations=10).select(request, candidates)
        assert plan.feasible
        assert len(plan.selections) == 1

    def test_infeasible_raises_without_best_effort(self):
        request, candidates = build_problem(rt_bound=0.001)
        with pytest.raises(SelectionError):
            GeneticSelection(PROPS, generations=5).select(request, candidates)
