"""Tests for ontology text serialisation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import OntologyError
from repro.semantics.ontology import Ontology
from repro.semantics.serialization import (
    dump_ontology,
    load_ontology,
    read_ontology,
    save_ontology,
)
from repro.qos.model import build_end_to_end_model


@pytest.fixture
def small():
    onto = Ontology("small")
    onto.declare_class("a:Root", label="The root concept")
    onto.declare_class("a:Child", ["a:Root"], comment='Has "quotes" inside')
    onto.declare_property("a:rel", domain="a:Child", range_="a:Root")
    onto.declare_individual("a:bob", "a:Child")
    return onto


class TestRoundTrip:
    def test_triples_preserved(self, small):
        recovered = load_ontology(dump_ontology(small))
        assert len(recovered.store) == len(small.store)
        for triple in small.store.triples():
            assert tuple(triple) in recovered.store

    def test_name_preserved(self, small):
        recovered = load_ontology(dump_ontology(small))
        assert recovered.name == "small"

    def test_reasoning_survives(self, small):
        recovered = load_ontology(dump_ontology(small))
        assert recovered.subsumes("a:Root", "a:Child")
        assert "a:Child" in recovered.types_of("a:bob")

    def test_literals_with_quotes_round_trip(self, small):
        recovered = load_ontology(dump_ontology(small))
        assert recovered.comment("a:Child") == 'Has "quotes" inside'

    def test_dump_is_stable(self, small):
        assert dump_ontology(small) == dump_ontology(
            load_ontology(dump_ontology(small))
        )

    def test_file_round_trip(self, small, tmp_path):
        path = save_ontology(small, tmp_path / "onto.triples")
        recovered = read_ontology(path)
        assert recovered.subsumes("a:Root", "a:Child")

    def test_full_qos_model_round_trips(self):
        model = build_end_to_end_model()
        recovered = load_ontology(dump_ontology(model.ontology))
        assert len(recovered.store) == len(model.ontology.store)
        # Spot-check deep inference through equivalences.
        assert recovered.subsumes("uqos:Speed", "sqos:ExecutionTime")
        assert recovered.subsumes("qos:QoSProperty", "iqos:Bandwidth")


class TestMalformedDocuments:
    @pytest.mark.parametrize(
        "document",
        [
            "a:X a:p a:Y",                 # missing terminal dot
            "a:X a:p .",                   # two terms
            "a:X a:p a:Y a:Z .",           # four terms
            'a:X a:p "unterminated .',     # broken literal
        ],
    )
    def test_rejected(self, document):
        with pytest.raises(OntologyError):
            load_ontology(document)

    def test_comments_and_blank_lines_ignored(self):
        document = "\n# hello\n\na:X rdf:type owl:Class .\n"
        recovered = load_ontology(document)
        assert recovered.is_class("a:X")


_terms = st.text(
    alphabet=st.characters(blacklist_categories=("Cs", "Cc")),
    min_size=1,
    max_size=12,
).filter(lambda s: not s.startswith("#"))


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(_terms, _terms, _terms), max_size=15))
def test_arbitrary_triples_round_trip(triples):
    onto = Ontology("fuzz")
    for s, p, o in triples:
        onto.store.add(s, p, o)
    recovered = load_ontology(dump_ontology(onto))
    assert {tuple(t) for t in recovered.store.triples()} == {
        tuple(t) for t in onto.store.triples()
    }
