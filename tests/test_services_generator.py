"""Tests for the synthetic service generator."""

from __future__ import annotations

import statistics

import pytest

from repro.qos.properties import STANDARD_PROPERTIES
from repro.services.generator import (
    NormalLaw,
    QoSDistribution,
    ServiceGenerator,
)

PROPS = {
    name: STANDARD_PROPERTIES[name]
    for name in ("response_time", "cost", "availability")
}


class TestDeterminism:
    def test_same_seed_same_population(self):
        a = ServiceGenerator(PROPS, seed=9).candidates("task:X", 5)
        b = ServiceGenerator(PROPS, seed=9).candidates("task:X", 5)
        assert [s.advertised_qos for s in a] == [s.advertised_qos for s in b]
        assert [s.name for s in a] == [s.name for s in b]

    def test_different_seed_different_population(self):
        a = ServiceGenerator(PROPS, seed=1).candidates("task:X", 5)
        b = ServiceGenerator(PROPS, seed=2).candidates("task:X", 5)
        assert [s.advertised_qos for s in a] != [s.advertised_qos for s in b]


class TestUniformLaw:
    def test_values_within_property_range(self):
        generator = ServiceGenerator(PROPS, seed=3)
        for _ in range(100):
            vector = generator.draw_vector()
            for name, prop in PROPS.items():
                lo, hi = prop.value_range
                assert lo <= vector[name] <= hi

    def test_uniform_spread_covers_range(self):
        generator = ServiceGenerator(PROPS, seed=4)
        values = generator.sample_values("response_time", 500)
        lo, hi = PROPS["response_time"].value_range
        span = hi - lo
        assert min(values) < lo + 0.15 * span
        assert max(values) > hi - 0.15 * span


class TestNormalLaw:
    def test_default_law_is_midrange(self):
        generator = ServiceGenerator(
            PROPS, distribution=QoSDistribution.NORMAL, seed=5
        )
        law = generator.law("cost")
        lo, hi = PROPS["cost"].value_range
        assert law.mean == pytest.approx((lo + hi) / 2)
        assert law.stddev == pytest.approx((hi - lo) / 6)

    def test_sample_moments_match_law(self):
        generator = ServiceGenerator(
            PROPS, distribution=QoSDistribution.NORMAL, seed=6
        )
        values = generator.sample_values("response_time", 4000)
        law = generator.law("response_time")
        assert statistics.mean(values) == pytest.approx(law.mean, rel=0.05)
        assert statistics.stdev(values) == pytest.approx(law.stddev, rel=0.12)

    def test_values_clipped_to_range(self):
        laws = {"availability": NormalLaw(mean=0.99, stddev=0.2)}
        generator = ServiceGenerator(
            PROPS, distribution=QoSDistribution.NORMAL,
            normal_laws=laws, seed=7,
        )
        values = generator.sample_values("availability", 500)
        assert all(0.5 <= v <= 1.0 for v in values)

    def test_custom_law_used(self):
        laws = {"cost": NormalLaw(mean=10.0, stddev=1.0)}
        generator = ServiceGenerator(
            PROPS, distribution=QoSDistribution.NORMAL,
            normal_laws=laws, seed=8,
        )
        values = generator.sample_values("cost", 1000)
        assert statistics.mean(values) == pytest.approx(10.0, abs=0.3)


class TestPopulations:
    def test_candidates_share_capability(self):
        generator = ServiceGenerator(PROPS, seed=9)
        services = generator.candidates("task:Pay", 7)
        assert len(services) == 7
        assert all(s.capability == "task:Pay" for s in services)
        assert len({s.service_id for s in services}) == 7

    def test_population_shape(self):
        generator = ServiceGenerator(PROPS, seed=10)
        population = generator.population(["task:A", "task:B"], 4)
        assert set(population) == {"task:A", "task:B"}
        assert all(len(v) == 4 for v in population.values())

    def test_service_advertises_all_properties(self):
        generator = ServiceGenerator(PROPS, seed=11)
        service = generator.service("task:X")
        assert set(service.advertised_qos) == set(PROPS)


class TestTradeoffPopulations:
    def test_invalid_tradeoff_rejected(self):
        with pytest.raises(ValueError):
            ServiceGenerator(PROPS, tradeoff=1.5)

    def test_full_tradeoff_couples_speed_and_cost(self):
        generator = ServiceGenerator(PROPS, seed=20, tradeoff=1.0)
        vectors = [generator.draw_vector() for _ in range(200)]
        # Pearson-ish check: faster services cost more.
        rts = [v["response_time"] for v in vectors]
        costs = [v["cost"] for v in vectors]
        mean_rt = sum(rts) / len(rts)
        mean_cost = sum(costs) / len(costs)
        covariance = sum(
            (rt - mean_rt) * (c - mean_cost) for rt, c in zip(rts, costs)
        )
        assert covariance < 0  # low response time <-> high cost

    def test_full_tradeoff_populations_are_pareto_incomparable(self):
        generator = ServiceGenerator(PROPS, seed=21, tradeoff=1.0)
        vectors = [generator.draw_vector() for _ in range(30)]
        dominated = sum(
            1
            for i, v in enumerate(vectors)
            if any(j != i and vectors[j].dominates(v)
                   for j in range(len(vectors)))
        )
        # With a pure quality/price tradeoff nothing should dominate.
        assert dominated == 0

    def test_zero_tradeoff_matches_plain_draws(self):
        plain = ServiceGenerator(PROPS, seed=22)
        coupled = ServiceGenerator(PROPS, seed=22, tradeoff=0.0)
        assert plain.draw_vector() == coupled.draw_vector()

    def test_partial_tradeoff_values_stay_in_range(self):
        generator = ServiceGenerator(PROPS, seed=23, tradeoff=0.5)
        for _ in range(100):
            vector = generator.draw_vector()
            for name, prop in PROPS.items():
                lo, hi = prop.value_range
                assert lo <= vector[name] <= hi
