"""Tests for behavioural graphs and the task → graph transformation."""

from __future__ import annotations

import pytest

from repro.errors import BehaviouralAdaptationError
from repro.adaptation.behaviour_graph import (
    BehaviouralGraph,
    Vertex,
    task_to_graph,
)
from repro.composition.task import (
    Task,
    conditional,
    leaf,
    loop,
    parallel,
    sequence,
)


def by_activity(graph):
    return {v.activity_name: v for v in graph.vertices()}


class TestGraphBasics:
    def test_add_vertex_and_edge(self):
        g = BehaviouralGraph("g")
        g.add_vertex(Vertex("v1", "task:A"))
        g.add_vertex(Vertex("v2", "task:B"))
        g.add_edge("v1", "v2")
        assert g.vertex_count() == 2
        assert g.edge_count() == 1
        assert g.successors("v1") == {"v2"}
        assert g.predecessors("v2") == {"v1"}
        assert g.has_edge("v1", "v2")

    def test_duplicate_vertex_rejected(self):
        g = BehaviouralGraph()
        g.add_vertex(Vertex("v1", "task:A"))
        with pytest.raises(BehaviouralAdaptationError):
            g.add_vertex(Vertex("v1", "task:B"))

    def test_edge_to_unknown_vertex_rejected(self):
        g = BehaviouralGraph()
        g.add_vertex(Vertex("v1", "task:A"))
        with pytest.raises(BehaviouralAdaptationError):
            g.add_edge("v1", "ghost")

    def test_sources_and_sinks(self):
        g = BehaviouralGraph()
        for vid in ("a", "b", "c"):
            g.add_vertex(Vertex(vid, f"task:{vid}"))
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        assert g.sources() == ["a"]
        assert g.sinks() == ["c"]

    def test_topological_order(self):
        g = BehaviouralGraph()
        for vid in ("a", "b", "c", "d"):
            g.add_vertex(Vertex(vid, f"task:{vid}"))
        g.add_edge("a", "b")
        g.add_edge("a", "c")
        g.add_edge("b", "d")
        g.add_edge("c", "d")
        order = g.topological_order()
        assert order.index("a") < order.index("b") < order.index("d")
        assert order.index("a") < order.index("c") < order.index("d")

    def test_cycle_detected(self):
        g = BehaviouralGraph()
        g.add_vertex(Vertex("a", "task:A"))
        g.add_vertex(Vertex("b", "task:B"))
        g.add_edge("a", "b")
        g.add_edge("b", "a")
        with pytest.raises(BehaviouralAdaptationError):
            g.topological_order()

    def test_find_path_avoids_forbidden(self):
        g = BehaviouralGraph()
        for vid in ("a", "b", "c", "d"):
            g.add_vertex(Vertex(vid, f"task:{vid}"))
        g.add_edge("a", "b")
        g.add_edge("b", "d")
        g.add_edge("a", "c")
        g.add_edge("c", "d")
        path = g.find_path("a", "d", forbidden={"b"})
        assert path == ["a", "c", "d"]
        assert g.find_path("a", "d", forbidden={"b", "c"}) is None

    def test_find_path_trivial(self):
        g = BehaviouralGraph()
        g.add_vertex(Vertex("a", "task:A"))
        assert g.find_path("a", "a", set()) == ["a"]


class TestTransformation:
    def test_sequence_becomes_chain(self):
        task = Task("t", sequence(leaf("A"), leaf("B"), leaf("C")))
        graph = task_to_graph(task)
        assert graph.vertex_count() == 3
        assert graph.edge_count() == 2
        vertices = by_activity(graph)
        assert graph.has_edge(vertices["A"].vertex_id, vertices["B"].vertex_id)
        assert graph.has_edge(vertices["B"].vertex_id, vertices["C"].vertex_id)

    def test_parallel_becomes_branches(self):
        task = Task(
            "t", sequence(leaf("A"), parallel(leaf("B"), leaf("C")), leaf("D"))
        )
        graph = task_to_graph(task)
        vertices = by_activity(graph)
        # A fans out to both branches, both branches join into D.
        assert graph.successors(vertices["A"].vertex_id) == {
            vertices["B"].vertex_id, vertices["C"].vertex_id,
        }
        assert graph.predecessors(vertices["D"].vertex_id) == {
            vertices["B"].vertex_id, vertices["C"].vertex_id,
        }

    def test_conditional_edges_marked_xor(self):
        task = Task(
            "t", sequence(leaf("A"), conditional(leaf("B"), leaf("C"))),
        )
        graph = task_to_graph(task)
        vertices = by_activity(graph)
        xor_targets = {
            e.target for e in graph.edges() if e.xor
        }
        assert xor_targets == {vertices["B"].vertex_id, vertices["C"].vertex_id}

    def test_loop_simplified_to_single_occurrence(self):
        task = Task("t", sequence(leaf("A"), loop(leaf("B"), 5)))
        graph = task_to_graph(task)
        assert graph.vertex_count() == 2  # loop body appears once
        vertices = by_activity(graph)
        assert vertices["B"].in_loop
        assert not vertices["A"].in_loop
        graph.topological_order()  # acyclic after simplification

    def test_vertex_carries_label_and_data(self):
        task = Task(
            "t",
            sequence(
                leaf("A", "task:Browse",
                     inputs=frozenset({"data:Q"}),
                     outputs=frozenset({"data:R"})),
                leaf("B"),
            ),
        )
        graph = task_to_graph(task)
        vertex = by_activity(graph)["A"]
        assert vertex.label == "task:Browse"
        assert vertex.inputs == frozenset({"data:Q"})
        assert vertex.outputs == frozenset({"data:R"})

    def test_nested_patterns(self):
        task = Task(
            "t",
            sequence(
                leaf("A"),
                parallel(sequence(leaf("B"), leaf("C")), leaf("D")),
                leaf("E"),
            ),
        )
        graph = task_to_graph(task)
        vertices = by_activity(graph)
        assert graph.has_edge(vertices["B"].vertex_id, vertices["C"].vertex_id)
        assert graph.has_edge(vertices["C"].vertex_id, vertices["E"].vertex_id)
        assert graph.has_edge(vertices["D"].vertex_id, vertices["E"].vertex_id)
        assert graph.vertex_count() == 5
        assert set(graph.labels()) == {f"task:{n}" for n in "ABCDE"}

    def test_transformation_is_linear_in_activities(self):
        from repro.experiments.workloads import make_task

        small = task_to_graph(make_task(20, mixed_patterns=True))
        large = task_to_graph(make_task(100, mixed_patterns=True))
        assert small.vertex_count() == 20
        assert large.vertex_count() == 100
