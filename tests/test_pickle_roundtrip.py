"""Pickle round-trips for everything the process backend transports.

The process execution backend ships :class:`RegistrySnapshot`,
:class:`UserRequest` and exceptions to worker processes and receives
:class:`CompositionPlan` replies — all over :mod:`pickle`.  These tests
pin the round-trip for each transported type, plus the regression for the
exception double-wrap bug: default exception pickling replays ``args``
(the *formatted message*) through ``__init__``, so
``NoCandidateError('Pay')`` used to come back reading ``no service
candidate for activity "no service candidate for activity 'Pay'"``.
"""

from __future__ import annotations

import pickle

import pytest

from repro.errors import NoCandidateError, UnknownConceptError
from repro.observability.context import TraceContext

from tests.test_runtime_determinism import CAPS, build_world


def roundtrip(obj):
    return pickle.loads(pickle.dumps(obj))


class TestRegistrySnapshotRoundTrip:
    def test_snapshot_pickles_with_full_read_surface(self):
        middleware, _, _ = build_world(seed=101)
        snapshot = middleware.environment.registry.snapshot()
        copy = roundtrip(snapshot)
        assert copy.generation == snapshot.generation
        assert len(copy) == len(snapshot)
        assert copy.capabilities() == snapshot.capabilities()
        for capability in CAPS:
            original = snapshot.by_capability(capability)
            restored = copy.by_capability(capability)
            assert [s.service_id for s in restored] == [
                s.service_id for s in original
            ]
            assert [s.name for s in restored] == [s.name for s in original]

    def test_snapshot_copy_is_independent(self):
        middleware, _, _ = build_world(seed=103)
        snapshot = middleware.environment.registry.snapshot()
        copy = roundtrip(snapshot)
        service = next(iter(snapshot))
        assert copy.get(service.service_id) is not service
        assert dict(copy.get(service.service_id).advertised_qos.items()) == (
            dict(service.advertised_qos.items())
        )


class TestRequestAndPlanRoundTrip:
    def test_user_request_roundtrips(self):
        _, requests, _ = build_world(seed=107, profiles=1, repeats=1)
        request = requests[0]
        copy = roundtrip(request)
        assert copy.weights == request.weights
        assert copy.constraints == request.constraints
        assert copy.task.name == request.task.name
        assert [a.name for a in copy.task.activities] == [
            a.name for a in request.task.activities
        ]

    def test_composition_plan_roundtrips(self):
        middleware, requests, _ = build_world(seed=109, profiles=1,
                                              repeats=1)
        plan = middleware.submit(requests[0], execute=False).plan()
        copy = roundtrip(plan)
        assert copy.service_ids() == plan.service_ids()
        assert copy.utility == plan.utility
        assert copy.feasible == plan.feasible
        assert copy.approach == plan.approach
        for name in plan.aggregated_qos:
            assert copy.aggregated_qos[name] == plan.aggregated_qos[name]
        assert copy.statistics.utility_evaluations == (
            plan.statistics.utility_evaluations
        )

    def test_trace_context_roundtrips(self):
        context = TraceContext.mint().child("span-7")
        copy = roundtrip(context)
        assert copy == context
        assert copy.trace_id == context.trace_id
        assert copy.parent_span_id == "span-7"


class TestExceptionRoundTrip:
    """The double-wrap regression: messages survive pickling unchanged."""

    @pytest.mark.parametrize("exc", [
        NoCandidateError("Pay"),
        UnknownConceptError("task:Missing"),
    ], ids=lambda e: type(e).__name__)
    def test_message_survives_roundtrip(self, exc):
        copy = roundtrip(exc)
        assert type(copy) is type(exc)
        assert str(copy) == str(exc)

    def test_no_candidate_error_keeps_its_activity(self):
        copy = roundtrip(NoCandidateError("Pay"))
        assert copy.activity == "Pay"
        assert str(copy) == "no service candidate for activity 'Pay'"

    def test_unknown_concept_error_keeps_its_uri(self):
        copy = roundtrip(UnknownConceptError("task:Missing"))
        assert copy.uri == "task:Missing"
        assert str(copy) == "unknown concept: 'task:Missing'"

    def test_double_roundtrip_is_stable(self):
        exc = NoCandidateError("Pay")
        assert str(roundtrip(roundtrip(exc))) == str(exc)
