"""Tests for QoS aggregation over patterns — Table IV.1 verified numerically."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AggregationError
from repro.qos import units as u
from repro.qos.properties import (
    AVAILABILITY,
    COST,
    ENERGY,
    REPUTATION,
    RESPONSE_TIME,
    SECURITY_LEVEL,
    THROUGHPUT,
    AggregationKind,
    Direction,
    QoSProperty,
)
from repro.qos.values import QoSVector
from repro.composition.aggregation import (
    AggregationApproach,
    _conditional,
    aggregate_composition,
    aggregate_values,
    aggregation_bounds,
)
from repro.composition.task import (
    Task,
    conditional,
    leaf,
    loop,
    parallel,
    sequence,
)

SEQ3 = sequence(leaf("A"), leaf("B"), leaf("C"))
PAR2 = parallel(leaf("A"), leaf("B"))
VALUES = {"A": 10.0, "B": 20.0, "C": 30.0}


class TestSequence:
    def test_additive_sums(self):
        assert aggregate_values(RESPONSE_TIME, SEQ3, VALUES) == 60.0

    def test_multiplicative_multiplies(self):
        values = {"A": 0.9, "B": 0.8, "C": 0.5}
        assert aggregate_values(AVAILABILITY, SEQ3, values) == pytest.approx(0.36)

    def test_min_takes_bottleneck(self):
        assert aggregate_values(THROUGHPUT, SEQ3, VALUES) == 10.0

    def test_average(self):
        assert aggregate_values(REPUTATION, SEQ3, VALUES) == pytest.approx(20.0)

    def test_security_min(self):
        assert aggregate_values(SECURITY_LEVEL, SEQ3, VALUES) == 10.0


class TestParallel:
    def test_time_takes_slowest_branch(self):
        assert aggregate_values(RESPONSE_TIME, PAR2, VALUES) == 20.0

    def test_cost_sums_across_branches(self):
        assert aggregate_values(COST, PAR2, VALUES) == 30.0

    def test_energy_sums_across_branches(self):
        assert aggregate_values(ENERGY, PAR2, VALUES) == 30.0

    def test_availability_multiplies(self):
        values = {"A": 0.9, "B": 0.8}
        assert aggregate_values(AVAILABILITY, PAR2, values) == pytest.approx(0.72)

    def test_throughput_bottleneck(self):
        assert aggregate_values(THROUGHPUT, PAR2, VALUES) == 10.0


class TestConditional:
    COND = conditional(leaf("A"), leaf("B"), probabilities=(0.25, 0.75))

    def test_pessimistic_takes_worst_branch(self):
        # Response time: worst = larger.
        assert aggregate_values(
            RESPONSE_TIME, self.COND, VALUES, AggregationApproach.PESSIMISTIC
        ) == 20.0
        # Availability: worst = smaller.
        values = {"A": 0.9, "B": 0.7}
        assert aggregate_values(
            AVAILABILITY, self.COND, values, AggregationApproach.PESSIMISTIC
        ) == 0.7

    def test_optimistic_takes_best_branch(self):
        assert aggregate_values(
            RESPONSE_TIME, self.COND, VALUES, AggregationApproach.OPTIMISTIC
        ) == 10.0

    def test_mean_value_is_expectation(self):
        expected = 0.25 * 10.0 + 0.75 * 20.0
        assert aggregate_values(
            RESPONSE_TIME, self.COND, VALUES, AggregationApproach.MEAN
        ) == pytest.approx(expected)

    def test_mean_with_uniform_default(self):
        node = conditional(leaf("A"), leaf("B"))
        assert aggregate_values(
            RESPONSE_TIME, node, VALUES, AggregationApproach.MEAN
        ) == pytest.approx(15.0)


class TestLoop:
    LOOP = loop(leaf("A"), max_iterations=4, expected_iterations=2.5)

    def test_pessimistic_additive_multiplies_by_max(self):
        assert aggregate_values(
            RESPONSE_TIME, self.LOOP, VALUES, AggregationApproach.PESSIMISTIC
        ) == 40.0

    def test_optimistic_additive_single_iteration(self):
        assert aggregate_values(
            RESPONSE_TIME, self.LOOP, VALUES, AggregationApproach.OPTIMISTIC
        ) == 10.0

    def test_mean_additive_uses_expected_iterations(self):
        assert aggregate_values(
            RESPONSE_TIME, self.LOOP, VALUES, AggregationApproach.MEAN
        ) == pytest.approx(25.0)

    def test_pessimistic_multiplicative_exponentiates(self):
        values = {"A": 0.9}
        assert aggregate_values(
            AVAILABILITY, self.LOOP, values, AggregationApproach.PESSIMISTIC
        ) == pytest.approx(0.9 ** 4)

    def test_min_max_average_invariant_under_loop(self):
        for prop in (THROUGHPUT, REPUTATION, SECURITY_LEVEL):
            assert aggregate_values(
                prop, self.LOOP, VALUES, AggregationApproach.PESSIMISTIC
            ) == 10.0


class TestLoopDirection:
    """The worst/best iteration count depends on the property's direction.

    For a POSITIVE additive property (a reward accrued per pass) a single
    iteration is the *pessimistic* case — assuming max_iterations would
    inflate the guaranteed bound.  Regression tests for the direction-blind
    ``_loop`` that always took ``n = max_iterations`` pessimistically.
    """

    REWARD = QoSProperty(
        name="reward",
        uri="sqos:Reward",
        direction=Direction.POSITIVE,
        aggregation=AggregationKind.ADDITIVE,
        unit=u.SCORE,
        value_range=(0.0, 100.0),
    )
    GAIN = QoSProperty(
        name="gain",
        uri="sqos:Gain",
        direction=Direction.POSITIVE,
        aggregation=AggregationKind.MULTIPLICATIVE,
        unit=u.RATIO,
        value_range=(0.5, 4.0),
    )
    LOOP = loop(leaf("A"), max_iterations=4, expected_iterations=2.5)

    def test_positive_additive_pessimistic_is_single_iteration(self):
        assert aggregate_values(
            self.REWARD, self.LOOP, VALUES, AggregationApproach.PESSIMISTIC
        ) == 10.0

    def test_positive_additive_optimistic_is_max_iterations(self):
        assert aggregate_values(
            self.REWARD, self.LOOP, VALUES, AggregationApproach.OPTIMISTIC
        ) == 40.0

    def test_positive_multiplicative_above_one(self):
        values = {"A": 1.25}
        assert aggregate_values(
            self.GAIN, self.LOOP, values, AggregationApproach.PESSIMISTIC
        ) == pytest.approx(1.25)
        assert aggregate_values(
            self.GAIN, self.LOOP, values, AggregationApproach.OPTIMISTIC
        ) == pytest.approx(1.25 ** 4)

    def test_negative_additive_unchanged(self):
        # The classic case (response time) keeps its Table IV.1 semantics.
        assert aggregate_values(
            RESPONSE_TIME, self.LOOP, VALUES, AggregationApproach.PESSIMISTIC
        ) == 40.0
        assert aggregate_values(
            RESPONSE_TIME, self.LOOP, VALUES, AggregationApproach.OPTIMISTIC
        ) == 10.0

    def test_mean_uses_expected_iterations_either_direction(self):
        assert aggregate_values(
            self.REWARD, self.LOOP, VALUES, AggregationApproach.MEAN
        ) == pytest.approx(25.0)


class TestConditionalMeanValidation:
    """MEAN aggregation must reject malformed probability vectors instead of
    silently zip-truncating or scaling by a non-unit total."""

    def test_length_mismatch_raises(self):
        with pytest.raises(AggregationError, match="probabilities"):
            _conditional(
                RESPONSE_TIME, [10.0, 20.0, 30.0], [0.5, 0.5],
                AggregationApproach.MEAN,
            )

    def test_probabilities_not_summing_to_one_raise(self):
        with pytest.raises(AggregationError, match="sum to"):
            _conditional(
                RESPONSE_TIME, [10.0, 20.0], [0.3, 0.3],
                AggregationApproach.MEAN,
            )

    def test_pessimistic_ignores_probabilities(self):
        # Worst-branch selection never consults probabilities, so the
        # validation must not fire outside the MEAN path.
        assert _conditional(
            RESPONSE_TIME, [10.0, 20.0, 30.0], [0.5, 0.5],
            AggregationApproach.PESSIMISTIC,
        ) == 30.0

    def test_valid_probabilities_accepted(self):
        assert _conditional(
            RESPONSE_TIME, [10.0, 20.0], [0.25, 0.75],
            AggregationApproach.MEAN,
        ) == pytest.approx(17.5)


class TestNestedPatterns:
    def test_sequence_of_parallel_and_loop(self):
        tree = sequence(
            leaf("A"),
            parallel(leaf("B"), leaf("C")),
            loop(leaf("D"), max_iterations=2),
        )
        values = {"A": 10.0, "B": 20.0, "C": 30.0, "D": 5.0}
        # 10 + max(20, 30) + 2*5 = 50
        assert aggregate_values(
            RESPONSE_TIME, tree, values, AggregationApproach.PESSIMISTIC
        ) == 50.0
        # Cost: 10 + (20 + 30) + 2*5 = 70
        assert aggregate_values(
            COST, tree, values, AggregationApproach.PESSIMISTIC
        ) == 70.0


class TestErrors:
    def test_missing_activity_value_raises(self):
        with pytest.raises(AggregationError):
            aggregate_values(RESPONSE_TIME, SEQ3, {"A": 1.0})


class TestVectorAggregation:
    def test_aggregate_composition_vector(self):
        props = {"response_time": RESPONSE_TIME, "availability": AVAILABILITY}
        task = Task("t", sequence(leaf("A"), leaf("B")))
        assignments = {
            "A": QoSVector({"response_time": 100.0, "availability": 0.9}, props),
            "B": QoSVector({"response_time": 200.0, "availability": 0.8}, props),
        }
        result = aggregate_composition(task, assignments, props)
        assert result["response_time"] == 300.0
        assert result["availability"] == pytest.approx(0.72)

    def test_aggregation_bounds(self):
        task = Task("t", sequence(leaf("A"), leaf("B")))
        extremes = {"A": (10.0, 50.0), "B": (20.0, 80.0)}
        best, worst = aggregation_bounds(task, RESPONSE_TIME, extremes)
        assert best == 30.0
        assert worst == 130.0


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.floats(0.01, 100, allow_nan=False), min_size=2, max_size=5),
)
def test_pessimistic_bounds_optimistic_for_time(values):
    """Pessimistic aggregation is never better than optimistic."""
    names = [f"N{i}" for i in range(len(values))]
    node = conditional(*[leaf(n) for n in names])
    activity_values = dict(zip(names, values))
    pessimistic = aggregate_values(
        RESPONSE_TIME, node, activity_values, AggregationApproach.PESSIMISTIC
    )
    optimistic = aggregate_values(
        RESPONSE_TIME, node, activity_values, AggregationApproach.OPTIMISTIC
    )
    mean = aggregate_values(
        RESPONSE_TIME, node, activity_values, AggregationApproach.MEAN
    )
    tolerance = 1e-9 * max(values)
    assert optimistic <= mean + tolerance
    assert mean <= pessimistic + tolerance


@settings(max_examples=60, deadline=None)
@given(st.lists(st.floats(0.5, 1.0, allow_nan=False), min_size=2, max_size=5))
def test_sequence_availability_never_exceeds_members(values):
    names = [f"N{i}" for i in range(len(values))]
    node = sequence(*[leaf(n) for n in names])
    result = aggregate_values(AVAILABILITY, node, dict(zip(names, values)))
    assert result <= min(values) + 1e-12
