"""Tests for the queueing workload drivers (repro.experiments.drivers)."""

from __future__ import annotations

import pytest

from repro.execution.clock import SimulatedClock
from repro.experiments import (
    ClosedLoopDriver,
    DriverReport,
    OnOffArrivals,
    OpenLoopDriver,
    PoissonArrivals,
    RequestRecord,
)
from repro.middleware.qasom import QASOM
from repro.qos.properties import STANDARD_PROPERTIES
from repro.runtime import MiddlewareRuntime, RequestStatus, RuntimeConfig
from repro.runtime.handle import RunSpec, RunHandle
from repro.semantics.ontology import Ontology
from repro.services.generator import ServiceGenerator
from repro.composition.request import UserRequest
from repro.composition.task import Task, leaf, sequence
from repro.env.environment import PervasiveEnvironment

PROPS = {
    name: STANDARD_PROPERTIES[name]
    for name in ("response_time", "cost", "availability")
}


def build_world(seed=5, services=6):
    ontology = Ontology("driver-tests")
    root = ontology.declare_class("task:Root")
    ontology.declare_class("task:One", [root])
    environment = PervasiveEnvironment(seed=seed)
    generator = ServiceGenerator(PROPS, seed=seed)
    for service in generator.candidates("task:One", services):
        environment.host_on_new_device(service)
    middleware = QASOM.for_environment(environment, PROPS, ontology=ontology)
    task = Task("drive", sequence(leaf("A", "task:One")))
    request = UserRequest(task=task, constraints=(),
                          weights={name: 1.0 for name in PROPS})
    return middleware, request


class TestArrivalProcesses:
    def test_poisson_is_seeded_and_monotone(self):
        process = PoissonArrivals(10.0, seed=42)
        first = process.times(50)
        assert first == PoissonArrivals(10.0, seed=42).times(50)
        assert all(b > a for a, b in zip(first, first[1:]))
        assert first != PoissonArrivals(10.0, seed=43).times(50)

    def test_poisson_mean_rate_is_plausible(self):
        times = PoissonArrivals(100.0, seed=1).times(2000)
        measured = len(times) / times[-1]
        assert measured == pytest.approx(100.0, rel=0.2)

    def test_on_off_defers_arrivals_out_of_quiet_phases(self):
        process = OnOffArrivals(
            50.0, on_seconds=1.0, off_seconds=4.0, seed=7
        )
        times = process.times(200)
        assert times == process.times(200)
        period = 5.0
        for at in times:
            assert at % period <= 1.0 + 1e-9, f"arrival at {at} in OFF phase"

    def test_validation(self):
        with pytest.raises(ValueError):
            PoissonArrivals(0.0)
        with pytest.raises(ValueError):
            OnOffArrivals(1.0, on_seconds=0.0, off_seconds=1.0)
        with pytest.raises(ValueError):
            OnOffArrivals(1.0, on_seconds=1.0, off_seconds=-1.0)


class TestClosedLoopDriver:
    def test_single_client_matches_serial_submit_and_wait(self):
        middleware, request = build_world()
        driver = ClosedLoopDriver(middleware.submit)
        report = driver.run([request] * 4)
        assert report.submitted == report.completed == 4
        assert all(r.status is RequestStatus.DONE for r in report.records)
        assert all(r.sim_seconds is not None for r in report.records)

    def test_think_time_advances_the_simulated_clock(self):
        middleware, request = build_world()
        clock = middleware.environment.clock
        started = clock.now()
        driver = ClosedLoopDriver(
            middleware.submit, clients=2, think_seconds=10.0, clock=clock
        )
        report = driver.run([request] * 4)
        # Two rounds of two clients -> two think pauses.
        assert clock.now() >= started + 20.0
        arrivals = [r.arrival_sim for r in report.records]
        assert arrivals[0] == arrivals[1] or arrivals[1] > arrivals[0]
        assert arrivals[2] >= arrivals[0] + 10.0

    def test_bounds_outstanding_requests_to_the_client_count(self):
        middleware, request = build_world()
        runtime = MiddlewareRuntime(
            middleware, RuntimeConfig(workers=2, queue_depth=2)
        )
        driver = ClosedLoopDriver(runtime.submit, clients=2)
        report = driver.run([request] * 6)
        runtime.close()
        # The round barrier means no admission rejections despite the
        # tiny queue: at most `clients` requests are ever outstanding.
        assert report.rejected == 0
        assert report.completed == 6

    def test_validation(self):
        with pytest.raises(ValueError):
            ClosedLoopDriver(lambda r: None, clients=0)
        with pytest.raises(ValueError):
            ClosedLoopDriver(lambda r: None, think_seconds=-1.0)
        with pytest.raises(ValueError):
            ClosedLoopDriver(lambda r: None, think_seconds=1.0)


class TestOpenLoopDriver:
    def test_back_to_back_submits_everything_without_waiting(self):
        middleware, request = build_world()
        runtime = MiddlewareRuntime(
            middleware, RuntimeConfig(workers=2, queue_depth=64)
        )
        driver = OpenLoopDriver(
            runtime.submit, clock=middleware.environment.clock
        )
        report = driver.run([request] * 8)
        runtime.drain()
        runtime.close()
        assert report.submitted == 8
        assert report.completed == 8

    def test_paced_arrivals_advance_the_clock(self):
        middleware, request = build_world()
        clock = middleware.environment.clock
        process = PoissonArrivals(2.0, seed=3)
        expected = process.times(5, start=clock.now())
        driver = OpenLoopDriver(
            middleware.submit, clock=clock, arrivals=process
        )
        report = driver.run([request] * 5)
        # Inline execution advances the clock between submissions, so each
        # arrival lands at its scheduled time or later (never earlier).
        for record, scheduled in zip(report.records, expected):
            assert record.arrival_sim >= scheduled - 1e-9
        assert clock.now() >= expected[-1]

    def test_overload_surfaces_as_rejected_records(self):
        middleware, request = build_world()
        runtime = MiddlewareRuntime(
            middleware,
            RuntimeConfig(workers=1, queue_depth=2),
            autostart=False,  # nothing drains the queue while submitting
        )
        driver = OpenLoopDriver(runtime.submit)
        report = driver.run([request] * 6)
        assert report.rejected == 4
        assert report.summary()["rejected"] == 4
        runtime.close(drain=False)

    def test_paced_arrivals_require_a_clock(self):
        with pytest.raises(ValueError):
            OpenLoopDriver(lambda r: None, arrivals=PoissonArrivals(1.0))


class TestDriverReport:
    def _record(self, index, arrival, sim_latency, status=RequestStatus.DONE):
        spec = RunSpec(plan=None, request=object.__new__(UserRequest))
        handle = RunHandle.__new__(RunHandle)
        handle.spec = spec
        handle._status = status
        handle.submitted_sim = arrival
        handle.finished_sim = (
            arrival + sim_latency if sim_latency is not None else None
        )
        handle.submitted_wall = 0.0
        handle.started_wall = 0.0
        handle.finished_wall = sim_latency
        return RequestRecord(index, arrival, handle)

    def _report(self):
        report = DriverReport(window_seconds=1.0)
        report.records = [
            self._record(0, 0.1, 0.05),
            self._record(1, 0.5, 0.30),
            self._record(2, 1.2, 0.05),
            self._record(3, 1.4, None, status=RequestStatus.REJECTED),
        ]
        return report

    def test_latency_windows_key_on_arrival_time(self):
        series = self._report().latency_windows().series()
        assert [s.index for s in series] == [0, 1]
        assert [s.count for s in series] == [2, 1]

    def test_availability_counts_rejections_against_their_window(self):
        availability = self._report().availability()
        assert availability[0] == pytest.approx(1.0)
        assert availability[1] == pytest.approx(0.5)

    def test_goodput_is_sla_bounded_completions(self):
        report = self._report()
        assert report.goodput(1.0) == 3
        assert report.goodput(0.1) == 2
        assert report.summary(slo_seconds=0.1)["goodput"] == 2

    def test_summary_counts_every_terminal_state(self):
        summary = self._report().summary()
        assert summary["submitted"] == 4
        assert summary["completed"] == 3
        assert summary["rejected"] == 1
        assert summary["failed"] == 0
