"""Tests for evidence-based provider reputation."""

from __future__ import annotations

import pytest

from repro.qos.properties import STANDARD_PROPERTIES
from repro.qos.values import QoSVector
from repro.services.description import ServiceDescription
from repro.services.registry import ServiceRegistry
from repro.adaptation.reputation import REPUTATION_SCALE, ReputationManager
from repro.execution.engine import ExecutionReport, InvocationRecord

PROPS = {
    name: STANDARD_PROPERTIES[name]
    for name in ("response_time", "reputation")
}


def svc(name, provider, reputation=2.5, service_id=""):
    return ServiceDescription(
        name=name, capability="task:X", provider=provider,
        advertised_qos=QoSVector(
            {"response_time": 100.0, "reputation": reputation}, PROPS
        ),
        service_id=service_id,
    )


@pytest.fixture
def registry():
    return ServiceRegistry()


@pytest.fixture
def manager(registry):
    return ReputationManager(registry)


class TestScoring:
    def test_unknown_provider_scores_prior(self, manager):
        # 3/4 prior -> 3.75 on the 0-5 scale.
        assert manager.score("nobody") == pytest.approx(3.75)

    def test_successes_raise_score(self, manager):
        base = manager.score("p")
        for _ in range(20):
            manager.record_success("p")
        assert manager.score("p") > base

    def test_failures_lower_score(self, manager):
        base = manager.score("p")
        for _ in range(20):
            manager.record_failure("p")
        assert manager.score("p") < base

    def test_sla_violations_count_as_fractional_failures(self, registry):
        lenient = ReputationManager(registry, violation_weight=0.5)
        harsh = ReputationManager(registry, violation_weight=2.0)
        for m in (lenient, harsh):
            m.record_success("p", 10)
            m.record_sla_violation("p", 4)
        assert harsh.score("p") < lenient.score("p")

    def test_score_bounded_to_scale(self, manager):
        manager.record_success("angel", 10_000)
        manager.record_failure("demon", 10_000)
        assert 0.0 <= manager.score("demon") <= manager.score("angel")
        assert manager.score("angel") <= REPUTATION_SCALE

    def test_prior_dampens_single_observation(self, manager):
        manager.record_failure("newbie")
        # One failure against a 3/4 prior: score stays well above zero.
        assert manager.score("newbie") > 0.5 * REPUTATION_SCALE * 0.5

    def test_invalid_prior_rejected(self, registry):
        with pytest.raises(ValueError):
            ReputationManager(registry, prior_successes=5.0, prior_total=4.0)


class TestIngestReport:
    def test_execution_trace_feeds_records(self, registry, manager):
        good = registry.publish(svc("good", "alice", service_id="svc-good"))
        bad = registry.publish(svc("bad", "bob", service_id="svc-bad"))
        report = ExecutionReport("t", True, 0.0, 1.0)
        report.invocations = [
            InvocationRecord("A", "svc-good", 0.0, good.advertised_qos,
                             True, 1),
            InvocationRecord("B", "svc-bad", 0.5, None, False, 1),
            InvocationRecord("B", "svc-bad", 0.6, None, False, 2),
            InvocationRecord("C", "svc-ghost", 0.7, None, False, 1),
        ]
        manager.ingest_report(report)
        assert manager.record_of("alice").successes == 1
        assert manager.record_of("bob").failures == 2
        assert manager.record_of("ghost-provider") is None
        assert manager.score("alice") > manager.score("bob")


class TestRegistryRefresh:
    def test_refresh_updates_advertised_reputation(self, registry, manager):
        service = registry.publish(svc("s", "alice", reputation=2.5,
                                       service_id="svc-r"))
        manager.record_success("alice", 30)
        count = manager.refresh_registry()
        assert count == 1
        refreshed = registry.require("svc-r")
        assert refreshed.advertised_qos["reputation"] > 2.5
        assert refreshed.advertised_qos["reputation"] == pytest.approx(
            manager.score("alice")
        )

    def test_unknown_providers_untouched(self, registry, manager):
        registry.publish(svc("s", "stranger"))
        assert manager.refresh_registry() == 0

    def test_refresh_is_idempotent(self, registry, manager):
        registry.publish(svc("s", "alice", service_id="svc-i"))
        manager.record_success("alice", 5)
        assert manager.refresh_registry() == 1
        assert manager.refresh_registry() == 0  # already up to date

    def test_selection_prefers_reputable_provider_after_refresh(
        self, registry, manager
    ):
        """The loop closes: evidence -> reputation -> next selection."""
        from repro.composition.qassa import QASSA
        from repro.composition.request import UserRequest
        from repro.composition.selection import CandidateSets
        from repro.composition.task import Task, leaf, sequence

        registry.publish(svc("reliable", "alice", reputation=2.5,
                             service_id="svc-a"))
        registry.publish(svc("flaky", "bob", reputation=2.5,
                             service_id="svc-b"))
        manager.record_success("alice", 30)
        manager.record_failure("bob", 30)
        manager.refresh_registry()

        task = Task("t", sequence(leaf("A", "task:X")))
        candidates = CandidateSets(
            task, {"A": registry.by_capability("task:X")}
        )
        request = UserRequest(task, weights={"reputation": 1.0})
        plan = QASSA(PROPS).select(request, candidates)
        assert plan.selections["A"].primary.provider == "alice"
