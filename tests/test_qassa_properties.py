"""Property-based invariants of QASSA over random problem instances.

These are the load-bearing guarantees the rest of the middleware builds on:

* a returned feasible plan actually satisfies every global constraint;
* the plan's aggregated QoS equals a from-scratch re-aggregation of its
  binding (no stale caching);
* the utility is consistent with the global normaliser;
* alternates never duplicate the primary and respect the configured quota;
* whenever the exhaustive optimum exists, QASSA either finds a feasible
  plan too or the repair budget was genuinely exhausted (no silent misses
  on easy instances).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import SelectionError
from repro.qos.properties import STANDARD_PROPERTIES
from repro.services.generator import ServiceGenerator
from repro.composition.aggregation import aggregate_composition
from repro.composition.baselines import ExhaustiveSelection
from repro.composition.qassa import QASSA, QassaConfig
from repro.composition.request import UserRequest
from repro.composition.selection import CandidateSets
from repro.composition.task import Task, leaf, parallel, sequence
from repro.experiments.workloads import constraints_at_tightness

PROPS = {
    name: STANDARD_PROPERTIES[name]
    for name in ("response_time", "cost", "availability", "reliability")
}

_instances = st.fixed_dictionaries(
    {
        "activities": st.integers(1, 4),
        "services": st.integers(2, 15),
        "seed": st.integers(0, 500),
        "tightness": st.floats(0.3, 1.0),
        "use_parallel": st.booleans(),
    }
)


def build(params):
    n = params["activities"]
    leaves = [leaf(f"A{i}", f"task:C{i}") for i in range(n)]
    if params["use_parallel"] and n >= 3:
        root = sequence(leaves[0], parallel(leaves[1], leaves[2]), *leaves[3:])
    else:
        root = sequence(*leaves)
    task = Task("prop", root)
    generator = ServiceGenerator(PROPS, seed=params["seed"])
    candidates = CandidateSets(
        task,
        {a.name: generator.candidates(a.capability, params["services"])
         for a in task.activities},
    )
    constraints = constraints_at_tightness(
        task, candidates, PROPS, ["response_time", "availability"],
        params["tightness"],
    )
    request = UserRequest(
        task, constraints=constraints, weights={n: 1.0 for n in PROPS}
    )
    return task, request, candidates


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(_instances)
def test_feasible_plans_satisfy_constraints(params):
    task, request, candidates = build(params)
    try:
        plan = QASSA(PROPS).select(request, candidates)
    except SelectionError:
        return
    assert plan.feasible
    assert request.satisfied_by(plan.aggregated_qos)


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(_instances)
def test_aggregate_matches_binding(params):
    task, request, candidates = build(params)
    try:
        plan = QASSA(PROPS).select(request, candidates)
    except SelectionError:
        return
    recomputed = aggregate_composition(
        task,
        {n: s.advertised_qos for n, s in plan.binding().items()},
        PROPS,
        plan.approach,
    )
    for name in PROPS:
        assert plan.aggregated_qos[name] == pytest.approx(recomputed[name])


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(_instances)
def test_utility_in_unit_interval(params):
    task, request, candidates = build(params)
    try:
        plan = QASSA(PROPS).select(request, candidates)
    except SelectionError:
        return
    assert -1e-9 <= plan.utility <= 1.0 + 1e-9


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(_instances, st.integers(0, 4))
def test_alternate_quota_respected(params, quota):
    task, request, candidates = build(params)
    selector = QASSA(PROPS, config=QassaConfig(alternates_kept=quota))
    try:
        plan = selector.select(request, candidates)
    except SelectionError:
        return
    for selection in plan.selections.values():
        assert 1 <= len(selection.services) <= 1 + quota
        assert selection.primary not in selection.alternates
        ids = [s.service_id for s in selection.services]
        assert len(ids) == len(set(ids))


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    st.fixed_dictionaries(
        {
            "activities": st.integers(1, 3),
            "services": st.integers(2, 8),
            "seed": st.integers(0, 200),
            "tightness": st.floats(0.5, 1.0),
            "use_parallel": st.just(False),
        }
    )
)
def test_qassa_finds_feasible_when_optimum_exists_easy(params):
    """On small, moderately constrained instances, QASSA's completeness in
    practice: whenever exhaustive proves feasibility, QASSA succeeds too
    and reaches >= 70 % of the optimum."""
    task, request, candidates = build(params)
    try:
        optimum = ExhaustiveSelection(PROPS).select(request, candidates)
    except SelectionError:
        return
    plan = QASSA(PROPS).select(request, candidates)
    assert plan.feasible
    assert plan.utility >= 0.7 * optimum.utility - 1e-9
