"""Tests for executable-composition serialisation (§VI.2.4)."""

from __future__ import annotations

import xml.etree.ElementTree as ET

import pytest

from repro.errors import BpelParseError
from repro.qos.properties import STANDARD_PROPERTIES
from repro.services.generator import ServiceGenerator
from repro.composition.qassa import QASSA, QassaConfig
from repro.composition.request import GlobalConstraint, UserRequest
from repro.composition.selection import CandidateSets
from repro.composition.task import Task, leaf, parallel, sequence
from repro.execution.bpel import parse_bpel, to_executable_bpel

PROPS = {
    name: STANDARD_PROPERTIES[name]
    for name in ("response_time", "cost", "availability")
}


@pytest.fixture
def plan():
    task = Task(
        "exec-demo",
        sequence(leaf("A", "task:A"),
                 parallel(leaf("B", "task:B"), leaf("C", "task:C"))),
    )
    generator = ServiceGenerator(PROPS, seed=81)
    candidates = CandidateSets(
        task,
        {a.name: generator.candidates(a.capability, 8)
         for a in task.activities},
    )
    request = UserRequest(
        task,
        constraints=(GlobalConstraint.at_most("response_time", 1e9),),
        weights={n: 1.0 for n in PROPS},
    )
    return QASSA(PROPS, config=QassaConfig(alternates_kept=2)).select(
        request, candidates
    )


class TestExecutableBpel:
    def test_every_invoke_carries_a_binding(self, plan):
        document = to_executable_bpel(plan)
        root = ET.fromstring(document)
        invokes = list(root.iter("invoke"))
        assert len(invokes) == 3
        for invoke in invokes:
            activity = invoke.get("name")
            assert invoke.get("partnerService") == (
                plan.selections[activity].primary.service_id
            )
            assert invoke.get("partnerName")

    def test_alternates_listed(self, plan):
        document = to_executable_bpel(plan)
        root = ET.fromstring(document)
        for invoke in root.iter("invoke"):
            activity = invoke.get("name")
            alternates = plan.selections[activity].alternates
            if alternates:
                listed = invoke.get("alternates").split()
                assert listed == [s.service_id for s in alternates]

    def test_qos_annotation_carries_aggregate(self, plan):
        document = to_executable_bpel(plan)
        root = ET.fromstring(document)
        qos = root.find("qos")
        assert qos is not None
        by_property = {
            e.get("property"): float(e.get("value")) for e in qos
        }
        for name in PROPS:
            assert by_property[name] == pytest.approx(
                plan.aggregated_qos[name], rel=1e-4
            )
        assert all(
            e.get("approach") == plan.approach.value for e in qos
        )

    def test_executable_document_parses_back_as_abstract_task(self, plan):
        document = to_executable_bpel(plan)
        recovered = parse_bpel(document)
        assert recovered.activity_names == plan.task.activity_names
        assert recovered.pattern_census() == plan.task.pattern_census()

    def test_rejects_non_plan(self):
        with pytest.raises(BpelParseError):
            to_executable_bpel("not a plan")
