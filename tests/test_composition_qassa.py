"""Tests for the QASSA selection algorithm."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SelectionError
from repro.qos.properties import STANDARD_PROPERTIES
from repro.qos.values import QoSVector
from repro.services.description import ServiceDescription
from repro.services.generator import ServiceGenerator
from repro.composition.aggregation import AggregationApproach
from repro.composition.baselines import ExhaustiveSelection
from repro.composition.qassa import QASSA, QassaConfig
from repro.composition.request import GlobalConstraint, UserRequest
from repro.composition.selection import CandidateSets
from repro.composition.task import Task, leaf, parallel, sequence

PROPS = {
    name: STANDARD_PROPERTIES[name]
    for name in ("response_time", "cost", "availability", "reliability")
}


def build_problem(activities=3, services=12, seed=0, tightness=None):
    task = Task(
        "p", sequence(*[leaf(f"A{i}", f"task:C{i}") for i in range(activities)])
    )
    generator = ServiceGenerator(PROPS, seed=seed)
    candidates = CandidateSets(
        task,
        {
            a.name: generator.candidates(a.capability, services)
            for a in task.activities
        },
    )
    constraints = ()
    if tightness is not None:
        from repro.experiments.workloads import constraints_at_tightness

        constraints = constraints_at_tightness(
            task, candidates, PROPS,
            ["response_time", "availability"], tightness,
        )
    request = UserRequest(
        task,
        constraints=constraints,
        weights={name: 1.0 for name in PROPS},
    )
    return task, request, candidates


class TestBasicSelection:
    def test_unconstrained_selection_succeeds(self):
        _, request, candidates = build_problem()
        plan = QASSA(PROPS).select(request, candidates)
        assert plan.feasible
        assert set(plan.selections) == {"A0", "A1", "A2"}
        assert 0.0 <= plan.utility <= 1.0

    def test_plan_has_ranked_alternates(self):
        _, request, candidates = build_problem(services=20)
        config = QassaConfig(alternates_kept=3)
        plan = QASSA(PROPS, config=config).select(request, candidates)
        for name, selection in plan.selections.items():
            assert 1 <= len(selection.services) <= 4
            assert selection.primary == selection.services[0]

    def test_aggregated_qos_matches_binding(self):
        from repro.composition.aggregation import aggregate_composition

        task, request, candidates = build_problem()
        plan = QASSA(PROPS).select(request, candidates)
        recomputed = aggregate_composition(
            task,
            {n: s.advertised_qos for n, s in plan.binding().items()},
            PROPS,
            plan.approach,
        )
        for name in PROPS:
            assert plan.aggregated_qos[name] == pytest.approx(recomputed[name])

    def test_statistics_populated(self):
        _, request, candidates = build_problem()
        plan = QASSA(PROPS).select(request, candidates)
        stats = plan.statistics
        assert stats.elapsed_seconds > 0
        assert stats.combinations_explored >= 1
        assert stats.utility_evaluations > 0
        assert stats.search_space == candidates.search_space()

    def test_deterministic_given_seed(self):
        _, request, candidates = build_problem(seed=4)
        a = QASSA(PROPS, config=QassaConfig(seed=1)).select(request, candidates)
        b = QASSA(PROPS, config=QassaConfig(seed=1)).select(request, candidates)
        assert a.service_ids() == b.service_ids()


class TestConstraints:
    def test_feasible_plan_satisfies_constraints(self):
        _, request, candidates = build_problem(services=25, tightness=0.6)
        plan = QASSA(PROPS).select(request, candidates)
        assert plan.feasible
        assert request.satisfied_by(plan.aggregated_qos)

    def test_impossible_constraints_raise(self):
        task, _, candidates = build_problem()
        request = UserRequest(
            task,
            constraints=(GlobalConstraint.at_most("response_time", 0.001),),
            weights={"response_time": 1.0},
        )
        with pytest.raises(SelectionError):
            QASSA(PROPS).select(request, candidates)

    def test_best_effort_returns_infeasible_plan(self):
        task, _, candidates = build_problem()
        request = UserRequest(
            task,
            constraints=(GlobalConstraint.at_most("response_time", 0.001),),
            weights={"response_time": 1.0},
        )
        plan = QASSA(PROPS).select(request, candidates, best_effort=True)
        assert not plan.feasible

    def test_unknown_property_in_request_raises(self):
        task, _, candidates = build_problem()
        request = UserRequest(
            task, constraints=(GlobalConstraint.at_most("karma", 1.0),)
        )
        with pytest.raises(SelectionError):
            QASSA(PROPS).select(request, candidates)

    def test_tight_but_satisfiable_finds_solution(self):
        """When exhaustive proves feasibility, QASSA should also succeed for
        moderately tight constraints."""
        _, request, candidates = build_problem(services=15, tightness=0.45)
        exhaustive_ok = True
        try:
            ExhaustiveSelection(PROPS).select(request, candidates)
        except SelectionError:
            exhaustive_ok = False
        if not exhaustive_ok:
            pytest.skip("instance infeasible at this tightness")
        plan = QASSA(PROPS).select(request, candidates)
        assert plan.feasible


class TestOptimality:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_optimality_above_85_percent(self, seed):
        _, request, candidates = build_problem(
            activities=3, services=12, seed=seed, tightness=0.7
        )
        try:
            optimal = ExhaustiveSelection(PROPS).select(request, candidates)
        except SelectionError:
            pytest.skip("infeasible instance")
        plan = QASSA(PROPS).select(request, candidates)
        assert plan.utility >= 0.85 * optimal.utility

    def test_single_candidate_per_activity_is_trivially_optimal(self):
        _, request, candidates = build_problem(services=1)
        plan = QASSA(PROPS).select(request, candidates)
        optimal = ExhaustiveSelection(PROPS).select(request, candidates)
        assert plan.utility == pytest.approx(optimal.utility)
        assert plan.service_ids() == optimal.service_ids()


class TestLocalPhase:
    def test_dominated_candidates_pruned(self):
        task = Task("t", sequence(leaf("A", "task:C")))
        dominant = ServiceDescription(
            "good", "task:C",
            QoSVector({"response_time": 10.0, "cost": 1.0,
                       "availability": 0.99, "reliability": 0.99}, PROPS),
        )
        dominated = ServiceDescription(
            "bad", "task:C",
            QoSVector({"response_time": 100.0, "cost": 10.0,
                       "availability": 0.6, "reliability": 0.6}, PROPS),
        )
        candidates = CandidateSets(task, {"A": [dominated, dominant]})
        request = UserRequest(task, weights={n: 1.0 for n in PROPS})
        selector = QASSA(PROPS)
        locals_ = selector.local_selections(request, candidates)
        assert [s.name for s in locals_["A"].services] == ["good"]

    def test_pruning_can_be_disabled(self):
        task = Task("t", sequence(leaf("A", "task:C")))
        generator = ServiceGenerator(PROPS, seed=1)
        candidates = CandidateSets(task, {"A": generator.candidates("task:C", 8)})
        request = UserRequest(task, weights={n: 1.0 for n in PROPS})
        selector = QASSA(PROPS, config=QassaConfig(prune_dominated=False))
        locals_ = selector.local_selections(request, candidates)
        assert len(locals_["A"].services) == 8

    def test_levels_cover_kept_services(self):
        _, request, candidates = build_problem(services=30)
        locals_ = QASSA(PROPS).local_selections(request, candidates)
        for sel in locals_.values():
            covered = sorted(
                i for level in sel.levels for i in level.member_indexes
            )
            assert covered == list(range(len(sel.services)))


class TestParallelTask:
    def test_selection_on_parallel_structure(self):
        task = Task(
            "t", sequence(leaf("A", "task:A"),
                          parallel(leaf("B", "task:B"), leaf("C", "task:C"))),
        )
        generator = ServiceGenerator(PROPS, seed=2)
        candidates = CandidateSets(
            task,
            {a.name: generator.candidates(a.capability, 8)
             for a in task.activities},
        )
        request = UserRequest(
            task,
            constraints=(GlobalConstraint.at_most("response_time", 1e9),),
            weights={n: 1.0 for n in PROPS},
        )
        plan = QASSA(PROPS).select(request, candidates)
        assert plan.feasible
        # Parallel response time is max of B/C branches plus A.
        binding = plan.binding()
        expected = binding["A"].qos("response_time") + max(
            binding["B"].qos("response_time"), binding["C"].qos("response_time")
        )
        assert plan.aggregated_qos["response_time"] == pytest.approx(expected)


@settings(max_examples=15, deadline=None)
@given(
    activities=st.integers(1, 4),
    services=st.integers(1, 10),
    seed=st.integers(0, 100),
)
def test_unconstrained_selection_never_fails(activities, services, seed):
    _, request, candidates = build_problem(activities, services, seed)
    plan = QASSA(PROPS).select(request, candidates)
    assert plan.feasible
    assert len(plan.selections) == activities
