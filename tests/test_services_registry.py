"""Tests for the service registry (publication, withdrawal, churn events)."""

from __future__ import annotations

import pytest

from repro.errors import ServiceDescriptionError
from repro.qos.properties import RESPONSE_TIME
from repro.qos.values import QoSVector
from repro.services.description import ServiceDescription
from repro.services.registry import (
    EVENT_PUBLISHED,
    EVENT_UPDATED,
    EVENT_WITHDRAWN,
    ServiceRegistry,
)

PROPS = {"response_time": RESPONSE_TIME}


def svc(name, capability="task:X", **kw):
    return ServiceDescription(
        name=name,
        capability=capability,
        advertised_qos=QoSVector({"response_time": 100.0}, PROPS),
        **kw,
    )


class TestPublication:
    def test_publish_and_get(self):
        registry = ServiceRegistry()
        service = registry.publish(svc("a"))
        assert registry.get(service.service_id) is service
        assert len(registry) == 1
        assert service.service_id in registry

    def test_publish_all(self):
        registry = ServiceRegistry()
        registry.publish_all([svc("a"), svc("b")])
        assert len(registry) == 2

    def test_republish_replaces(self):
        registry = ServiceRegistry()
        original = svc("a", service_id="svc-1")
        registry.publish(original)
        refreshed = original.with_qos(
            QoSVector({"response_time": 50.0}, PROPS)
        )
        registry.publish(refreshed)
        assert len(registry) == 1
        assert registry.get("svc-1").qos("response_time") == 50.0

    def test_require_unknown_raises(self):
        with pytest.raises(ServiceDescriptionError):
            ServiceRegistry().require("svc-nope")


class TestWithdrawal:
    def test_withdraw(self):
        registry = ServiceRegistry()
        service = registry.publish(svc("a"))
        registry.withdraw(service.service_id)
        assert len(registry) == 0
        assert registry.get(service.service_id) is None

    def test_withdraw_unknown_raises(self):
        with pytest.raises(ServiceDescriptionError):
            ServiceRegistry().withdraw("svc-nope")

    def test_capability_index_cleaned(self):
        registry = ServiceRegistry()
        service = registry.publish(svc("a", "task:Pay"))
        registry.withdraw(service.service_id)
        assert registry.by_capability("task:Pay") == []
        assert "task:Pay" not in registry.capabilities()


class TestCapabilityIndex:
    def test_by_capability_exact(self):
        registry = ServiceRegistry()
        registry.publish_all([svc("a", "task:Pay"), svc("b", "task:Pay"),
                              svc("c", "task:Browse")])
        assert len(registry.by_capability("task:Pay")) == 2
        assert registry.capabilities() == {"task:Pay", "task:Browse"}

    def test_by_capability_is_syntactic(self):
        registry = ServiceRegistry()
        registry.publish(svc("a", "task:CardPayment"))
        # No semantic widening at the registry level.
        assert registry.by_capability("task:Payment") == []


class TestEvents:
    def test_event_sequence(self):
        registry = ServiceRegistry()
        events = []
        registry.subscribe(lambda kind, s: events.append((kind, s.name)))
        service = registry.publish(svc("a", service_id="svc-ev"))
        registry.publish(service)  # republish -> updated
        registry.withdraw("svc-ev")
        assert [e[0] for e in events] == [
            EVENT_PUBLISHED, EVENT_UPDATED, EVENT_WITHDRAWN
        ]

    def test_unsubscribe(self):
        registry = ServiceRegistry()
        events = []
        unsubscribe = registry.subscribe(lambda kind, s: events.append(kind))
        registry.publish(svc("a"))
        unsubscribe()
        registry.publish(svc("b"))
        assert len(events) == 1

    def test_unsubscribe_twice_is_harmless(self):
        registry = ServiceRegistry()
        unsubscribe = registry.subscribe(lambda kind, s: None)
        unsubscribe()
        unsubscribe()


class TestGeneration:
    def test_publish_bumps_generation(self):
        registry = ServiceRegistry()
        before = registry.generation
        registry.publish(svc("a"))
        assert registry.generation == before + 1

    def test_withdraw_bumps_generation(self):
        registry = ServiceRegistry()
        service = registry.publish(svc("a"))
        before = registry.generation
        registry.withdraw(service.service_id)
        assert registry.generation == before + 1

    def test_reads_do_not_bump_generation(self):
        registry = ServiceRegistry()
        registry.publish(svc("a", "task:Pay"))
        before = registry.generation
        registry.by_capability("task:Pay")
        registry.capabilities()
        registry.services()
        list(registry)
        registry.snapshot()
        assert registry.generation == before


class TestSnapshot:
    def test_snapshot_matches_registry_read_surface(self):
        registry = ServiceRegistry()
        registry.publish_all([svc("a", "task:Pay"), svc("b", "task:Pay"),
                              svc("c", "task:Browse")])
        snapshot = registry.snapshot()
        assert snapshot.generation == registry.generation
        assert len(snapshot) == len(registry)
        assert snapshot.capabilities() == registry.capabilities()
        assert {s.service_id for s in snapshot} == {
            s.service_id for s in registry
        }
        for capability in registry.capabilities():
            assert [s.service_id for s in snapshot.by_capability(capability)] \
                == [s.service_id for s in registry.by_capability(capability)]
        for service in registry:
            assert service.service_id in snapshot
            assert snapshot.get(service.service_id) is service

    def test_snapshot_isolated_from_later_churn(self):
        registry = ServiceRegistry()
        first = registry.publish(svc("a", "task:Pay"))
        snapshot = registry.snapshot()
        registry.publish(svc("b", "task:Pay"))
        registry.withdraw(first.service_id)
        # The snapshot still shows the world as it was at capture time.
        assert len(snapshot) == 1
        assert [s.name for s in snapshot.by_capability("task:Pay")] == ["a"]
        assert snapshot.generation < registry.generation

    def test_snapshot_get_unknown_returns_none(self):
        assert ServiceRegistry().snapshot().get("svc-nope") is None


class TestConcurrentChurn:
    """Regression: iteration used to race with publish/withdraw mutation."""

    def test_discovery_iteration_survives_concurrent_churn(self):
        import threading

        registry = ServiceRegistry()
        registry.publish_all(
            [svc(f"s{i}", f"task:C{i % 4}") for i in range(40)]
        )
        errors = []
        stop = threading.Event()

        def churner():
            step = 0
            try:
                while not stop.is_set():
                    service = registry.publish(
                        svc(f"churn{step}", f"task:C{step % 4}")
                    )
                    registry.withdraw(service.service_id)
                    step += 1
            except Exception as exc:  # pragma: no cover - the regression
                errors.append(exc)

        threads = [threading.Thread(target=churner) for _ in range(3)]
        for thread in threads:
            thread.start()
        try:
            for _ in range(300):
                for capability in list(registry.capabilities()):
                    registry.by_capability(capability)
                list(registry)
                registry.services()
                snapshot = registry.snapshot()
                # A snapshot is internally consistent: every indexed id
                # resolves within the same snapshot.
                for cap in snapshot.capabilities():
                    for service in snapshot.by_capability(cap):
                        assert service.service_id in snapshot
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=10.0)
        assert not errors, f"churn thread raised: {errors[0]!r}"
