"""Tests for the service registry (publication, withdrawal, churn events)."""

from __future__ import annotations

import pytest

from repro.errors import ServiceDescriptionError
from repro.qos.properties import RESPONSE_TIME
from repro.qos.values import QoSVector
from repro.services.description import ServiceDescription
from repro.services.registry import (
    EVENT_PUBLISHED,
    EVENT_UPDATED,
    EVENT_WITHDRAWN,
    ServiceRegistry,
)

PROPS = {"response_time": RESPONSE_TIME}


def svc(name, capability="task:X", **kw):
    return ServiceDescription(
        name=name,
        capability=capability,
        advertised_qos=QoSVector({"response_time": 100.0}, PROPS),
        **kw,
    )


class TestPublication:
    def test_publish_and_get(self):
        registry = ServiceRegistry()
        service = registry.publish(svc("a"))
        assert registry.get(service.service_id) is service
        assert len(registry) == 1
        assert service.service_id in registry

    def test_publish_all(self):
        registry = ServiceRegistry()
        registry.publish_all([svc("a"), svc("b")])
        assert len(registry) == 2

    def test_republish_replaces(self):
        registry = ServiceRegistry()
        original = svc("a", service_id="svc-1")
        registry.publish(original)
        refreshed = original.with_qos(
            QoSVector({"response_time": 50.0}, PROPS)
        )
        registry.publish(refreshed)
        assert len(registry) == 1
        assert registry.get("svc-1").qos("response_time") == 50.0

    def test_require_unknown_raises(self):
        with pytest.raises(ServiceDescriptionError):
            ServiceRegistry().require("svc-nope")


class TestWithdrawal:
    def test_withdraw(self):
        registry = ServiceRegistry()
        service = registry.publish(svc("a"))
        registry.withdraw(service.service_id)
        assert len(registry) == 0
        assert registry.get(service.service_id) is None

    def test_withdraw_unknown_raises(self):
        with pytest.raises(ServiceDescriptionError):
            ServiceRegistry().withdraw("svc-nope")

    def test_capability_index_cleaned(self):
        registry = ServiceRegistry()
        service = registry.publish(svc("a", "task:Pay"))
        registry.withdraw(service.service_id)
        assert registry.by_capability("task:Pay") == []
        assert "task:Pay" not in registry.capabilities()


class TestCapabilityIndex:
    def test_by_capability_exact(self):
        registry = ServiceRegistry()
        registry.publish_all([svc("a", "task:Pay"), svc("b", "task:Pay"),
                              svc("c", "task:Browse")])
        assert len(registry.by_capability("task:Pay")) == 2
        assert registry.capabilities() == {"task:Pay", "task:Browse"}

    def test_by_capability_is_syntactic(self):
        registry = ServiceRegistry()
        registry.publish(svc("a", "task:CardPayment"))
        # No semantic widening at the registry level.
        assert registry.by_capability("task:Payment") == []


class TestEvents:
    def test_event_sequence(self):
        registry = ServiceRegistry()
        events = []
        registry.subscribe(lambda kind, s: events.append((kind, s.name)))
        service = registry.publish(svc("a", service_id="svc-ev"))
        registry.publish(service)  # republish -> updated
        registry.withdraw("svc-ev")
        assert [e[0] for e in events] == [
            EVENT_PUBLISHED, EVENT_UPDATED, EVENT_WITHDRAWN
        ]

    def test_unsubscribe(self):
        registry = ServiceRegistry()
        events = []
        unsubscribe = registry.subscribe(lambda kind, s: events.append(kind))
        registry.publish(svc("a"))
        unsubscribe()
        registry.publish(svc("b"))
        assert len(events) == 1

    def test_unsubscribe_twice_is_harmless(self):
        registry = ServiceRegistry()
        unsubscribe = registry.subscribe(lambda kind, s: None)
        unsubscribe()
        unsubscribe()
