"""Long-run simulation: the middleware survives a hostile environment.

A single middleware instance serves a stream of requests while the
environment churns, links fluctuate, batteries drain and providers get
killed.  This is the closest the suite gets to the paper's deployment
story; the assertions are about *liveness* (requests keep being answered
or honestly refused) and *consistency* (every answer satisfies its own
constraints at plan time), not about any particular success count.
"""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.middleware.qasom import QASOM
from repro.env.scenarios import build_holiday_camp_scenario, build_shopping_scenario


class TestLongRunningSession:
    def test_fifty_requests_through_a_churning_environment(self):
        scenario = build_shopping_scenario(services_per_activity=10, seed=400)
        middleware = QASOM.for_environment(
            scenario.environment,
            scenario.properties,
            ontology=scenario.ontology,
            repository=scenario.repository,
        )
        answered = 0
        refused = 0
        executed_ok = 0
        for round_ in range(50):
            scenario.environment.step(2)
            try:
                plan = middleware.submit(scenario.request, execute=False).plan()
            except ReproError:
                refused += 1
                continue
            answered += 1
            assert plan.feasible
            assert scenario.request.satisfied_by(plan.aggregated_qos)
            result = middleware.submit(plan=plan).result()
            if result.report.succeeded:
                executed_ok += 1
        # Liveness: the middleware answered most rounds and some executions
        # completed; no crash escaped as a non-ReproError.
        assert answered + refused == 50
        assert answered >= 25
        assert executed_ok >= answered // 2

    def test_adversarial_kills_between_all_phases(self):
        """Kill services at every seam: after discovery, after selection,
        mid-trace ingestion — the middleware must degrade, not crash."""
        scenario = build_holiday_camp_scenario(services_per_activity=6,
                                               seed=401)
        middleware = QASOM.for_environment(
            scenario.environment,
            scenario.properties,
            ontology=scenario.ontology,
            repository=scenario.repository,
        )
        rng_victims = sorted(
            scenario.environment.registry.services(),
            key=lambda s: s.service_id,
        )
        for i in range(8):
            if rng_victims:
                scenario.environment.kill_service(
                    rng_victims.pop().service_id
                )
            try:
                result = middleware.run(scenario.request)
            except ReproError:
                continue
            assert result.report.succeeded or result.report.failed_activity

    def test_battery_exhaustion_takes_providers_down_gracefully(self):
        scenario = build_holiday_camp_scenario(services_per_activity=6,
                                               seed=402)
        middleware = QASOM.for_environment(
            scenario.environment,
            scenario.properties,
            ontology=scenario.ontology,
            repository=scenario.repository,
        )
        plan = middleware.submit(scenario.request, execute=False).plan()
        # Drain every hosting phone flat.
        for device in scenario.environment.devices():
            device.battery_remaining_wh = 0.0
            device.online = False
        result = middleware.submit(plan=plan).result()
        assert not result.report.succeeded
        assert result.report.failed_activity is not None
