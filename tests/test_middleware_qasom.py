"""Tests for the QASOM middleware facade."""

from __future__ import annotations

import pytest

from repro.errors import NoCandidateError
from repro.middleware.config import MiddlewareConfig
from repro.middleware.qasom import QASOM
from repro.composition.request import GlobalConstraint, UserRequest
from repro.composition.task import Task, leaf, sequence
from repro.env.scenarios import build_shopping_scenario


@pytest.fixture
def scenario():
    return build_shopping_scenario(seed=77)


@pytest.fixture
def middleware(scenario):
    return QASOM.for_environment(
        scenario.environment,
        scenario.properties,
        ontology=scenario.ontology,
        repository=scenario.repository,
    )


class TestCompose:
    def test_compose_returns_feasible_plan(self, middleware, scenario):
        plan = middleware.submit(scenario.request, execute=False).plan()
        assert plan.feasible
        assert set(plan.selections) == set(scenario.task.activity_names)
        assert scenario.request.satisfied_by(plan.aggregated_qos)

    def test_semantic_discovery_fills_abstract_capability(
        self, middleware, scenario
    ):
        """The shopping task asks for task:Payment; only Card/Mobile payment
        services exist, so composition relies on PLUGIN matches."""
        plan = middleware.submit(scenario.request, execute=False).plan()
        payment_service = plan.selections["Pay"].primary
        assert payment_service.capability in (
            "task:CardPayment", "task:MobilePayment",
        )

    def test_unknown_capability_raises(self, middleware, scenario):
        bogus = Task("bogus", sequence(leaf("X", "task:Nonexistent")))
        request = UserRequest(bogus, weights={"cost": 1.0})
        with pytest.raises(NoCandidateError):
            middleware.submit(request, execute=False).plan()

    def test_candidates_for_uses_discovery(self, middleware, scenario):
        candidates = middleware.candidates_for(scenario.task)
        sizes = candidates.sizes()
        assert all(count > 0 for count in sizes.values())
        # Payment pool aggregates card + mobile providers.
        assert sizes["Pay"] > sizes["Browse"] or sizes["Pay"] > 0


class TestExecute:
    def test_execute_produces_report(self, middleware, scenario):
        plan = middleware.submit(scenario.request, execute=False).plan()
        result = middleware.submit(plan=plan).result()
        assert result.plan is plan
        assert result.report.invocations
        # Task has 4 activities; conditional/loop may change counts, but the
        # shopping task is sequence+parallel so all 4 run (plus retries).
        activities_run = {r.activity_name for r in result.report.invocations}
        assert activities_run <= set(scenario.task.activity_names)

    def test_execute_without_adaptation(self, middleware, scenario):
        plan = middleware.submit(scenario.request, execute=False).plan()
        result = middleware.submit(plan=plan, adapt=False).result()
        assert result.adaptations == []

    def test_run_end_to_end(self, middleware, scenario):
        result = middleware.run(scenario.request)
        assert result.plan.feasible

    def test_adaptation_triggers_handled(self, scenario):
        """Killing the bound services mid-flight forces adaptation."""
        middleware = QASOM.for_environment(
            scenario.environment,
            scenario.properties,
            ontology=scenario.ontology,
            repository=scenario.repository,
        )
        plan = middleware.submit(scenario.request, execute=False).plan()
        victim = plan.selections["Browse"].primary
        scenario.environment.kill_service(victim.service_id)
        result = middleware.submit(plan=plan).result()
        # Execution survived through dynamic binding / retries.
        assert result.report.succeeded or result.adaptations


class TestConfig:
    def test_custom_config_threaded_through(self, scenario):
        from repro.composition.aggregation import AggregationApproach

        config = MiddlewareConfig(aggregation=AggregationApproach.MEAN)
        middleware = QASOM.for_environment(
            scenario.environment, scenario.properties,
            ontology=scenario.ontology, config=config,
        )
        plan = middleware.submit(scenario.request, execute=False).plan()
        assert plan.approach is AggregationApproach.MEAN

    def test_no_repository_disables_behavioural(self, scenario):
        middleware = QASOM.for_environment(
            scenario.environment, scenario.properties,
            ontology=scenario.ontology,
        )
        assert middleware.behavioural is None
