"""Vectorized QASSA kernels are bit-identical to the scalar hot path.

``repro.composition.kernels`` re-expresses the two selection hot loops —
candidate normalise-weight-sum scoring and per-property aggregation
bounds — as numpy kernels gated by ``QassaConfig(vectorized=True)``.
Because the vectorized path is a drop-in replacement, equality here is
``==`` on floats (bit identity), never ``pytest.approx``: the kernels use
only elementwise operations and explicit left folds in scalar iteration
order, so any drift is a bug.
"""

from __future__ import annotations

import random

import pytest

from repro.composition import kernels
from repro.composition.aggregation import (
    AggregationApproach,
    aggregation_bounds,
)
from repro.composition.qassa import QASSA, QassaConfig
from repro.composition.request import UserRequest
from repro.composition.selection import CandidateSets
from repro.composition.task import (
    Task, conditional, leaf, loop, parallel, sequence,
)
from repro.composition.utility import Normalizer, service_utility
from repro.qos.properties import STANDARD_PROPERTIES
from repro.services.generator import ServiceGenerator

numpy = pytest.importorskip("numpy")

PROPS = {
    name: STANDARD_PROPERTIES[name]
    for name in ("response_time", "cost", "availability", "reliability")
}


def _vectors(seed, count):
    generator = ServiceGenerator(PROPS, seed=seed)
    return [
        service.advertised_qos
        for service in generator.candidates("task:Any", count)
    ]


def _pattern_task():
    return Task("kernel-patterns", sequence(
        leaf("A", "task:Alpha"),
        parallel(leaf("B", "task:Beta"), leaf("C", "task:Gamma")),
        conditional(
            leaf("D", "task:Beta"), leaf("E", "task:Gamma"),
            probabilities=(0.25, 0.75),
        ),
        loop(leaf("F", "task:Alpha"), max_iterations=4,
             expected_iterations=2.5),
    ))


class TestScoreCandidates:
    @pytest.mark.parametrize("seed", [3, 11, 19, 27])
    def test_bit_identical_to_scalar_scoring(self, seed):
        vectors = _vectors(seed, 12)
        normalizer = Normalizer.from_vectors(vectors, PROPS)
        rng = random.Random(seed)
        weights = {
            name: round(rng.uniform(0.05, 1.0), 3) for name in PROPS
        }
        points, utilities = kernels.score_candidates(
            vectors, normalizer, PROPS, weights
        )
        expected_points = [normalizer.normalise_vector(v) for v in vectors]
        expected_utils = [
            service_utility(v, normalizer, weights) for v in vectors
        ]
        assert points == expected_points
        assert utilities == expected_utils

    def test_missing_properties_score_like_scalar(self):
        vectors = [
            v.restrict(("response_time", "cost")) if i % 2 else v
            for i, v in enumerate(_vectors(5, 8))
        ]
        normalizer = Normalizer.from_vectors(vectors, PROPS)
        weights = {name: 0.25 for name in PROPS}
        points, utilities = kernels.score_candidates(
            vectors, normalizer, PROPS, weights
        )
        assert points == [normalizer.normalise_vector(v) for v in vectors]
        assert utilities == [
            service_utility(v, normalizer, weights) for v in vectors
        ]

    def test_degenerate_span_scores_one(self):
        vectors = [_vectors(7, 1)[0]] * 3  # identical candidates: width 0
        normalizer = Normalizer.from_vectors(vectors, PROPS)
        points, _ = kernels.score_candidates(
            vectors, normalizer, PROPS, {name: 1.0 for name in PROPS}
        )
        for point in points:
            assert all(score == 1.0 for score in point.values())

    def test_outputs_are_builtin_floats(self):
        vectors = _vectors(9, 4)
        normalizer = Normalizer.from_vectors(vectors, PROPS)
        points, utilities = kernels.score_candidates(
            vectors, normalizer, PROPS, {name: 0.5 for name in PROPS}
        )
        for utility in utilities:
            assert type(utility) is float
        for point in points:
            for score in point.values():
                assert type(score) is float


class TestBatchedAggregationBounds:
    @pytest.mark.parametrize("approach", list(AggregationApproach))
    @pytest.mark.parametrize("seed", [13, 29])
    def test_bit_identical_to_per_property_bounds(self, seed, approach):
        task = _pattern_task()
        rng = random.Random(seed)
        extremes = {}
        for activity in task.activities:
            per_property = {}
            for name, prop in PROPS.items():
                a = rng.uniform(*prop.value_range)
                b = rng.uniform(*prop.value_range)
                per_property[name] = (
                    prop.direction.best((a, b)),
                    prop.direction.worst((a, b)),
                )
            extremes[activity.name] = per_property

        batched = kernels.batched_aggregation_bounds(
            task, PROPS, extremes, approach
        )
        for name, prop in PROPS.items():
            per_activity = {
                activity: extremes[activity][name] for activity in extremes
            }
            expected = aggregation_bounds(
                task, prop, per_activity, approach
            )
            assert batched[name] == expected, (
                f"{name} bounds diverged under {approach}"
            )

    def test_outputs_are_builtin_floats(self):
        task = _pattern_task()
        extremes = {
            activity.name: {
                name: (1.0, 2.0) if prop.direction.name == "NEGATIVE"
                else (2.0, 1.0)
                for name, prop in PROPS.items()
            }
            for activity in task.activities
        }
        bounds = kernels.batched_aggregation_bounds(
            task, PROPS, extremes, AggregationApproach.PESSIMISTIC
        )
        for best, worst in bounds.values():
            assert type(best) is float and type(worst) is float

    def test_missing_activity_raises_like_scalar(self):
        from repro.errors import AggregationError

        task = Task("missing", sequence(leaf("A", "task:Alpha"),
                                        leaf("B", "task:Beta")))
        extremes = {"A": {name: (1.0, 2.0) for name in PROPS}}
        with pytest.raises(AggregationError) as batched_err:
            kernels.batched_aggregation_bounds(
                task, PROPS, extremes, AggregationApproach.PESSIMISTIC
            )
        first = next(iter(PROPS.values()))
        with pytest.raises(AggregationError) as scalar_err:
            aggregation_bounds(
                task, first, {"A": (1.0, 2.0)},
                AggregationApproach.PESSIMISTIC,
            )
        assert str(batched_err.value) == str(scalar_err.value)


class TestQassaDispatch:
    @staticmethod
    def _selection_world(seed=23):
        generator = ServiceGenerator(PROPS, seed=seed)
        task = Task("dispatch", sequence(leaf("A", "task:Alpha"),
                                         leaf("B", "task:Beta")))
        pools = {
            "A": list(generator.candidates("task:Alpha", 6)),
            "B": list(generator.candidates("task:Beta", 6)),
        }
        candidates = CandidateSets(task, pools)
        request = UserRequest(
            task=task, constraints=(),
            weights={name: 1.0 for name in PROPS},
        )
        return request, candidates

    def test_vectorized_flag_controls_kernel_use(self):
        scalar = QASSA(PROPS, config=QassaConfig(vectorized=False))
        vectorized = QASSA(PROPS, config=QassaConfig(vectorized=True))
        assert scalar._use_kernels is False
        assert vectorized._use_kernels is True

    def test_scalar_config_never_calls_kernels(self, monkeypatch):
        def explode(*args, **kwargs):
            raise AssertionError("scalar config must not reach the kernels")

        monkeypatch.setattr(kernels, "score_candidates", explode)
        monkeypatch.setattr(kernels, "batched_aggregation_bounds", explode)
        request, candidates = self._selection_world()
        plan = QASSA(PROPS, config=QassaConfig(vectorized=False)).select(
            request, candidates
        )
        assert plan.feasible

    def test_missing_numpy_falls_back_to_scalar(self, monkeypatch):
        monkeypatch.setattr(kernels, "HAVE_NUMPY", False)
        selector = QASSA(PROPS, config=QassaConfig(vectorized=True))
        assert selector._use_kernels is False
        request, candidates = self._selection_world()
        assert selector.select(request, candidates).feasible

    def test_vectorized_plan_equals_scalar_plan(self):
        # One world, two selectors: selection never mutates candidates,
        # and sharing them keeps service ids comparable.
        request, candidates = self._selection_world()
        scalar_plan = QASSA(
            PROPS, config=QassaConfig(vectorized=False)
        ).select(request, candidates)
        vector_plan = QASSA(
            PROPS, config=QassaConfig(vectorized=True)
        ).select(request, candidates)
        assert vector_plan.service_ids() == scalar_plan.service_ids()
        assert vector_plan.utility == scalar_plan.utility
        assert vector_plan.feasible == scalar_plan.feasible
        for name in scalar_plan.aggregated_qos:
            assert vector_plan.aggregated_qos[name] == (
                scalar_plan.aggregated_qos[name]
            )
