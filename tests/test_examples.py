"""Smoke tests: every example application runs end to end.

Examples are the repo's contract with new users; a broken example is a
broken release.  Each test imports the script as a module and runs its
``main()`` with output captured.
"""

from __future__ import annotations

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name, capsys):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart", capsys)
        assert "selected composition" in out
        assert "execution succeeded" in out

    def test_pervasive_shopping(self, capsys):
        out = run_example("pervasive_shopping", capsys)
        assert "ranked by QoS" in out
        assert "adaptation action" in out
        assert "execution succeeded" in out

    def test_pervasive_hospital(self, capsys):
        out = run_example("pervasive_hospital", capsys)
        assert "aggregated QoS per approach" in out
        assert "pessimistic" in out and "optimistic" in out

    def test_holiday_camp_streaming(self, capsys):
        out = run_example("holiday_camp_streaming", capsys)
        assert "proactive trigger: forecast" in out
        assert "behavioural adaptation adopted" in out

    def test_reputation_market(self, capsys):
        out = run_example("reputation_market", capsys)
        assert "market converges" in out
        assert "final mean reputation" in out
        # The converged market must rate the honest cohort above the flaky
        # one.
        line = next(l for l in out.splitlines()
                    if "final mean reputation" in l)
        honest = float(line.split("honest ")[1].split(" ")[0])
        flaky = float(line.split("flaky ")[1])
        assert honest > flaky

    def test_every_example_has_a_test(self):
        scripts = {p.stem for p in EXAMPLES_DIR.glob("*.py")}
        tested = {"quickstart", "pervasive_shopping", "pervasive_hospital",
                  "holiday_camp_streaming", "reputation_market"}
        assert scripts == tested, (
            "examples and their smoke tests drifted apart"
        )
