"""Tests for retry/backoff and timeout policies, standalone and in-engine."""

from __future__ import annotations

import random

import pytest

from repro.errors import ExecutionError
from repro.observability import Observability
from repro.qos.properties import STANDARD_PROPERTIES
from repro.qos.values import QoSVector
from repro.services.generator import ServiceGenerator
from repro.composition.qassa import QASSA, QassaConfig
from repro.composition.request import GlobalConstraint, UserRequest
from repro.composition.selection import CandidateSets
from repro.composition.task import Task, leaf, sequence
from repro.execution.clock import SimulatedClock
from repro.execution.engine import ExecutionEngine
from repro.resilience import RetryPolicy, TimeoutPolicy

PROPS = {
    name: STANDARD_PROPERTIES[name]
    for name in ("response_time", "cost", "availability")
}


def build_plan(tree, seed=41, alternates=5):
    task = Task("t", tree)
    generator = ServiceGenerator(PROPS, seed=seed)
    candidates = CandidateSets(
        task,
        {a.name: generator.candidates(a.capability, 8)
         for a in task.activities},
    )
    request = UserRequest(
        task,
        constraints=(GlobalConstraint.at_most("response_time", 1e9),),
        weights={n: 1.0 for n in PROPS},
    )
    return QASSA(PROPS, config=QassaConfig(alternates_kept=alternates)).select(
        request, candidates
    )


class TestRetryPolicy:
    def test_backoff_grows_exponentially_without_jitter(self):
        policy = RetryPolicy(backoff_base_s=0.1, backoff_multiplier=2.0,
                             backoff_max_s=10.0, jitter=0.0)
        rng = random.Random(0)
        delays = [policy.backoff_seconds(n, rng) for n in (1, 2, 3)]
        assert delays == pytest.approx([0.1, 0.2, 0.4])

    def test_backoff_capped_at_max(self):
        policy = RetryPolicy(backoff_base_s=1.0, backoff_multiplier=10.0,
                             backoff_max_s=2.5, jitter=0.0)
        assert policy.backoff_seconds(5, random.Random(0)) == pytest.approx(2.5)

    def test_zero_failures_means_no_delay(self):
        policy = RetryPolicy()
        assert policy.backoff_seconds(0, random.Random(0)) == 0.0

    def test_jitter_bounded_and_seed_deterministic(self):
        policy = RetryPolicy(backoff_base_s=1.0, backoff_multiplier=1.0,
                             backoff_max_s=1.0, jitter=0.5)
        sampled = [policy.backoff_seconds(1, random.Random(s))
                   for s in range(50)]
        assert all(1.0 <= d <= 1.5 for d in sampled)
        assert len(set(sampled)) > 1  # jitter actually varies
        again = [policy.backoff_seconds(1, random.Random(s))
                 for s in range(50)]
        assert sampled == again

    def test_validation(self):
        with pytest.raises(ExecutionError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ExecutionError):
            RetryPolicy(backoff_multiplier=0.5)
        with pytest.raises(ExecutionError):
            RetryPolicy(jitter=1.5)


class TestTimeoutPolicy:
    def test_disabled_never_expires(self):
        assert not TimeoutPolicy().expired(1e12)
        assert not TimeoutPolicy().expired(None)

    def test_expiry_threshold(self):
        policy = TimeoutPolicy(invoke_timeout_ms=100.0)
        assert policy.expired(100.1)
        assert not policy.expired(100.0)
        assert not policy.expired(None)

    def test_validation(self):
        with pytest.raises(ExecutionError):
            TimeoutPolicy(invoke_timeout_ms=0.0)


class TestEngineRetryIntegration:
    def test_retry_budget_is_respected(self):
        plan = build_plan(sequence(leaf("A", "task:A")))

        def dead(service, timestamp):
            return None

        retry = RetryPolicy(max_attempts=4, jitter=0.0)
        engine = ExecutionEngine(PROPS, dead, retry=retry)
        report = engine.execute(plan)
        assert not report.succeeded
        # The budget, not the candidate list (8 services ranked), bounds
        # the sweep.
        assert len(report.invocations_of("A")) == 4

    def test_backoff_advances_simulated_clock(self):
        plan = build_plan(sequence(leaf("A", "task:A")))

        def dead(service, timestamp):
            return None

        clock = SimulatedClock()
        retry = RetryPolicy(max_attempts=3, backoff_base_s=0.5,
                            backoff_multiplier=2.0, backoff_max_s=10.0,
                            jitter=0.0)
        engine = ExecutionEngine(PROPS, dead, clock=clock, retry=retry)
        engine.execute(plan)
        # Two retries: 0.5 s + 1.0 s of backoff (failures cost no time).
        assert clock.now() == pytest.approx(1.5)

    def test_retries_total_counter(self):
        plan = build_plan(sequence(leaf("A", "task:A")))
        obs = Observability()

        def dead(service, timestamp):
            return None

        engine = ExecutionEngine(
            PROPS, dead, retry=RetryPolicy(max_attempts=3, jitter=0.0),
            observability=obs,
        )
        engine.execute(plan)
        assert obs.metrics.value("retries_total") == 2.0

    def test_retry_timestamps_reflect_backoff(self):
        plan = build_plan(sequence(leaf("A", "task:A")))

        def dead(service, timestamp):
            return None

        retry = RetryPolicy(max_attempts=3, backoff_base_s=1.0,
                            backoff_multiplier=1.0, backoff_max_s=1.0,
                            jitter=0.0)
        engine = ExecutionEngine(PROPS, dead, retry=retry)
        report = engine.execute(plan)
        starts = [r.started_at for r in report.invocations_of("A")]
        assert starts == pytest.approx([0.0, 1.0, 2.0])


class TestEngineTimeoutIntegration:
    def test_over_deadline_invocation_is_a_failure(self):
        plan = build_plan(sequence(leaf("A", "task:A")))

        def slow(service, timestamp):
            return QoSVector({"response_time": 500.0, "cost": 1.0}, PROPS)

        clock = SimulatedClock()
        engine = ExecutionEngine(
            PROPS, slow, clock=clock,
            retry=RetryPolicy(max_attempts=2, backoff_base_s=0.0,
                              backoff_max_s=0.0, jitter=0.0),
            timeout=TimeoutPolicy(invoke_timeout_ms=100.0),
        )
        report = engine.execute(plan)
        assert not report.succeeded
        records = report.invocations_of("A")
        assert len(records) == 2
        assert all(not r.succeeded for r in records)
        assert all(r.observed_qos is None for r in records)
        # The caller waited exactly the timeout per attempt, not 500 ms.
        assert clock.now() == pytest.approx(0.2)
        assert report.total_cost == 0.0

    def test_fast_invocation_passes_under_timeout(self):
        plan = build_plan(sequence(leaf("A", "task:A")))

        def fast(service, timestamp):
            return QoSVector({"response_time": 50.0, "cost": 1.0}, PROPS)

        engine = ExecutionEngine(
            PROPS, fast, timeout=TimeoutPolicy(invoke_timeout_ms=100.0),
        )
        report = engine.execute(plan)
        assert report.succeeded
        assert report.elapsed == pytest.approx(0.05)
