"""Tests for dynamic binding."""

from __future__ import annotations

import pytest

from repro.errors import BindingError
from repro.qos.properties import STANDARD_PROPERTIES
from repro.services.generator import ServiceGenerator
from repro.adaptation.monitoring import QoSMonitor, QoSObservation
from repro.composition.qassa import QASSA, QassaConfig
from repro.composition.request import GlobalConstraint, UserRequest
from repro.composition.selection import CandidateSets
from repro.composition.task import Task, leaf, sequence
from repro.execution.binding import DynamicBinder

PROPS = {
    name: STANDARD_PROPERTIES[name]
    for name in ("response_time", "cost", "availability")
}


@pytest.fixture
def plan():
    task = Task("t", sequence(leaf("A", "task:A")))
    generator = ServiceGenerator(PROPS, seed=31)
    candidates = CandidateSets(task, {"A": generator.candidates("task:A", 10)})
    request = UserRequest(
        task,
        constraints=(GlobalConstraint.at_most("response_time", 1e9),),
        weights={"response_time": 0.8, "cost": 0.1, "availability": 0.1},
    )
    return QASSA(PROPS, config=QassaConfig(alternates_kept=3)).select(
        request, candidates
    )


class TestBinding:
    def test_binds_primary_without_monitor(self, plan):
        binder = DynamicBinder(PROPS)
        assert binder.bind(plan, "A") == plan.selections["A"].primary

    def test_unknown_activity_raises(self, plan):
        with pytest.raises(BindingError):
            DynamicBinder(PROPS).bind(plan, "Z")

    def test_dead_primary_falls_to_alternate(self, plan):
        primary = plan.selections["A"].primary
        binder = DynamicBinder(PROPS, liveness=lambda s: s != primary)
        bound = binder.bind(plan, "A")
        assert bound != primary
        assert bound in plan.selections["A"].alternates

    def test_all_dead_raises(self, plan):
        binder = DynamicBinder(PROPS, liveness=lambda s: False)
        with pytest.raises(BindingError):
            binder.bind(plan, "A")

    def test_runtime_estimates_override_advertised_ranking(self, plan):
        """When the primary's measured response time collapses, the binder
        switches to an alternate whose run-time estimate is better."""
        primary = plan.selections["A"].primary
        alternates = plan.selections["A"].alternates
        assert alternates, "plan must keep alternates for this test"
        monitor = QoSMonitor(PROPS)
        # Observed: primary is terrible; first alternate is excellent.
        monitor.observe(
            QoSObservation(primary.service_id, "response_time", 1e6, 0.0)
        )
        monitor.observe(
            QoSObservation(alternates[0].service_id, "response_time", 1.0, 0.0)
        )
        binder = DynamicBinder(PROPS, monitor=monitor)
        assert binder.bind(plan, "A") == alternates[0]

    def test_single_live_service_shortcut(self, plan):
        primary = plan.selections["A"].primary
        monitor = QoSMonitor(PROPS)
        binder = DynamicBinder(
            PROPS, monitor=monitor, liveness=lambda s: s == primary
        )
        assert binder.bind(plan, "A") == primary
