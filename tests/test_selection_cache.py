"""Tests for incremental re-selection: SelectionCache + QASSA/substitution wiring."""

from __future__ import annotations

import pytest

from repro.qos.properties import STANDARD_PROPERTIES
from repro.qos.values import QoSVector
from repro.services.description import ServiceDescription
from repro.services.generator import ServiceGenerator
from repro.composition.qassa import QASSA, QassaConfig
from repro.composition.request import UserRequest
from repro.composition.selection import CandidateSets
from repro.composition.selection_cache import SelectionCache
from repro.composition.task import Task, leaf, sequence
from repro.composition.utility import service_utility
from repro.adaptation.substitution import ServiceSubstitution

PROPS = {
    name: STANDARD_PROPERTIES[name]
    for name in ("response_time", "cost", "availability", "reliability")
}


def build_pools(activities=3, services=10, seed=0):
    task = Task(
        "p", sequence(*[leaf(f"A{i}", f"task:C{i}") for i in range(activities)])
    )
    generator = ServiceGenerator(PROPS, seed=seed)
    pools = {
        a.name: generator.candidates(a.capability, services)
        for a in task.activities
    }
    return task, generator, pools


def make_request(task, weights=None):
    return UserRequest(
        task, constraints=(), weights=weights or {n: 1.0 for n in PROPS}
    )


def plan_signature(plan):
    """Everything that identifies a selection outcome, for byte-equality."""
    return (
        plan.service_ids(),
        {
            name: [s.service_id for s in sel.services]
            for name, sel in plan.selections.items()
        },
        plan.utility,
        {name: plan.aggregated_qos[name] for name in plan.aggregated_qos},
        plan.feasible,
    )


class TestCacheCore:
    def test_lookup_miss_then_hit(self):
        cache = SelectionCache()
        cache.begin(("ctx",), {"cost": 1.0})
        fp = (("svc-1", None),)
        assert cache.lookup("A", fp) is None
        cache.store("A", fp, payload := object())
        assert cache.lookup("A", fp) is payload
        assert (cache.hits, cache.misses) == (1, 1)

    def test_fingerprint_changes_with_qos(self):
        qos_a = QoSVector({"cost": 1.0}, PROPS)
        qos_b = QoSVector({"cost": 2.0}, PROPS)
        s1 = ServiceDescription("s", "task:C", qos_a, service_id="fixed-id")
        s2 = ServiceDescription("s", "task:C", qos_b, service_id="fixed-id")
        assert SelectionCache.fingerprint([s1]) != SelectionCache.fingerprint([s2])

    def test_context_change_flushes(self):
        cache = SelectionCache()
        cache.begin(("ctx-1",), {"cost": 1.0})
        fp = (("svc-1", None),)
        cache.store("A", fp, object())
        cache.begin(("ctx-2",), {"cost": 1.0})
        assert len(cache) == 0
        assert cache.invalidations == 1
        assert cache.lookup("A", fp) is None

    def test_clear(self):
        cache = SelectionCache()
        cache.begin(("ctx",), {"cost": 1.0})
        cache.store("A", (("svc-1", None),), object())
        cache.clear()
        assert len(cache) == 0
        assert cache.rank_candidates("A", []) is None


class TestIncrementalQassa:
    def test_second_select_hits_every_activity(self):
        task, _, pools = build_pools()
        request = make_request(task)
        cache = SelectionCache()
        selector = QASSA(PROPS, cache=cache)
        first = selector.select(request, CandidateSets(task, pools))
        assert first.statistics.cache_misses == 3
        assert first.statistics.activities_recomputed == 3
        second = selector.select(request, CandidateSets(task, pools))
        assert second.statistics.cache_hits == 3
        assert second.statistics.activities_recomputed == 0
        assert plan_signature(first) == plan_signature(second)

    def test_plans_identical_with_and_without_cache(self):
        task, _, pools = build_pools(activities=4, services=15, seed=3)
        request = make_request(task)
        cold = QASSA(PROPS).select(request, CandidateSets(task, pools))
        cached_selector = QASSA(PROPS, cache=SelectionCache())
        warm = cached_selector.select(request, CandidateSets(task, pools))
        # Second run from a fully warm cache must still be byte-equal.
        warm2 = cached_selector.select(request, CandidateSets(task, pools))
        assert plan_signature(cold) == plan_signature(warm)
        assert plan_signature(cold) == plan_signature(warm2)

    def test_churn_recomputes_only_the_changed_activity(self):
        task, generator, pools = build_pools()
        request = make_request(task)
        cache = SelectionCache()
        selector = QASSA(PROPS, cache=cache)
        selector.select(request, CandidateSets(task, pools))

        churned = dict(pools)
        churned["A1"] = generator.candidates("task:C1", 10)
        plan = selector.select(request, CandidateSets(task, churned))
        assert plan.statistics.cache_hits == 2
        assert plan.statistics.cache_misses == 1
        assert plan.statistics.activities_recomputed == 1
        # And still identical to a from-scratch run on the churned pools.
        cold = QASSA(PROPS).select(request, CandidateSets(task, churned))
        assert plan_signature(plan) == plan_signature(cold)

    def test_weight_change_invalidates(self):
        task, _, pools = build_pools()
        cache = SelectionCache()
        selector = QASSA(PROPS, cache=cache)
        selector.select(make_request(task), CandidateSets(task, pools))
        other_weights = {"response_time": 3.0, "cost": 1.0,
                         "availability": 1.0, "reliability": 1.0}
        plan = selector.select(
            make_request(task, weights=other_weights),
            CandidateSets(task, pools),
        )
        assert cache.invalidations == 1
        assert plan.statistics.cache_hits == 0
        assert plan.statistics.activities_recomputed == 3

    def test_pool_reorder_is_a_miss(self):
        # Clustering seeds index into pool order, so order is part of the
        # fingerprint: a reordered pool must recompute, not hit.
        task, _, pools = build_pools(activities=1)
        request = make_request(task)
        cache = SelectionCache()
        selector = QASSA(PROPS, cache=cache)
        selector.select(request, CandidateSets(task, pools))
        reordered = {"A0": list(reversed(pools["A0"]))}
        plan = selector.select(request, CandidateSets(task, reordered))
        assert plan.statistics.cache_misses == 1

    def test_select_ranked_uses_the_cache_too(self):
        task, _, pools = build_pools()
        request = make_request(task)
        selector = QASSA(PROPS, cache=SelectionCache())
        selector.select(request, CandidateSets(task, pools))
        plans = selector.select_ranked(request, CandidateSets(task, pools), k=2)
        assert plans[0].statistics.cache_hits == 3


class TestRankCandidates:
    def test_orders_fresh_candidates_by_cached_utility(self):
        task, generator, pools = build_pools(activities=1, services=8)
        request = make_request(task)
        cache = SelectionCache()
        QASSA(PROPS, cache=cache).select(request, CandidateSets(task, pools))

        fresh = generator.candidates("task:C0", 6)
        ranked = cache.rank_candidates("A0", fresh)
        assert ranked is not None
        assert sorted(s.service_id for s in ranked) == sorted(
            s.service_id for s in fresh
        )
        normalizer = cache._entries["A0"][1].normalizer
        weights = {n: 0.25 for n in PROPS}
        scores = [
            service_utility(s.advertised_qos, normalizer, weights)
            for s in ranked
        ]
        assert all(a >= b - 1e-12 for a, b in zip(scores, scores[1:]))

    def test_unknown_activity_returns_none(self):
        cache = SelectionCache()
        cache.begin(("ctx",), {"cost": 1.0})
        assert cache.rank_candidates("nope", []) is None


class TestSubstitutionUsesCache:
    def _fixed(self, name, rt):
        return ServiceDescription(
            name=name,
            capability="task:C0",
            advertised_qos=QoSVector(
                {"response_time": rt, "cost": 1.0,
                 "availability": 0.95, "reliability": 0.95},
                PROPS,
            ),
            service_id=name,
        )

    def test_fresh_candidates_tried_best_utility_first(self):
        task = Task("p", sequence(leaf("A0", "task:C0")))
        pool = [self._fixed("slow", 900.0), self._fixed("primary", 100.0)]
        request = make_request(task)
        cache = SelectionCache()
        selector = QASSA(PROPS, cache=cache, config=QassaConfig(alternates_kept=0))
        plan = selector.select(request, CandidateSets(task, {"A0": pool}))
        failing = plan.selections["A0"].primary.service_id

        fresh = [
            s for s in (self._fixed("mediocre", 500.0), self._fixed("fast", 50.0))
            if s.service_id != failing
        ]
        with_cache = ServiceSubstitution(PROPS, selection_cache=cache)
        result = with_cache.substitute(plan, failing, fresh_candidates=fresh)
        # Both fresh candidates keep the (unconstrained) plan feasible; the
        # ranked path must try the higher-utility one first.
        assert result.replacement.service_id == "fast"
        assert result.used_fresh_candidates

    def test_without_cache_order_is_preserved(self):
        task = Task("p", sequence(leaf("A0", "task:C0")))
        pool = [self._fixed("primary", 100.0)]
        request = make_request(task)
        plan = QASSA(PROPS, config=QassaConfig(alternates_kept=0)).select(
            request, CandidateSets(task, {"A0": pool})
        )
        fresh = [self._fixed("mediocre", 500.0), self._fixed("fast", 50.0)]
        plain = ServiceSubstitution(PROPS)
        result = plain.substitute(plan, "primary", fresh_candidates=fresh)
        assert result.replacement.service_id == "mediocre"
