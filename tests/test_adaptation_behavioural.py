"""Tests for the behavioural adaptation strategy."""

from __future__ import annotations

import pytest

from repro.errors import BehaviouralAdaptationError, NoCandidateError
from repro.qos.properties import STANDARD_PROPERTIES
from repro.services.generator import ServiceGenerator
from repro.adaptation.behavioural import BehaviouralAdaptation
from repro.adaptation.task_class import TaskClassRepository
from repro.composition.qassa import QASSA
from repro.composition.request import GlobalConstraint, UserRequest
from repro.composition.selection import CandidateSets
from repro.composition.task import Task, leaf, sequence
from repro.semantics.ontology import Ontology

PROPS = {
    name: STANDARD_PROPERTIES[name]
    for name in ("response_time", "cost", "availability")
}


@pytest.fixture
def ontology():
    onto = Ontology("tasks")
    onto.declare_class("task:Activity")
    for name in ("A", "B", "C", "Extra"):
        onto.declare_class(f"task:{name}", ["task:Activity"])
    return onto


@pytest.fixture
def setup(ontology):
    primary = Task(
        "primary",
        sequence(leaf("A", "task:A"), leaf("B", "task:B"), leaf("C", "task:C")),
    )
    alternative = Task(
        "alternative",
        sequence(leaf("A2", "task:A"), leaf("X", "task:Extra"),
                 leaf("B2", "task:B"), leaf("C2", "task:C")),
    )
    repo = TaskClassRepository(ontology)
    task_class = repo.new_class("tc")
    task_class.add(primary)
    task_class.add(alternative)

    generator = ServiceGenerator(PROPS, seed=17)
    pools = {
        capability: generator.candidates(capability, 10)
        for capability in ("task:A", "task:B", "task:C", "task:Extra")
    }

    def resolver(task):
        return CandidateSets(
            task, {a.name: pools[a.capability] for a in task.activities}
        )

    selector = QASSA(PROPS)
    strategy = BehaviouralAdaptation(
        repo,
        resolver=resolver,
        selector=lambda req, cands: selector.select(req, cands),
        ontology=ontology,
    )
    request = UserRequest(
        primary,
        constraints=(GlobalConstraint.at_most("response_time", 1e9),),
        weights={n: 1.0 for n in PROPS},
    )
    return strategy, request, primary, alternative, pools, repo


class TestCandidateBehaviours:
    def test_finds_alternative(self, setup):
        strategy, request, primary, alternative, *_ = setup
        hits = strategy.candidate_behaviours(primary)
        assert [b.name for _, b, _ in hits] == ["alternative"]

    def test_excludes_failing_behaviour_itself(self, setup):
        strategy, request, primary, *_ = setup
        names = [b.name for _, b, _ in strategy.candidate_behaviours(primary)]
        assert "primary" not in names

    def test_scoped_to_named_class(self, setup, ontology):
        strategy, request, primary, *_ = setup
        with pytest.raises(BehaviouralAdaptationError):
            strategy.repository.require("ghost")
        hits = strategy.candidate_behaviours(primary, task_class_name="tc")
        assert len(hits) == 1


class TestAdapt:
    def test_adapt_produces_feasible_plan_on_alternative(self, setup):
        strategy, request, primary, alternative, *_ = setup
        result = strategy.adapt(request)
        assert result.behaviour.name == "alternative"
        assert result.plan.feasible
        assert result.plan.task is alternative
        assert result.alternatives_tried == 1
        # Constraints carried over from the original request.
        assert result.plan.request.constraints == request.constraints

    def test_adapt_without_alternatives_raises(self, setup, ontology):
        strategy, request, primary, *_ = setup
        empty_repo = TaskClassRepository(ontology)
        empty_repo.new_class("tc").add(primary)
        strategy.repository = empty_repo
        with pytest.raises(BehaviouralAdaptationError):
            strategy.adapt(request)

    def test_adapt_skips_alternatives_without_services(self, setup, ontology):
        strategy, request, primary, alternative, pools, repo = setup

        def broken_resolver(task):
            raise NoCandidateError(task.activities[0].name)

        strategy.resolver = broken_resolver
        with pytest.raises(BehaviouralAdaptationError):
            strategy.adapt(request)

    def test_alternatives_ordered_by_size(self, setup, ontology):
        strategy, request, primary, alternative, pools, repo = setup
        bigger = Task(
            "bigger",
            sequence(leaf("A3", "task:A"), leaf("X1", "task:Extra"),
                     leaf("X2", "task:B"), leaf("B3", "task:B"),
                     leaf("C3", "task:C")),
        )
        repo.require("tc").add(bigger)
        hits = strategy.candidate_behaviours(primary)
        sizes = [b.graph.vertex_count() for _, b, _ in hits]
        assert sizes == sorted(sizes)
