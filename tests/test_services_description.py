"""Tests for service descriptions and conversations."""

from __future__ import annotations

import pytest

from repro.errors import ServiceDescriptionError
from repro.qos.properties import AVAILABILITY, COST, RESPONSE_TIME
from repro.qos.values import QoSVector
from repro.services.description import Conversation, Operation, ServiceDescription

PROPS = {
    "response_time": RESPONSE_TIME,
    "cost": COST,
    "availability": AVAILABILITY,
}


def make_service(**overrides):
    defaults = dict(
        name="pay-1",
        capability="task:Payment",
        advertised_qos=QoSVector(
            {"response_time": 100.0, "cost": 1.5, "availability": 0.95}, PROPS
        ),
    )
    defaults.update(overrides)
    return ServiceDescription(**defaults)


class TestServiceDescription:
    def test_auto_generated_unique_ids(self):
        a, b = make_service(), make_service()
        assert a.service_id != b.service_id
        assert a.service_id.startswith("svc-")

    def test_explicit_id_preserved(self):
        s = make_service(service_id="svc-custom")
        assert s.service_id == "svc-custom"

    def test_identity_is_by_id(self):
        s = make_service(service_id="svc-x")
        t = make_service(service_id="svc-x", name="other-name")
        assert s == t
        assert hash(s) == hash(t)
        assert s != make_service()

    def test_empty_name_rejected(self):
        with pytest.raises(ServiceDescriptionError):
            make_service(name="")

    def test_empty_capability_rejected(self):
        with pytest.raises(ServiceDescriptionError):
            make_service(capability="")

    def test_qos_accessor(self):
        assert make_service().qos("cost") == 1.5

    def test_with_qos_keeps_identity(self):
        s = make_service()
        updated = s.with_qos(
            QoSVector({"response_time": 50.0, "cost": 1.0,
                       "availability": 0.9}, PROPS)
        )
        assert updated == s  # same id
        assert updated.qos("response_time") == 50.0
        assert s.qos("response_time") == 100.0

    def test_black_box_by_default(self):
        assert not make_service().is_white_box


class TestConversation:
    def test_white_box_service(self):
        conv = Conversation(
            operations=(
                Operation("browse", "task:Browse"),
                Operation("order", "task:Order"),
            ),
            flow=(("browse", "order"),),
        )
        service = make_service(conversation=conv)
        assert service.is_white_box
        assert service.conversation.operation("order").capability == "task:Order"

    def test_duplicate_operation_names_rejected(self):
        with pytest.raises(ServiceDescriptionError):
            Conversation(
                operations=(
                    Operation("op", "task:A"),
                    Operation("op", "task:B"),
                )
            )

    def test_flow_referencing_unknown_operation_rejected(self):
        with pytest.raises(ServiceDescriptionError):
            Conversation(
                operations=(Operation("a", "task:A"),),
                flow=(("a", "ghost"),),
            )

    def test_unknown_operation_lookup_raises(self):
        conv = Conversation(operations=(Operation("a", "task:A"),))
        with pytest.raises(ServiceDescriptionError):
            conv.operation("b")
