"""Tests for the composition execution engine."""

from __future__ import annotations

import pytest

from repro.qos.properties import STANDARD_PROPERTIES
from repro.qos.values import QoSVector
from repro.services.generator import ServiceGenerator
from repro.adaptation.monitoring import QoSMonitor
from repro.composition.qassa import QASSA, QassaConfig
from repro.composition.request import GlobalConstraint, UserRequest
from repro.composition.selection import CandidateSets
from repro.composition.task import (
    Task,
    conditional,
    leaf,
    loop,
    parallel,
    sequence,
)
from repro.execution.clock import SimulatedClock
from repro.execution.engine import ExecutionEngine

PROPS = {
    name: STANDARD_PROPERTIES[name]
    for name in ("response_time", "cost", "availability")
}


def build_plan(tree, seed=41, alternates=3):
    task = Task("t", tree)
    generator = ServiceGenerator(PROPS, seed=seed)
    candidates = CandidateSets(
        task,
        {a.name: generator.candidates(a.capability, 8)
         for a in task.activities},
    )
    request = UserRequest(
        task,
        constraints=(GlobalConstraint.at_most("response_time", 1e9),),
        weights={n: 1.0 for n in PROPS},
    )
    return QASSA(PROPS, config=QassaConfig(alternates_kept=alternates)).select(
        request, candidates
    )


def echo_invoker(service, timestamp):
    """Returns exactly the advertised QoS (a perfectly honest provider)."""
    return service.advertised_qos


class TestSequentialExecution:
    def test_all_activities_invoked_in_order(self):
        plan = build_plan(sequence(leaf("A", "task:A"), leaf("B", "task:B"),
                                   leaf("C", "task:C")))
        engine = ExecutionEngine(PROPS, echo_invoker)
        report = engine.execute(plan)
        assert report.succeeded
        assert [r.activity_name for r in report.invocations] == ["A", "B", "C"]

    def test_clock_advances_by_response_times(self):
        plan = build_plan(sequence(leaf("A", "task:A"), leaf("B", "task:B")))
        clock = SimulatedClock()
        engine = ExecutionEngine(PROPS, echo_invoker, clock=clock)
        report = engine.execute(plan)
        binding = plan.binding()
        expected_ms = sum(s.qos("response_time") for s in binding.values())
        assert report.elapsed == pytest.approx(expected_ms / 1000.0)

    def test_cost_accumulated(self):
        plan = build_plan(sequence(leaf("A", "task:A"), leaf("B", "task:B")))
        engine = ExecutionEngine(PROPS, echo_invoker)
        report = engine.execute(plan)
        expected = sum(s.qos("cost") for s in plan.binding().values())
        assert report.total_cost == pytest.approx(expected)


class TestParallelExecution:
    def test_parallel_elapsed_is_slowest_branch(self):
        plan = build_plan(parallel(leaf("B", "task:B"), leaf("C", "task:C")))
        engine = ExecutionEngine(PROPS, echo_invoker)
        report = engine.execute(plan)
        binding = plan.binding()
        slowest_ms = max(
            binding["B"].qos("response_time"), binding["C"].qos("response_time")
        )
        assert report.elapsed == pytest.approx(slowest_ms / 1000.0)
        assert len(report.invocations) == 2


class TestConditionalExecution:
    def test_exactly_one_branch_runs(self):
        plan = build_plan(
            sequence(
                leaf("A", "task:A"),
                conditional(leaf("B", "task:B"), leaf("C", "task:C")),
            )
        )
        engine = ExecutionEngine(PROPS, echo_invoker, seed=3)
        report = engine.execute(plan)
        names = {r.activity_name for r in report.invocations}
        assert "A" in names
        assert len(names & {"B", "C"}) == 1

    def test_branch_frequency_follows_probabilities(self):
        plan = build_plan(
            conditional(leaf("B", "task:B"), leaf("C", "task:C"))
        )
        # Force probabilities by rebuilding the task with skewed odds.
        task = Task(
            "t",
            conditional(leaf("B", "task:B"), leaf("C", "task:C"),
                        probabilities=(0.9, 0.1)),
        )
        plan.task = task
        picks = {"B": 0, "C": 0}
        for seed in range(60):
            engine = ExecutionEngine(PROPS, echo_invoker, seed=seed)
            report = engine.execute(plan)
            picks[report.invocations[0].activity_name] += 1
        assert picks["B"] > picks["C"]


class TestLoopExecution:
    def test_expected_iterations_pins_count(self):
        plan = build_plan(loop(leaf("A", "task:A"), max_iterations=5,
                               expected_iterations=3.0))
        engine = ExecutionEngine(PROPS, echo_invoker)
        report = engine.execute(plan)
        assert len(report.invocations_of("A")) == 3

    def test_random_iterations_within_bounds(self):
        plan = build_plan(loop(leaf("A", "task:A"), max_iterations=4))
        for seed in range(10):
            engine = ExecutionEngine(PROPS, echo_invoker, seed=seed)
            report = engine.execute(plan)
            assert 1 <= len(report.invocations_of("A")) <= 4


class TestFailureHandling:
    def test_retry_over_alternates_on_failure(self):
        plan = build_plan(sequence(leaf("A", "task:A")))
        primary = plan.selections["A"].primary

        def flaky(service, timestamp):
            if service == primary:
                return None  # primary always fails
            return service.advertised_qos

        engine = ExecutionEngine(PROPS, flaky, max_attempts_per_activity=3)
        report = engine.execute(plan)
        assert report.succeeded
        records = report.invocations_of("A")
        assert records[0].succeeded is False
        assert records[-1].succeeded is True
        assert records[-1].service_id != primary.service_id

    def test_all_attempts_fail_marks_activity(self):
        plan = build_plan(sequence(leaf("A", "task:A"), leaf("B", "task:B")))

        def dead(service, timestamp):
            return None

        engine = ExecutionEngine(PROPS, dead, max_attempts_per_activity=2)
        report = engine.execute(plan)
        assert not report.succeeded
        assert report.failed_activity == "A"
        # B was never attempted: the sequence stops at the failure.
        assert report.invocations_of("B") == []

    def test_failures_reported_to_monitor(self):
        plan = build_plan(sequence(leaf("A", "task:A")))
        primary = plan.selections["A"].primary
        monitor = QoSMonitor(PROPS)
        failures = []
        monitor.subscribe(lambda t: failures.append(t.service_id))

        def flaky(service, timestamp):
            return None if service == primary else service.advertised_qos

        engine = ExecutionEngine(PROPS, flaky, monitor=monitor)
        engine.execute(plan)
        assert primary.service_id in failures

    def test_observed_qos_fed_to_monitor(self):
        plan = build_plan(sequence(leaf("A", "task:A")))
        monitor = QoSMonitor(PROPS)
        engine = ExecutionEngine(PROPS, echo_invoker, monitor=monitor)
        engine.execute(plan)
        primary = plan.selections["A"].primary
        assert monitor.estimate(primary.service_id, "response_time") == (
            pytest.approx(primary.qos("response_time"))
        )


class TestEngineEdgeCases:
    def test_parallel_branch_failure_fails_composition(self):
        plan = build_plan(parallel(leaf("B", "task:B"), leaf("C", "task:C")))
        doomed = plan.selections["C"]

        def invoker(service, timestamp):
            if service in doomed.services:
                return None
            return service.advertised_qos

        engine = ExecutionEngine(PROPS, invoker, max_attempts_per_activity=2)
        report = engine.execute(plan)
        assert not report.succeeded
        assert report.failed_activity == "C"
        # The healthy branch ran before the failure surfaced.
        assert report.invocations_of("B")

    def test_loop_expected_iterations_rounds(self):
        plan = build_plan(loop(leaf("A", "task:A"), max_iterations=5,
                               expected_iterations=2.6))
        engine = ExecutionEngine(PROPS, echo_invoker)
        report = engine.execute(plan)
        assert len(report.invocations_of("A")) == 3  # round(2.6)

    def test_invocation_without_response_time_advances_nothing(self):
        from repro.qos.values import QoSVector

        plan = build_plan(sequence(leaf("A", "task:A")))

        def costless_invoker(service, timestamp):
            return QoSVector({"cost": 1.0}, PROPS)

        engine = ExecutionEngine(PROPS, costless_invoker)
        report = engine.execute(plan)
        assert report.succeeded
        assert report.elapsed == 0.0
        assert report.total_cost == 1.0

    def test_report_invocation_accessors(self):
        plan = build_plan(sequence(leaf("A", "task:A"), leaf("B", "task:B")))
        engine = ExecutionEngine(PROPS, echo_invoker)
        report = engine.execute(plan)
        assert len(report.invocations_of("A")) == 1
        assert report.invocations_of("nope") == []
        assert report.elapsed >= 0

    def test_clock_restored_after_parallel_branch_failure(self):
        plan = build_plan(parallel(leaf("B", "task:B"), leaf("C", "task:C")))
        doomed = plan.selections["C"]

        def invoker(service, timestamp):
            if service in doomed.services:
                return None
            return service.advertised_qos

        clock = SimulatedClock(100.0)
        engine = ExecutionEngine(PROPS, invoker, clock=clock,
                                 max_attempts_per_activity=1)
        engine.execute(plan)
        # The engine must hold the shared clock again, not a branch fork.
        assert engine.clock is clock
        assert clock.now() >= 100.0
