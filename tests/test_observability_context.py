"""Tests for trace-context propagation (repro.observability.context)."""

from __future__ import annotations

import threading

import pytest

from repro.observability import Observability
from repro.observability.context import (
    TraceContext,
    assemble_traces,
    trace_spans,
)


class TestTraceContext:
    def test_mint_produces_unique_rootless_contexts(self):
        first, second = TraceContext.mint(), TraceContext.mint()
        assert first.trace_id != second.trace_id
        assert first.parent_span_id is None

    def test_child_keeps_the_trace_id_and_reparents(self):
        root = TraceContext.mint()
        child = root.child("s0042")
        assert child.trace_id == root.trace_id
        assert child.parent_span_id == "s0042"
        assert root.parent_span_id is None  # contexts are immutable

    def test_contexts_are_frozen(self):
        context = TraceContext.mint()
        with pytest.raises(AttributeError):
            context.trace_id = "tampered"

    def test_dict_round_trip(self):
        context = TraceContext.mint().child("s0007")
        assert TraceContext.from_dict(context.to_dict()) == context

    def test_header_round_trip_crosses_a_text_boundary(self):
        context = TraceContext.mint().child("s0009")
        header = context.to_header()
        assert isinstance(header, str)
        assert TraceContext.from_header(header) == context

    def test_rootless_header_round_trip(self):
        context = TraceContext.mint()
        assert TraceContext.from_header(context.to_header()) == context


class TestAdoption:
    def test_adopted_spans_carry_the_trace_id(self):
        obs = Observability()
        context = TraceContext.mint()
        with obs.adopt(context):
            with obs.span("work"):
                pass
        (root,) = obs.spans
        assert root.trace_id == context.trace_id

    def test_nested_spans_inherit_from_the_in_thread_parent(self):
        obs = Observability()
        context = TraceContext.mint()
        with obs.adopt(context):
            with obs.span("outer"):
                with obs.span("inner"):
                    pass
        (root,) = obs.spans
        (inner,) = root.children
        assert inner.trace_id == context.trace_id
        assert inner.parent_id == root.span_id

    def test_adoption_restores_the_previous_context_on_exit(self):
        obs = Observability()
        outer, inner = TraceContext.mint(), TraceContext.mint()
        with obs.adopt(outer):
            with obs.adopt(inner):
                assert obs.tracer.current_trace_id() == inner.trace_id
            assert obs.tracer.current_trace_id() == outer.trace_id
        assert obs.tracer.current_trace_id() is None

    def test_adoption_is_thread_local(self):
        obs = Observability()
        context = TraceContext.mint()
        seen = {}

        def worker():
            seen["other"] = obs.tracer.current_trace_id()

        with obs.adopt(context):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["other"] is None


class TestAssembly:
    def _linked_run(self, obs, context, count=2):
        with obs.adopt(context):
            with obs.span("root") as root:
                for _ in range(count):
                    with obs.span("child"):
                        pass
        return root

    def test_assemble_groups_spans_by_trace_id(self):
        obs = Observability()
        contexts = [TraceContext.mint() for _ in range(3)]
        for context in contexts:
            self._linked_run(obs, context)
        traces = assemble_traces(obs.tracer.all_spans())
        assert sorted(traces) == sorted(c.trace_id for c in contexts)
        for trace in traces.values():
            assert len(trace.roots) == 1

    def test_cross_thread_fragments_reattach_under_their_root(self):
        obs = Observability()
        context = TraceContext.mint()
        with obs.adopt(context):
            with obs.span("request") as root:
                pass
        # A second thread adopts the child context (the handoff the
        # runtime performs) and contributes a fragment.
        child_context = context.child(root.span_id)

        def worker():
            with obs.adopt(child_context):
                with obs.span("retry"):
                    pass

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        trace = assemble_traces(obs.tracer.all_spans())[context.trace_id]
        # The fragment's parent is inside the trace, so there is still
        # exactly one root.
        assert [span.name for span in trace.roots] == ["request"]
        assert trace.root is not None
        assert [s.name for s in trace.children_of(trace.root.span_id)] == [
            "retry"
        ]

    def test_trace_spans_filters_one_trace(self):
        obs = Observability()
        kept, dropped = TraceContext.mint(), TraceContext.mint()
        self._linked_run(obs, kept)
        self._linked_run(obs, dropped)
        spans = trace_spans(obs.spans, kept.trace_id)
        assert spans
        assert all(span.trace_id == kept.trace_id for span in spans)

    def test_to_records_emit_the_trace_id(self):
        obs = Observability()
        context = TraceContext.mint()
        self._linked_run(obs, context)
        trace = assemble_traces(obs.spans)[context.trace_id]
        records = trace.to_records()
        assert records
        assert all(r["trace_id"] == context.trace_id for r in records)
