"""Tests for the four QoS ontologies (Core, Infrastructure, Service, User)."""

from __future__ import annotations

import pytest

from repro.qos.core_ontology import build_core_ontology
from repro.qos.infrastructure import (
    build_infrastructure_ontology,
    declare_cross_layer_dependencies,
)
from repro.qos.service_qos import build_service_ontology
from repro.qos.user_qos import build_user_ontology
from repro.semantics.ontology import Ontology


class TestCoreOntology:
    def setup_method(self):
        self.onto = build_core_ontology()

    def test_property_categories_under_root(self):
        for category in (
            "qos:PerformanceProperty",
            "qos:DependabilityProperty",
            "qos:CostProperty",
            "qos:SecurityProperty",
            "qos:TrustProperty",
        ):
            assert self.onto.subsumes("qos:QoSProperty", category)
            assert self.onto.subsumes("qos:QoSConcept", category)

    def test_metric_taxonomy(self):
        assert self.onto.subsumes("qos:QoSMetric", "qos:MeanMetric")
        assert self.onto.subsumes("qos:StatisticalMetric", "qos:PercentileMetric")
        assert not self.onto.subsumes("qos:DeterministicMetric", "qos:MeanMetric")

    def test_monotonicity_concepts(self):
        assert self.onto.subsumes("qos:Monotonicity", "qos:Increasing")
        assert self.onto.subsumes("qos:Monotonicity", "qos:Decreasing")

    def test_validates(self):
        self.onto.validate()


class TestInfrastructureOntology:
    def setup_method(self):
        self.onto = build_infrastructure_ontology()

    def test_network_properties_are_performance(self):
        assert self.onto.subsumes("qos:PerformanceProperty", "iqos:Bandwidth")
        assert self.onto.subsumes("iqos:NetworkProperty", "iqos:NetworkLatency")

    def test_device_properties(self):
        assert self.onto.subsumes("iqos:DeviceProperty", "iqos:BatteryLevel")
        assert self.onto.subsumes("qos:QoSProperty", "iqos:CpuLoad")

    def test_dependability_properties(self):
        assert self.onto.subsumes(
            "qos:DependabilityProperty", "iqos:NodeAvailability"
        )

    def test_monotonicity_facts(self):
        assert (
            "iqos:NetworkLatency", "qos:hasMonotonicity", "qos:Decreasing"
        ) in self.onto.store
        assert (
            "iqos:Bandwidth", "qos:hasMonotonicity", "qos:Increasing"
        ) in self.onto.store

    def test_self_contained_includes_core(self):
        assert self.onto.is_class("qos:QoSConcept")


class TestServiceOntology:
    def setup_method(self):
        self.onto = build_service_ontology()

    def test_response_time_breakdown(self):
        assert self.onto.subsumes("sqos:ResponseTime", "sqos:ExecutionTime")
        assert self.onto.subsumes("sqos:ResponseTime", "sqos:TransmissionTime")
        assert self.onto.subsumes("qos:PerformanceProperty", "sqos:ResponseTime")

    def test_cost_breakdown(self):
        assert self.onto.subsumes("sqos:Cost", "sqos:PerUseCost")
        assert self.onto.subsumes("qos:CostProperty", "sqos:FixedCost")

    def test_aggregation_mode_facts(self):
        assert (
            "sqos:ResponseTime", "qos:hasAggregationMode", "qos:Additive"
        ) in self.onto.store
        assert (
            "sqos:Availability", "qos:hasAggregationMode", "qos:Multiplicative"
        ) in self.onto.store
        assert (
            "sqos:Throughput", "qos:hasAggregationMode", "qos:MinAggregated"
        ) in self.onto.store

    def test_trust_property(self):
        assert self.onto.subsumes("qos:TrustProperty", "sqos:Reputation")


class TestUserOntology:
    def setup_method(self):
        core = build_core_ontology()
        merged = Ontology("merged")
        merged.merge(build_infrastructure_ontology(core))
        merged.merge(build_service_ontology(core))
        self.onto = build_user_ontology(merged)

    def test_speed_equivalent_to_response_time(self):
        assert "sqos:ResponseTime" in self.onto.equivalents("uqos:Speed")
        assert self.onto.subsumes("uqos:Speed", "sqos:ResponseTime")
        assert self.onto.subsumes("sqos:ResponseTime", "uqos:Speed")

    def test_price_equivalent_to_cost(self):
        assert self.onto.subsumes("uqos:Price", "sqos:Cost")

    def test_dependability_covers_availability_and_reliability(self):
        assert self.onto.subsumes("uqos:Dependability", "sqos:Availability")
        assert self.onto.subsumes("uqos:Dependability", "sqos:Reliability")
        # But not the other way around.
        assert not self.onto.subsumes("sqos:Availability", "uqos:Dependability")

    def test_battery_friendliness_maps_to_infrastructure(self):
        assert self.onto.subsumes("uqos:BatteryFriendliness",
                                  "iqos:EnergyConsumption")

    def test_cross_layer_dependencies(self):
        declare_cross_layer_dependencies(self.onto)
        assert (
            "sqos:ResponseTime", "qos:dependsOn", "iqos:NetworkLatency"
        ) in self.onto.store
        assert (
            "sqos:Availability", "qos:dependsOn", "iqos:BatteryLevel"
        ) in self.onto.store
