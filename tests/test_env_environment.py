"""Tests for the pervasive environment simulator."""

from __future__ import annotations

import pytest

from repro.errors import EnvironmentError_
from repro.qos.properties import STANDARD_PROPERTIES
from repro.services.generator import ServiceGenerator
from repro.env.device import DeviceClass
from repro.env.environment import EnvironmentConfig, PervasiveEnvironment

PROPS = {
    name: STANDARD_PROPERTIES[name]
    for name in ("response_time", "cost", "availability")
}


@pytest.fixture
def environment():
    return PervasiveEnvironment(seed=3)


@pytest.fixture
def generator():
    return ServiceGenerator(PROPS, seed=3)


class TestTopology:
    def test_add_device(self, environment):
        device = environment.add_device("d1", DeviceClass.LAPTOP)
        assert environment.device("d1") is device
        assert environment.network.has_link("d1")

    def test_duplicate_device_rejected(self, environment):
        environment.add_device("d1")
        with pytest.raises(EnvironmentError_):
            environment.add_device("d1")

    def test_unknown_device_raises(self, environment):
        with pytest.raises(EnvironmentError_):
            environment.device("ghost")

    def test_host_service(self, environment, generator):
        environment.add_device("d1")
        service = generator.service("task:X")
        environment.host(service, "d1")
        assert service.service_id in environment.registry
        assert service.host_device == "d1"
        assert environment.hosting_device(service.service_id).device_id == "d1"

    def test_host_on_new_device(self, environment, generator):
        service = environment.host_on_new_device(generator.service("task:X"))
        assert environment.hosting_device(service.service_id) is not None


class TestLivenessAndInvocation:
    def test_alive_when_hosted_and_device_up(self, environment, generator):
        service = environment.host_on_new_device(generator.service("task:X"))
        assert environment.is_alive(service)

    def test_dead_when_withdrawn(self, environment, generator):
        service = environment.host_on_new_device(generator.service("task:X"))
        environment.registry.withdraw(service.service_id)
        assert not environment.is_alive(service)

    def test_dead_when_device_down(self, environment, generator):
        service = environment.host_on_new_device(generator.service("task:X"))
        environment.hosting_device(service.service_id).online = False
        assert not environment.is_alive(service)
        assert environment.invoke(service, 0.0) is None

    def test_kill_service(self, environment, generator):
        service = environment.host_on_new_device(generator.service("task:X"))
        environment.kill_service(service.service_id)
        assert not environment.is_alive(service)

    def test_kill_service_leaves_device_and_cohosted_alive(
        self, environment, generator
    ):
        first = environment.host_on_new_device(generator.service("task:X"))
        second = generator.service("task:Y")
        environment.host(second, first.host_device)
        environment.kill_service(first.service_id)
        assert not environment.is_alive(first)
        # Killing one service is not a device crash: the host and its
        # other services keep running.
        assert environment.device(first.host_device).alive
        assert environment.is_alive(second)

    def test_kill_service_discards_parked_copy(self, environment, generator):
        service = environment.host_on_new_device(generator.service("task:X"))
        environment.registry.withdraw(service.service_id)
        environment._parked[service.service_id] = service
        environment.kill_service(service.service_id)
        # A killed service must not resurrect through churn rejoin.
        assert service.service_id not in environment._parked

    def test_kill_device_takes_all_hosted_services_down(
        self, environment, generator
    ):
        first = environment.host_on_new_device(generator.service("task:X"))
        second = generator.service("task:Y")
        environment.host(second, first.host_device)
        environment.kill_device(first.host_device)
        assert not environment.is_alive(first)
        assert not environment.is_alive(second)
        assert environment.invoke(first, 0.0) is None

    def test_invoke_returns_distorted_qos(self, generator):
        environment = PervasiveEnvironment(
            EnvironmentConfig(qos_noise=0.0), seed=4
        )
        service = environment.host_on_new_device(
            generator.service("task:X"), DeviceClass.SERVER
        )
        # Force a fully-available service so the lottery never fails.
        from repro.qos.values import QoSVector

        service = service.with_qos(
            QoSVector({"response_time": 100.0, "cost": 1.0,
                       "availability": 1.0}, PROPS)
        )
        environment.registry.publish(service)
        observed = environment.invoke(service, 0.0)
        assert observed is not None
        # Link latency adds to response time; cost is noise-free here.
        assert observed["response_time"] > 100.0 * 0.2  # slowdown can shrink
        assert observed["cost"] == pytest.approx(1.0)

    def test_unavailable_service_sometimes_fails(self, generator):
        environment = PervasiveEnvironment(seed=5)
        service = environment.host_on_new_device(generator.service("task:X"))
        from repro.qos.values import QoSVector

        service = service.with_qos(
            QoSVector({"response_time": 10.0, "cost": 1.0,
                       "availability": 0.3}, PROPS)
        )
        environment.registry.publish(service)
        outcomes = [environment.invoke(service, float(i)) for i in range(50)]
        failures = sum(1 for o in outcomes if o is None)
        assert failures > 5  # ~70% expected

    def test_zero_availability_never_succeeds(self, generator):
        # Regression: ``advertised.get("availability") or 1.0`` used to
        # treat an advertised 0.0 as fully available.
        environment = PervasiveEnvironment(seed=5)
        service = environment.host_on_new_device(generator.service("task:X"))
        from repro.qos.values import QoSVector

        service = service.with_qos(
            QoSVector({"response_time": 10.0, "cost": 1.0,
                       "availability": 0.0}, PROPS)
        )
        environment.registry.publish(service)
        assert all(
            environment.invoke(service, float(i)) is None for i in range(30)
        )

    def test_missing_availability_assumed_available(self, generator):
        environment = PervasiveEnvironment(
            EnvironmentConfig(qos_noise=0.0), seed=4
        )
        service = environment.host_on_new_device(
            generator.service("task:X"), DeviceClass.SERVER
        )
        from repro.qos.values import QoSVector

        props = {n: PROPS[n] for n in ("response_time", "cost")}
        service = service.with_qos(
            QoSVector({"response_time": 10.0, "cost": 1.0}, props)
        )
        environment.registry.publish(service)
        outcomes = [environment.invoke(service, float(i)) for i in range(20)]
        # No availability advertised ⇒ the lottery never fires; only link
        # loss can fail an invocation here.
        assert sum(1 for o in outcomes if o is not None) >= 15

    def test_invocation_drains_battery(self, generator):
        environment = PervasiveEnvironment(
            EnvironmentConfig(qos_noise=0.0), seed=6
        )
        service = environment.host_on_new_device(
            generator.service("task:X"), DeviceClass.SENSOR
        )
        device = environment.hosting_device(service.service_id)
        before = device.battery_remaining_wh
        for i in range(20):
            environment.invoke(service, float(i))
        assert device.battery_remaining_wh < before


class TestDynamics:
    def test_step_advances_clock(self, environment):
        environment.step(5)
        assert environment.clock.now() == pytest.approx(5.0)

    def test_churn_withdraws_and_rejoins(self, generator):
        environment = PervasiveEnvironment(
            EnvironmentConfig(churn_leave_rate=1.0, churn_join_rate=0.0),
            seed=7,
        )
        environment.host_on_new_device(generator.service("task:X"))
        environment.step()
        assert len(environment.registry) == 0
        # Now force rejoin.
        environment.config = EnvironmentConfig(
            churn_leave_rate=0.0, churn_join_rate=1.0
        )
        environment.step()
        assert len(environment.registry) == 1

    def test_degrade_link(self, environment, generator):
        service = environment.host_on_new_device(generator.service("task:X"))
        device_id = service.host_device
        before = environment.network.link(device_id).latency.value
        environment.degrade_link(device_id, fraction=0.8)
        assert environment.network.link(device_id).latency.value > before
