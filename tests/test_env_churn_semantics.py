"""Churn semantics: leave parks the service, rejoin republishes it intact.

The churn model simulates providers moving out of and back into range: a
withdrawn service is *parked*, not destroyed, and rejoins with exactly the
description it left with.  The population is conserved — services move
between the registry and the parking lot, they never leak or duplicate.
"""

from __future__ import annotations

import pytest

from repro.qos.properties import STANDARD_PROPERTIES
from repro.services.generator import ServiceGenerator
from repro.env.environment import EnvironmentConfig, PervasiveEnvironment

PROPS = {
    name: STANDARD_PROPERTIES[name]
    for name in ("response_time", "cost", "availability")
}


def populated_environment(config, count=8, seed=13):
    environment = PervasiveEnvironment(config, seed=seed)
    generator = ServiceGenerator(PROPS, seed=seed)
    for _ in range(count):
        environment.host_on_new_device(generator.service("task:X"))
    return environment


class TestLeaveParks:
    def test_withdrawn_service_is_parked_not_destroyed(self):
        environment = populated_environment(
            EnvironmentConfig(churn_leave_rate=1.0), count=3
        )
        before = {s.service_id: s for s in environment.registry.services()}
        environment.step()
        gone = set(before) - {
            s.service_id for s in environment.registry.services()
        }
        assert len(gone) == 1
        victim_id = gone.pop()
        assert victim_id in environment._parked
        # Parked copy is the very description that was withdrawn.
        assert environment._parked[victim_id] is before[victim_id]

    def test_rejoined_service_is_identical(self):
        environment = populated_environment(
            EnvironmentConfig(churn_leave_rate=1.0), count=3
        )
        before = {s.service_id: s for s in environment.registry.services()}
        environment.step()
        environment.config = EnvironmentConfig(churn_join_rate=1.0)
        environment.step()
        after = {s.service_id: s for s in environment.registry.services()}
        assert set(after) == set(before)
        for service_id, service in after.items():
            original = before[service_id]
            assert service is original
            assert service.capability == original.capability
            assert service.host_device == original.host_device
            assert list(service.advertised_qos) == list(
                original.advertised_qos
            )


class TestPopulationConservation:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_registry_plus_parked_is_conserved(self, seed):
        environment = populated_environment(
            EnvironmentConfig(churn_leave_rate=0.6, churn_join_rate=0.4),
            count=10, seed=seed,
        )
        total = len(environment.registry)
        for _ in range(200):
            environment.step()
            assert (
                len(environment.registry) + len(environment._parked) == total
            )

    def test_no_duplicates_across_cycles(self):
        environment = populated_environment(
            EnvironmentConfig(churn_leave_rate=0.8, churn_join_rate=0.8),
            count=6,
        )
        for _ in range(100):
            environment.step()
            ids = [s.service_id for s in environment.registry.services()]
            assert len(ids) == len(set(ids))
            assert not set(ids) & set(environment._parked)

    def test_churn_is_seed_deterministic(self):
        # Service ids come from a process-global counter, so compare
        # *positions* in creation order, not raw ids.
        def trace(seed):
            environment = populated_environment(
                EnvironmentConfig(churn_leave_rate=0.5, churn_join_rate=0.5),
                count=6, seed=seed,
            )
            order = {
                s.service_id: i
                for i, s in enumerate(environment.registry.services())
            }
            snapshots = []
            for _ in range(50):
                environment.step()
                snapshots.append(tuple(sorted(
                    order[s.service_id]
                    for s in environment.registry.services()
                )))
            return snapshots

        assert trace(21) == trace(21)
        assert trace(21) != trace(22)  # different seeds, different churn
