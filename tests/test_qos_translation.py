"""Tests for user-vocabulary requirement translation (§III.2.4 in action)."""

from __future__ import annotations

import pytest

from repro.errors import QoSModelError
from repro.qos import units as u
from repro.qos.model import build_end_to_end_model
from repro.qos.translation import (
    UserRequirement,
    build_request,
    translate_requirements,
    translate_weights,
)
from repro.composition.task import Task, leaf, sequence
from repro.semantics.matching import MatchDegree


@pytest.fixture(scope="module")
def model():
    return build_end_to_end_model()


@pytest.fixture
def task():
    return Task("t", sequence(leaf("A"), leaf("B")))


class TestTranslateRequirements:
    def test_speed_maps_to_response_time_upper_bound(self, model):
        constraints, reports = translate_requirements(
            model, [UserRequirement("uqos:Speed", 2000.0)]
        )
        assert len(constraints) == 1
        constraint = constraints[0]
        assert constraint.property_name == "response_time"
        assert constraint.operator == "<="          # natural for negative
        assert constraint.bound == 2000.0
        assert reports[0].degrees == (MatchDegree.EXACT,)

    def test_unit_conversion_applied(self, model):
        constraints, _ = translate_requirements(
            model, [UserRequirement("uqos:Speed", 2.0, unit=u.SECONDS)]
        )
        assert constraints[0].bound == pytest.approx(2000.0)  # ms canonical

    def test_dependability_fans_out(self, model):
        constraints, reports = translate_requirements(
            model, [UserRequirement("uqos:Dependability", 0.9)]
        )
        names = sorted(c.property_name for c in constraints)
        assert names == ["availability", "reliability"]
        assert all(c.operator == ">=" for c in constraints)
        assert all(d is MatchDegree.PLUGIN for d in reports[0].degrees)

    def test_price_with_explicit_operator(self, model):
        constraints, _ = translate_requirements(
            model, [UserRequirement("uqos:Price", 10.0, operator="<=")]
        )
        assert constraints[0].property_name == "cost"
        assert constraints[0].operator == "<="

    def test_provider_terms_also_accepted(self, model):
        constraints, _ = translate_requirements(
            model, [UserRequirement("sqos:Availability", 0.95)]
        )
        assert constraints[0].property_name == "availability"
        assert constraints[0].operator == ">="

    def test_unresolvable_concept_raises(self, model):
        with pytest.raises(QoSModelError):
            translate_requirements(
                model, [UserRequirement("uqos:RenderingQuality", 5.0)]
            )

    def test_unknown_concept_raises(self, model):
        with pytest.raises(QoSModelError):
            translate_requirements(
                model, [UserRequirement("uqos:Vibes", 1.0)]
            )


class TestTranslateWeights:
    def test_simple_mapping(self, model):
        weights = translate_weights(model, {"uqos:Speed": 0.6,
                                            "uqos:Price": 0.4})
        assert weights == {"response_time": 0.6, "cost": 0.4}

    def test_umbrella_weight_splits(self, model):
        weights = translate_weights(model, {"uqos:Dependability": 0.8})
        assert weights["availability"] == pytest.approx(0.4)
        assert weights["reliability"] == pytest.approx(0.4)

    def test_weights_accumulate_on_same_property(self, model):
        weights = translate_weights(
            model, {"uqos:Speed": 0.3, "sqos:ResponseTime": 0.2}
        )
        assert weights == {"response_time": pytest.approx(0.5)}

    def test_negative_weight_rejected(self, model):
        with pytest.raises(QoSModelError):
            translate_weights(model, {"uqos:Speed": -1.0})


class TestBuildRequest:
    def test_full_request_round_trip(self, model, task):
        request, reports = build_request(
            model,
            task,
            requirements=[
                UserRequirement("uqos:Speed", 3.0, unit=u.SECONDS),
                UserRequirement("uqos:Dependability", 0.25),
            ],
            user_weights={"uqos:Speed": 0.5, "uqos:Price": 0.2,
                          "uqos:Dependability": 0.3},
        )
        assert len(request.constraints) == 3  # speed + avail + reliability
        assert set(request.weights) == {
            "response_time", "cost", "availability", "reliability",
        }
        assert len(reports) == 2

    def test_translated_request_drives_selection(self, model, task):
        """End to end: user vocabulary in, feasible composition out."""
        from repro.qos.properties import STANDARD_PROPERTIES
        from repro.services.generator import ServiceGenerator
        from repro.composition.qassa import QASSA
        from repro.composition.selection import CandidateSets

        props = {
            n: STANDARD_PROPERTIES[n]
            for n in ("response_time", "cost", "availability", "reliability")
        }
        request, _ = build_request(
            model, task,
            requirements=[UserRequirement("uqos:Speed", 10.0, unit=u.SECONDS)],
            user_weights={"uqos:Speed": 1.0, "uqos:Price": 1.0},
        )
        generator = ServiceGenerator(props, seed=17)
        candidates = CandidateSets(
            task,
            {a.name: generator.candidates(a.capability, 8)
             for a in task.activities},
        )
        plan = QASSA(props).select(request, candidates)
        assert plan.feasible
        assert plan.aggregated_qos["response_time"] <= 10_000.0
