"""Setuptools entry point (kept for offline editable installs).

The execution environment has no network access and no ``wheel`` package, so
PEP 517 editable builds (which need ``bdist_wheel``) fail.  With this
``setup.py`` present, ``pip install -e . --no-build-isolation`` falls back to
the legacy ``setup.py develop`` path, which works offline.
"""

from setuptools import setup

setup()
