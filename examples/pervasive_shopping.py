#!/usr/bin/env python
"""The pervasive shopping scenario (paper §I.1, Fig. I.1).

Bob submits a shopping task from the commercial centre's lounge.  The
middleware discovers shop services semantically (his abstract
``task:Payment`` is satisfied by card *and* mobile payment providers),
selects a composition under his budget and latency constraints with QASSA,
executes it — and, when we kill the selected order service mid-scenario,
repairs the composition by substitution.

Run:  python examples/pervasive_shopping.py
"""

from __future__ import annotations

from repro.api import QASOM, build_shopping_scenario


def main() -> None:
    scenario = build_shopping_scenario(services_per_activity=12, seed=7)
    middleware = QASOM.for_environment(
        scenario.environment,
        scenario.properties,
        ontology=scenario.ontology,
        repository=scenario.repository,
    )

    print("Bob's request:")
    for constraint in scenario.request.constraints:
        print(f"  constraint: {constraint}")
    print(f"  weights: {dict(scenario.request.weights)}")

    # --- compose: the platform proposes ranked alternatives (§I.1) ---------
    proposals = middleware.submit(
        scenario.request, execute=False, ranked=3
    ).alternatives()
    print(f"\nthe platform proposes {len(proposals)} composition(s), "
          "ranked by QoS:")
    for rank, proposal in enumerate(proposals, start=1):
        shops = ", ".join(
            s.primary.name for s in proposal.selections.values()
        )
        print(f"  #{rank}: utility {proposal.utility:.3f} "
              f"(cost {proposal.aggregated_qos['cost']:.2f} EUR, "
              f"rt {proposal.aggregated_qos['response_time']:.0f} ms) "
              f"— {shops}")

    # Bob picks the best one.
    plan = proposals[0]
    print(f"\nBob chooses proposal #1 "
          f"({plan.statistics.combinations_explored} level combinations "
          f"explored in {plan.statistics.elapsed_seconds * 1000:.1f} ms):")
    for activity, selection in plan.selections.items():
        print(f"  {activity:8s} -> {selection.primary.name:22s}"
              f"  [{selection.primary.capability}]")
    print("aggregated QoS:", plan.aggregated_qos)

    # --- a provider vanishes (Bob's chosen shop closes) ---------------------
    victim = plan.selections["Order"].primary
    print(f"\n!!! provider of 'Order' ({victim.name}) leaves the market")
    scenario.environment.kill_service(victim.service_id)

    manager = middleware.adaptation_manager(plan)
    trigger = middleware.monitor.report_failure(victim.service_id, 0.0)
    outcome = manager.handle(trigger)
    print(f"adaptation action: {outcome.action.value}")
    if outcome.substitution is not None:
        print(f"  {outcome.substitution.removed.name} -> "
              f"{outcome.substitution.replacement.name} "
              f"(fresh discovery: "
              f"{outcome.substitution.used_fresh_candidates})")

    # --- execute the repaired composition ----------------------------------
    result = middleware.submit(plan=plan).result()
    print(f"\nexecution {'succeeded' if result.report.succeeded else 'FAILED'}"
          f"; {len(result.report.invocations)} invocations, "
          f"{result.report.total_cost:.2f} EUR spent")
    summary = manager.summary()
    if summary:
        print("adaptation log:", summary)


if __name__ == "__main__":
    main()
