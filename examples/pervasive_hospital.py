#!/usr/bin/env python
"""The pervasive medical visit scenario (paper §I.1).

Bob's visit is a structured task — registration, a re-diagnosis loop,
pharmacy and follow-up scheduling in parallel, then payment — running on
the hospital's fixed (server-class) infrastructure.  This example focuses
on the *composition model*: pattern-aware QoS aggregation and how the
pessimistic/optimistic/mean-value approaches price the same composition
differently.

Run:  python examples/pervasive_hospital.py
"""

from __future__ import annotations

from repro.api import (
    AggregationApproach,
    QASOM,
    aggregate_composition,
    build_hospital_scenario,
)


def main() -> None:
    scenario = build_hospital_scenario(services_per_activity=10, seed=11)
    print(f"task '{scenario.task.name}' "
          f"({scenario.task.size()} activities, patterns: "
          f"{scenario.task.pattern_census()})")

    middleware = QASOM.for_environment(
        scenario.environment,
        scenario.properties,
        ontology=scenario.ontology,
        repository=scenario.repository,
    )
    plan = middleware.submit(scenario.request, execute=False).plan()
    print(f"\nselected composition (utility {plan.utility:.3f}):")
    for activity, selection in plan.selections.items():
        print(f"  {activity:10s} -> {selection.primary.name}")

    # How would the same binding be priced under each aggregation approach?
    assignments = {
        name: selection.primary.advertised_qos
        for name, selection in plan.selections.items()
    }
    print("\naggregated QoS per approach "
          "(loop: max 2 consultations, expectation 1.2):")
    for approach in AggregationApproach:
        aggregated = aggregate_composition(
            scenario.task, assignments, scenario.properties, approach
        )
        print(f"  {approach.value:12s} response_time="
              f"{aggregated['response_time']:7.1f} ms"
              f"  availability={aggregated['availability']:.3f}"
              f"  cost={aggregated['cost']:6.2f} EUR")

    # Execute with the full loop (the engine draws the actual number of
    # diagnosis iterations).
    result = middleware.submit(plan=plan).result()
    diagnoses = len(result.report.invocations_of("Diagnose"))
    print(f"\nexecution {'succeeded' if result.report.succeeded else 'FAILED'}"
          f": {diagnoses} diagnosis consultation(s), "
          f"{result.report.elapsed:.3f} s simulated, "
          f"{result.report.total_cost:.2f} EUR")


if __name__ == "__main__":
    main()
