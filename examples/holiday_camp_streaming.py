#!/usr/bin/env python
"""The pervasive entertaining scenario (paper §I.1) — the adaptation demo.

Bob streams music at a holiday camp where every service runs on fellow
campers' phones over flaky wireless links.  We degrade his chosen streaming
provider's link step by step while feeding run-time observations to the
monitor: the proactive (EWMA-forecast) rule fires *before* the latency
bound is breached, and the middleware substitutes the provider.  If the
whole streaming capability later collapses, behavioural adaptation
re-realises the task through the task class's alternative behaviour.

Run:  python examples/holiday_camp_streaming.py
"""

from __future__ import annotations

from repro.api import (
    HomeomorphismConfig,
    MatchDegree,
    MiddlewareConfig,
    MonitorConfig,
    QASOM,
    QoSObservation,
    build_holiday_camp_scenario,
)


def main() -> None:
    scenario = build_holiday_camp_scenario(services_per_activity=8, seed=13)
    middleware = QASOM.for_environment(
        scenario.environment,
        scenario.properties,
        ontology=scenario.ontology,
        repository=scenario.repository,
        config=MiddlewareConfig(
            monitor=MonitorConfig(alpha=0.6, trend_gain=4.0),
            # The camp's alternative behaviour realises the audio/video
            # choice with one generic Streaming activity — accepting a more
            # general activity (SUBSUME) is exactly what Bob wants when his
            # preferred providers vanish.
            homeomorphism=HomeomorphismConfig(
                minimum_degree=MatchDegree.SUBSUME
            ),
        ),
    )

    plan = middleware.submit(scenario.request, execute=False).plan()
    print(f"composition (utility {plan.utility:.3f}):")
    for activity, selection in plan.selections.items():
        print(f"  {activity:12s} -> {selection.primary.name}")

    manager = middleware.adaptation_manager(plan)
    triggers = []
    middleware.monitor.subscribe(triggers.append)

    # --- Bob walks away from the provider: latency drifts up ---------------
    streamer = plan.selections["StreamAudio"].primary
    watch = middleware.monitor._watches[streamer.service_id]
    bound = next(
        c.bound for c in watch if c.property_name == "response_time"
    )
    print(f"\nper-service latency watch bound: {bound:.0f} ms")
    print("Bob walks off; observed latency drifts towards the bound:")
    latency = bound * 0.55
    step = 0
    while not triggers and step < 12:
        latency *= 1.12
        middleware.monitor.observe(
            QoSObservation(streamer.service_id, "response_time",
                           min(latency, bound * 0.99), float(step))
        )
        print(f"  t={step}: observed {min(latency, bound * 0.99):7.1f} ms")
        step += 1

    if triggers:
        trigger = triggers[0]
        print(f"\nproactive trigger: {trigger.kind.value} "
              f"(observed {trigger.observed:.1f}, "
              f"projected {trigger.projected:.1f}, bound {trigger.bound:.1f})")
        outcome = manager.handle(trigger)
        print(f"adaptation action: {outcome.action.value}")
        if outcome.substitution is not None:
            print(f"  streaming moved to "
                  f"{outcome.substitution.replacement.name}")

    # --- the whole audio-streaming capability collapses ---------------------
    print("\nall audio streaming providers leave the camp...")
    for service in list(scenario.environment.registry):
        if service.capability == "task:AudioStreaming":
            scenario.environment.kill_service(service.service_id)
    try:
        result = middleware.behavioural.adapt(scenario.request)
    except Exception as error:
        print(f"behavioural adaptation failed: {error}")
    else:
        print(f"behavioural adaptation adopted "
              f"'{result.behaviour.name}' "
              f"({result.alternatives_tried} alternative(s) tried); new "
              f"composition utility {result.plan.utility:.3f}")
        print("new bindings:")
        for activity, selection in result.plan.selections.items():
            print(f"  {activity:12s} -> {selection.primary.name} "
                  f"[{selection.primary.capability}]")


if __name__ == "__main__":
    main()
