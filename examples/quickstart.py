#!/usr/bin/env python
"""Quickstart: compose and execute a QoS-constrained task with QASOM.

Builds a tiny pervasive environment from scratch (no prebuilt scenario), so
every step of the middleware's public API is visible:

1. declare a task ontology and a QoS property set;
2. populate an environment with provider services;
3. express a user task with global QoS constraints and weights;
4. let QASOM discover, select (QASSA) and execute the composition.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.api import (
    STANDARD_PROPERTIES,
    GlobalConstraint,
    Ontology,
    PervasiveEnvironment,
    QASOM,
    ServiceGenerator,
    Task,
    UserRequest,
    leaf,
    sequence,
)


def main() -> None:
    # 1. Vocabulary: three capabilities under a common root concept.
    ontology = Ontology("quickstart-tasks")
    root = ontology.declare_class("task:Activity")
    for capability in ("task:Translate", "task:Summarise", "task:Narrate"):
        ontology.declare_class(capability, [root])

    properties = {
        name: STANDARD_PROPERTIES[name]
        for name in ("response_time", "cost", "availability")
    }

    # 2. A small environment: 8 competing providers per capability.
    environment = PervasiveEnvironment(seed=1)
    generator = ServiceGenerator(properties, seed=1)
    for capability in ("task:Translate", "task:Summarise", "task:Narrate"):
        for service in generator.candidates(capability, 8):
            environment.host_on_new_device(service)
    print(f"environment: {len(environment.registry)} services published")

    # 3. The user task: translate, then summarise, then narrate — with a
    #    total latency budget and an availability floor.
    task = Task(
        "read-aloud",
        sequence(
            leaf("Translate", "task:Translate"),
            leaf("Summarise", "task:Summarise"),
            leaf("Narrate", "task:Narrate"),
        ),
    )
    request = UserRequest(
        task=task,
        constraints=(
            GlobalConstraint.at_most("response_time", 4000.0),   # ms
            GlobalConstraint.at_least("availability", 0.3),
        ),
        weights={"response_time": 0.5, "cost": 0.3, "availability": 0.2},
    )

    # 4. Compose and execute.
    middleware = QASOM.for_environment(environment, properties,
                                       ontology=ontology)
    plan = middleware.submit(request, execute=False).plan()
    print(f"\nselected composition (utility {plan.utility:.3f}):")
    for activity, selection in plan.selections.items():
        alternates = ", ".join(s.name for s in selection.alternates)
        print(f"  {activity:10s} -> {selection.primary.name}"
              f"  (alternates: {alternates or 'none'})")
    print("aggregated QoS:", plan.aggregated_qos)
    print("meets constraints:", plan.feasible)

    result = middleware.submit(plan=plan).result()
    print(f"\nexecution {'succeeded' if result.report.succeeded else 'FAILED'}"
          f" in {result.report.elapsed:.3f} simulated seconds,"
          f" total cost {result.report.total_cost:.2f} EUR")
    for record in result.report.invocations:
        status = "ok" if record.succeeded else "failed"
        print(f"  t={record.started_at:7.3f}s  {record.activity_name:10s}"
              f"  {record.service_id}  [{status}]")


if __name__ == "__main__":
    main()
