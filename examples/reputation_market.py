#!/usr/bin/env python
"""A service market that learns who to trust (SLA + reputation loop).

Two provider cohorts advertise identical QoS for the same capability, but
"honest" providers deliver what they promise while "flaky" ones miss their
latency objectives and sometimes fail outright.  Advertisements alone
cannot tell them apart — the closed loop can:

1. compositions run and every invocation is checked against the SLAs
   derived from the user's global constraints;
2. outcomes and SLA breaches feed the evidence-based reputation manager;
3. the registry is refreshed with the updated reputation scores;
4. the next selection round — which weights reputation — migrates to the
   honest cohort, without anyone labelling the flaky providers by hand.

Run:  python examples/reputation_market.py
"""

from __future__ import annotations

import random

from repro.api import (
    STANDARD_PROPERTIES,
    CandidateSets,
    ComplianceTracker,
    ExecutionEngine,
    GlobalConstraint,
    QASSA,
    QassaConfig,
    QoSVector,
    ReputationManager,
    ServiceDescription,
    ServiceRegistry,
    Task,
    UserRequest,
    derive_slas,
    leaf,
    sequence,
)

PROPS = {
    name: STANDARD_PROPERTIES[name]
    for name in ("response_time", "cost", "availability", "reputation")
}
ROUNDS = 8
RNG = random.Random(42)


#: Simulation-side ground truth: which providers actually deliver.
HONEST_PROVIDERS = set()


def make_provider(name, provider, honest):
    qos = QoSVector(
        {"response_time": 150.0, "cost": 2.0, "availability": 0.95,
         "reputation": 2.5},
        PROPS,
    )
    if honest:
        HONEST_PROVIDERS.add(provider)
    return ServiceDescription(
        name=name, capability="task:Translate",
        advertised_qos=qos, provider=provider,
    )


def invoker(service, timestamp):
    """Honest providers deliver the advertisement; flaky ones miss it."""
    if service.provider in HONEST_PROVIDERS:
        return service.advertised_qos
    if RNG.random() < 0.3:
        return None  # outright failure
    return service.advertised_qos.replace(
        "response_time",
        service.advertised_qos["response_time"] * RNG.uniform(3.0, 8.0),
    )


def main() -> None:
    registry = ServiceRegistry()
    for i in range(4):
        registry.publish(make_provider(f"honest-{i}", f"alice-{i}", True))
        registry.publish(make_provider(f"flaky-{i}", f"mallory-{i}", False))

    task = Task("t", sequence(leaf("Translate", "task:Translate")))
    request = UserRequest(
        task,
        constraints=(GlobalConstraint.at_most("response_time", 400.0),),
        weights={"reputation": 0.6, "response_time": 0.2, "cost": 0.1,
                 "availability": 0.1},
    )
    reputation = ReputationManager(registry)
    selector = QASSA(PROPS, config=QassaConfig(alternates_kept=2, seed=1))

    print(f"{'round':>5}  {'bound provider':<14} {'honest?':<8} "
          f"{'SLA breaches':<12} {'provider reputation':>20}")
    flaky_rounds = 0
    for round_number in range(1, ROUNDS + 1):
        candidates = CandidateSets(
            task, {"Translate": registry.by_capability("task:Translate")}
        )
        plan = selector.select(request, candidates)
        bound = plan.selections["Translate"].primary
        bound_honest = bound.provider in HONEST_PROVIDERS
        flaky_rounds += 0 if bound_honest else 1

        tracker = ComplianceTracker(
            derive_slas(plan, PROPS, penalty_per_violation=1.0)
        )
        engine = ExecutionEngine(PROPS, invoker, seed=round_number)
        for _ in range(5):
            report = engine.execute(plan)
            reputation.ingest_report(report)
            for record in report.invocations:
                if record.observed_qos is not None:
                    violations = tracker.record_vector(
                        record.service_id, record.observed_qos
                    )
                    if violations:
                        service = registry.get(record.service_id)
                        if service is not None:
                            reputation.record_sla_violation(
                                service.provider, violations
                            )

        reputation.refresh_registry()
        breaches = int(tracker.summary()["violations"])
        print(f"{round_number:>5}  {bound.name:<14} "
              f"{'yes' if bound_honest else 'NO':<8} "
              f"{breaches:<12} "
              f"{reputation.score(bound.provider):>20.2f}")

    print(f"\nflaky providers were selected in {flaky_rounds}/{ROUNDS} "
          "rounds — the market converges onto honest cohorts as evidence "
          "accumulates.")
    honest_mean = sum(
        reputation.score(f"alice-{i}") for i in range(4)
    ) / 4
    flaky_mean = sum(
        reputation.score(f"mallory-{i}") for i in range(4)
    ) / 4
    print(f"final mean reputation: honest {honest_mean:.2f} vs "
          f"flaky {flaky_mean:.2f}")


if __name__ == "__main__":
    main()
