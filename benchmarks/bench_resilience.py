"""Resilience — success under injected faults, budgets, and hot-path cost.

Three claims, one benchmark:

1. **Effectiveness** — under a seeded :class:`FaultSchedule` that kills a
   fraction of the *bound* providers mid-execution (including every
   provider of one optional activity), a middleware with the resilience
   subsystem on completes more compositions than the same middleware with
   it off.  The off arm fails outright when the optional activity's pool
   dies; the on arm retries with backoff, trips breakers, and degrades
   gracefully.
2. **Bounded retries** — the retry budget, not the candidate-pool size,
   caps the invocation count per activity: no unbounded failover sweeps.
3. **Hot-path cost** — with resilience *off* (the default), the hooks left
   on the fault-free path are ``None``/empty-list checks; their measured
   per-invocation cost times the invocation count must fit in 5% of the
   fastest fault-free workload run (the same budget technique the
   observability layer is held to in tests/test_observability_overhead.py).
"""

from __future__ import annotations

import time

from repro.experiments.harness import Sweep, measure
from repro.experiments.reporting import render_table
from repro.middleware.config import MiddlewareConfig
from repro.middleware.qasom import QASOM
from repro.qos.properties import STANDARD_PROPERTIES
from repro.qos.values import QoSVector
from repro.services.generator import ServiceGenerator
from repro.composition.request import GlobalConstraint, UserRequest
from repro.composition.task import Task, leaf, sequence
from repro.env.device import DeviceClass
from repro.env.environment import EnvironmentConfig, PervasiveEnvironment
from repro.env.scenarios import build_shopping_scenario
from repro.resilience import (
    FaultSchedule,
    ResilienceConfig,
    RetryPolicy,
)

PROPS = {
    name: STANDARD_PROPERTIES[name]
    for name in ("response_time", "cost", "availability")
}

CAPABILITIES = ("task:A", "task:B", "task:C", "task:D")
PROVIDERS_PER_CAPABILITY = 5
MAX_ATTEMPTS = 3

TREE = sequence(
    leaf("A", "task:A"),
    leaf("B", "task:B", optional=True),
    leaf("C", "task:C"),
    leaf("D", "task:D"),
)


def build_world(seed):
    """Environment + request; QoS is pinned so only faults cause failures."""
    environment = PervasiveEnvironment(
        EnvironmentConfig(qos_noise=0.05), seed=seed
    )
    generator = ServiceGenerator(PROPS, seed=seed + 1)
    by_capability = {c: [] for c in CAPABILITIES}
    for capability in CAPABILITIES:
        for _ in range(PROVIDERS_PER_CAPABILITY):
            service = environment.host_on_new_device(
                generator.service(capability), DeviceClass.SERVER
            )
            service = service.with_qos(QoSVector(
                {"response_time": 80.0, "cost": 1.0, "availability": 0.95},
                PROPS,
            ))
            environment.registry.publish(service)
            by_capability[capability].append(service.service_id)
    task = Task("resilience-bench", TREE)
    request = UserRequest(
        task,
        constraints=(GlobalConstraint.at_most("response_time", 1e9),),
        weights={n: 1.0 for n in PROPS},
    )
    return environment, request, by_capability


def run_arm(seed, kill_fraction, resilient):
    """One execution under a kill schedule; returns (succeeded, report)."""
    environment, request, by_capability = build_world(seed)
    config = MiddlewareConfig(
        seed=seed,
        max_execution_attempts=MAX_ATTEMPTS,
        resilience=ResilienceConfig(
            enabled=resilient,
            retry=RetryPolicy(max_attempts=MAX_ATTEMPTS,
                              backoff_base_s=0.05, jitter=0.2),
        ),
    )
    qasom = QASOM(environment, PROPS, config=config)
    plan = qasom.submit(request, execute=False).plan()

    bound = sorted({s.service_id for s in plan.binding().values()})
    schedule = FaultSchedule.kill_fraction(
        bound, kill_fraction, between=(0.02, 0.25), seed=seed
    )
    if kill_fraction > 0:
        # The optional activity's whole pool dies before its turn comes
        # (activity A runs ~80ms of sim time first): completing at all
        # now *requires* graceful degradation.
        schedule = schedule.merge(FaultSchedule.kill_services(
            by_capability["task:B"], between=(0.001, 0.02), seed=seed + 7
        ))
    environment.schedule_faults(schedule)

    result = qasom.submit(plan=plan, adapt=False).result()
    return result.report.succeeded, result.report, len(bound)


def test_resilience_beats_baseline_under_faults(benchmark, emit):
    fractions = [0.0, 0.2, 0.4, 0.6]
    seeds = range(5)
    sweep = Sweep("resilience_success_rate", x_label="kill_fraction")
    rows = []

    for fraction in fractions:
        on_wins = off_wins = 0
        for seed in seeds:
            off_ok, _, bound_count = run_arm(seed, fraction, resilient=False)
            on_ok, on_report, _ = run_arm(seed, fraction, resilient=True)
            off_wins += off_ok
            on_wins += on_ok
            # Claim 2: the retry budget bounds the sweep — never more
            # invocations of one activity than attempts allowed (the task
            # is loop-free, so records per activity = attempts).
            for name in ("A", "B", "C", "D"):
                attempts = len(on_report.invocations_of(name))
                assert attempts <= MAX_ATTEMPTS, (
                    f"activity {name} swept {attempts} providers — "
                    f"budget is {MAX_ATTEMPTS}"
                )
            assert fraction == 0 or bound_count * fraction >= 0.2 * bound_count
        on_rate = on_wins / len(seeds)
        off_rate = off_wins / len(seeds)
        sweep.add(fraction, resilient=on_rate, baseline=off_rate)
        rows.append([fraction, off_rate, on_rate])

    emit(
        "resilience_success_rate",
        render_table(
            ["kill fraction", "baseline success", "resilient success"],
            rows,
            title="Composition success rate vs fraction of bound providers "
                  "killed mid-execution (5 seeds)",
        ),
        data=sweep,
    )

    # Claim 1: with >= 20% of bound providers killed, resilience on must
    # strictly beat the off baseline (the optional pool is gone, so the
    # baseline cannot complete without degradation).
    for fraction, off_rate, on_rate in rows:
        if fraction >= 0.2:
            assert on_rate > off_rate, (
                f"at kill fraction {fraction} resilient rate {on_rate} "
                f"does not exceed baseline {off_rate}"
            )

    benchmark(lambda: run_arm(0, 0.4, resilient=True))


def _resilience_hook_cost(environment, iterations=20000):
    """Per-invocation cost of the fault hooks on a fault-free environment.

    With no schedule, ``_apply_due_faults`` + the three window probes are
    the only per-invocation work the resilience layer added to ``invoke``;
    everything else is single ``is None`` checks, covered by the doubling
    below.
    """
    started = time.perf_counter()
    for _ in range(iterations):
        environment._apply_due_faults(1.0)
        environment._partitioned("dev-x", 1.0)
        environment._flaky_probability("svc-x", 1.0)
        environment._latency_factor("svc-x", "dev-x", 1.0)
    # Double the measured probe cost to also cover the engine/binder side
    # (a handful of attribute + None checks per invocation).
    return 2.0 * (time.perf_counter() - started) / iterations


def test_fault_free_hot_path_within_five_percent(emit):
    scenario = build_shopping_scenario()
    middleware = QASOM.for_environment(
        scenario.environment,
        scenario.properties,
        ontology=scenario.ontology,
        repository=scenario.repository,
    )
    assert middleware.breakers is None  # resilience defaults to off

    def workload():
        return middleware.run(scenario.request)

    result = workload()  # warm-up
    invocations = len(result.report.invocations)
    assert invocations > 0

    timing, _ = measure(workload, repetitions=5)
    fastest = timing.minimum

    hook_cost = _resilience_hook_cost(scenario.environment)
    spent = invocations * hook_cost
    budget = 0.05 * fastest

    emit(
        "resilience_hot_path",
        render_table(
            ["metric", "value"],
            [
                ["fastest workload (ms)", fastest * 1e3],
                ["invocations per run", invocations],
                ["hook cost per invocation (us)", hook_cost * 1e6],
                ["resilience spend (us)", spent * 1e6],
                ["5% budget (us)", budget * 1e6],
            ],
            title="Fault-free hot path: resilience hook cost vs 5% budget",
        ),
    )
    assert spent <= budget, (
        f"resilience hooks cost {spent * 1e6:.1f}us per run against a 5% "
        f"budget of {budget * 1e6:.1f}us ({fastest * 1e3:.2f}ms workload)"
    )
