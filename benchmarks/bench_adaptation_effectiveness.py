"""Adaptation effectiveness — the middleware's raison d'être, measured.

Without providing satisfactory QoS, "pervasive computing looses much of its
interest" (§I.1).  This bench quantifies the end of that argument: a
composition executed repeatedly while providers die keeps succeeding when
the adaptation framework repairs it, and decays when it doesn't.
"""

from __future__ import annotations

import statistics

from repro.experiments.figures import exp_adaptation_effectiveness
from repro.experiments.reporting import render_series


def test_adaptation_effectiveness(benchmark, emit):
    sweep = exp_adaptation_effectiveness(
        sessions=6, executions_per_session=12, kill_every=2
    )
    emit("adaptation_effectiveness", render_series(sweep), data=sweep)

    adapted = [p.values["adapted"] for p in sweep.points]
    static = [p.values["static"] for p in sweep.points]
    # Shape claims: adaptation clearly wins on average and per session
    # (within one execution's worth of noise), and keeps the task usable.
    assert statistics.mean(adapted) > statistics.mean(static)
    assert all(a >= s - 1.0 / 12 for a, s in zip(adapted, static))
    assert statistics.mean(adapted) >= 0.7

    benchmark.pedantic(
        lambda: exp_adaptation_effectiveness(
            sessions=1, executions_per_session=6
        ),
        rounds=2,
        iterations=1,
    )
