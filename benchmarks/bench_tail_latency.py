"""Tail latency under overload — adaptive vs static admission control.

The claim: under a saturating open-loop workload, the Little's-law
:class:`~repro.api.AdaptiveAdmissionController`
(``RuntimeConfig(admission="adaptive")``) keeps windowed p99 response time
*and* SLO-bounded goodput no worse than the static ``queue_depth`` bound —
while rejecting doomed requests at admission instead of serving them long
after anyone cares.

Setup: two identically-seeded shopping worlds (one per arm).  Each arm
warms its runtime with a few drained requests (populating the adaptive
controller's service-time window), then an
:class:`~repro.api.OpenLoopDriver` fires ``WAVES`` bursts of back-to-back
submissions, draining between bursts (an ON-OFF overload pattern).
Submission is wall-instant while simulated execution advances the shared
clock by roughly a second per request, so every burst saturates both
arms: far more work arrives than the commit stage can serve within any
reasonable response-time bound.  (The bursts are deliberately *unpaced*:
advancing the clock to scheduled arrival times from the submitting thread
would time-stamp early requests as finishing after late arrivals, i.e.
wall-clock racing would corrupt the simulated latency axis.)

* **static** — admits ``QUEUE_DEPTH`` requests; the deep end of the queue
  completes with simulated latencies of tens of seconds (admitted, yet
  useless against the SLO);
* **adaptive** — sizes the effective depth to
  ``target_delay / measured service time`` and rejects the rest up front,
  so every admitted request finishes within the admission-wait budget.

Latency is measured on the **simulated clock** (deterministic given the
seed), windowed by arrival time; *goodput* counts only completions within
``SLO_MS`` — raw completion counts would flatter static admission, which
eventually drains everything it queued.

Assertions: the static arm saturates (it rejects overflow and its p99
blows the SLO — otherwise the workload proves nothing), adaptive windowed
p99 <= static windowed p99, adaptive goodput >= 75% of static goodput
(the two are structurally near-equal: both serve ~``SLO/W`` good requests;
the margin absorbs worker-race jitter), and the adaptive controller
actually tightened its depth below the static bound.
"""

from __future__ import annotations

import random

from repro.api import (
    DriverReport,
    FlightRecorder,
    MiddlewareRuntime,
    OpenLoopDriver,
    QASOM,
    RuntimeConfig,
    Slo,
    UserRequest,
    build_shopping_scenario,
)
from repro.experiments.harness import Sweep
from repro.experiments.reporting import render_table

REQUESTS = 80
WAVES = 4                     # overload bursts, drained in between
WARMUP = 6
WORKERS = 4
QUEUE_DEPTH = 12
SERVICES_PER_ACTIVITY = 12
SEED = 11
SLO_MS = 5_000.0              # goodput bound on simulated response time
# The admission-wait budget sits just above the SLO so the adaptive depth
# covers every queue position that can still meet it (an admitted request
# waits <= depth * W = target, and the SLO bounds wait + service).
TARGET_DELAY_MS = 6_000.0
WINDOW_SECONDS = 5.0          # latency series granularity (sim seconds)


def build_world(seed=SEED):
    """One seeded shopping middleware plus its request workload."""
    scenario = build_shopping_scenario(
        services_per_activity=SERVICES_PER_ACTIVITY, seed=seed
    )
    middleware = QASOM.for_environment(
        scenario.environment,
        scenario.properties,
        ontology=scenario.ontology,
        repository=scenario.repository,
    )
    rng = random.Random(seed * 17 + 5)
    requests = []
    for _ in range(REQUESTS):
        weights = {
            name: round(rng.uniform(0.1, 1.0), 3)
            for name in scenario.request.weights
        }
        requests.append(
            UserRequest(
                task=scenario.request.task,
                constraints=scenario.request.constraints,
                weights=weights,
            )
        )
    return middleware, requests


def run_arm(admission: str):
    """One measured arm: warmup, then saturating bursts drained in turn."""
    middleware, requests = build_world()
    config = RuntimeConfig(
        workers=WORKERS,
        queue_depth=QUEUE_DEPTH,
        admission=admission,
        admission_target_delay_ms=TARGET_DELAY_MS,
        # The window must outlive the whole simulated run: the bursts
        # advance the clock by ~QUEUE_DEPTH * service each, and aging the
        # warmup samples out mid-run would snap the depth back to static.
        admission_window_seconds=1e9,
        # A flight recorder mints per-request trace contexts, so the
        # latency windows carry exemplar trace ids pointing at the exact
        # request behind each window's worst latency.
        flight_recorder=FlightRecorder(),
    )
    runtime = MiddlewareRuntime(middleware, config).start()
    for _ in range(WARMUP):
        runtime.submit(requests[0]).result()
    runtime.drain()
    driver = OpenLoopDriver(
        runtime.submit,
        clock=middleware.environment.clock,
        window_seconds=WINDOW_SECONDS,
    )
    report = DriverReport(window_seconds=WINDOW_SECONDS)
    per_wave = REQUESTS // WAVES
    for wave in range(WAVES):
        burst = requests[wave * per_wave:(wave + 1) * per_wave]
        report.records.extend(driver.run(burst).records)
        runtime.drain()  # the OFF phase: the backlog empties
    effective_depth = runtime.admission.effective_depth()
    runtime.close()
    return report, effective_depth


def worst_window(report):
    """The window stats with the highest p99 — the exemplar points at the
    exact request that produced that tail."""
    return max(report.latency_windows().series(), key=lambda s: s.p99)


def window_series_ms(report):
    """Per-window {index: (p50, p95, p99)} of simulated latency, in ms."""
    series = {}
    for stats in report.latency_windows().series():
        series[stats.index] = (
            stats.p50 * 1e3, stats.p95 * 1e3, stats.p99 * 1e3
        )
    return series


def test_adaptive_admission_tail_latency(benchmark, emit):
    static_report, static_depth = run_arm("static")
    adaptive_report, adaptive_depth = run_arm("adaptive")

    slo_seconds = SLO_MS / 1e3
    static_good = static_report.goodput(slo_seconds)
    adaptive_good = adaptive_report.goodput(slo_seconds)
    static_p99 = static_report.latency_windows().merged().quantile(0.99)
    adaptive_p99 = adaptive_report.latency_windows().merged().quantile(0.99)
    static_worst = worst_window(static_report)
    adaptive_worst = worst_window(adaptive_report)

    # --- per-window p50/p95/p99 series, both arms, to JSON -----------------
    static_windows = window_series_ms(static_report)
    adaptive_windows = window_series_ms(adaptive_report)
    sweep = Sweep("tail_latency", x_label="window")
    for index in sorted(set(static_windows) | set(adaptive_windows)):
        s50, s95, s99 = static_windows.get(index, (0.0, 0.0, 0.0))
        a50, a95, a99 = adaptive_windows.get(index, (0.0, 0.0, 0.0))
        sweep.add(
            index,
            static_p50_ms=s50, static_p95_ms=s95, static_p99_ms=s99,
            adaptive_p50_ms=a50, adaptive_p95_ms=a95, adaptive_p99_ms=a99,
        )

    slo = Slo(p99_ms=SLO_MS)
    rows = [
        ["requests", REQUESTS],
        ["arrival process", f"{WAVES} saturating bursts of "
                            f"{REQUESTS // WAVES}"],
        ["SLO", str(slo)],
        ["static queue depth", QUEUE_DEPTH],
        ["adaptive effective depth", adaptive_depth],
        ["static completed", static_report.completed],
        ["adaptive completed", adaptive_report.completed],
        ["static rejected", static_report.rejected],
        ["adaptive rejected", adaptive_report.rejected],
        ["static goodput (<= SLO)", static_good],
        ["adaptive goodput (<= SLO)", adaptive_good],
        ["static p99 (sim s)", round(static_p99, 3)],
        ["adaptive p99 (sim s)", round(adaptive_p99, 3)],
        ["static p99 exemplar",
         f"{static_worst.exemplar_trace_id} "
         f"(window {static_worst.index}, "
         f"{(static_worst.exemplar_value or 0.0):.1f}s)"],
        ["adaptive p99 exemplar",
         f"{adaptive_worst.exemplar_trace_id} "
         f"(window {adaptive_worst.index}, "
         f"{(adaptive_worst.exemplar_value or 0.0):.1f}s)"],
        ["static SLO windows pass",
         sum(v.passed for v in slo.evaluate(
             static_report.latency_windows().series()))],
        ["adaptive SLO windows pass",
         sum(v.passed for v in slo.evaluate(
             adaptive_report.latency_windows().series()))],
    ]
    emit(
        "tail_latency",
        render_table(
            ["metric", "value"],
            rows,
            title="Tail latency under overload: adaptive vs static "
                  f"admission ({REQUESTS} requests, {WORKERS} workers)",
        ),
        data=sweep,
    )

    # --- the workload must actually overload the static arm ----------------
    assert static_report.rejected > 0, (
        "static arm never filled its queue; the workload is not saturating"
    )
    assert static_p99 > slo_seconds, (
        f"static p99 {static_p99:.1f}s is within the {slo_seconds:g}s SLO; "
        "overload never materialised, the comparison is vacuous"
    )
    assert static_depth == QUEUE_DEPTH

    # --- exemplars: the worst window names the exact request behind it -----
    assert static_worst.exemplar_trace_id is not None, (
        "static worst window carries no exemplar trace id"
    )
    assert adaptive_worst.exemplar_trace_id is not None, (
        "adaptive worst window carries no exemplar trace id"
    )

    # --- the gates: adaptive is no worse on tail latency or goodput --------
    assert adaptive_depth < QUEUE_DEPTH, (
        "adaptive controller never tightened admission despite overload"
    )
    assert adaptive_p99 <= static_p99, (
        f"adaptive windowed p99 {adaptive_p99:.1f}s worse than static "
        f"{static_p99:.1f}s"
    )
    assert adaptive_good >= static_good * 0.75, (
        f"adaptive goodput {adaptive_good} fell below static admission's "
        f"{static_good} (non-inferiority margin 0.75)"
    )

    # Representative timed point: the adaptive controller's hot path
    # (arrival + completion accounting + depth refresh).
    from repro.runtime import AdaptiveAdmissionController

    controller = AdaptiveAdmissionController(
        QUEUE_DEPTH, target_delay_seconds=TARGET_DELAY_MS / 1e3,
        window_seconds=60.0,
    )
    ticks = iter(range(1, 10_000_000))

    def admission_tick():
        at = float(next(ticks))
        controller.on_arrival(at)
        controller.on_complete(0.9, at)
        return controller.admit(3)

    benchmark(admission_tick)
