"""Fig. VI.13 — transforming abstract BPEL specifications into behavioural
graphs.

The paper shows the transformation scaling linearly with the specification
size and completing in milliseconds even for large tasks — a prerequisite
for running behavioural adaptation at run time.
"""

from __future__ import annotations

from repro.adaptation.behaviour_graph import task_to_graph
from repro.execution.bpel import parse_bpel, to_bpel
from repro.experiments.figures import fig_vi13
from repro.experiments.reporting import render_series
from repro.experiments.workloads import make_task


def test_fig_vi13_bpel_transformation(benchmark, emit):
    sweep = fig_vi13(activity_counts=(10, 25, 50, 100, 150, 200),
                     repetitions=5)
    emit("fig_vi13", render_series(sweep), data=sweep)

    times = dict(sweep.series("transform_ms"))
    # Shape claim: near-linear — 20x the activities costs well under 400x
    # the time, and even the largest spec transforms in < 1 s.
    assert times[200] < times[10] * 400
    assert times[200] < 1000.0

    document = to_bpel(make_task(100, mixed_patterns=True, name="bench"))

    def transform():
        return task_to_graph(parse_bpel(document))

    graph = benchmark(transform)
    assert graph.vertex_count() == 100
