"""Robustness — QASSA on tradeoff-structured (realistic-market) populations.

The paper's synthetic services draw each QoS dimension independently, which
leaves most candidates Pareto-dominated (pruning does much of the work).
Real markets couple quality and price — nearly every service sits on the
Pareto front, so the clustering and the level-wise search carry the full
load.  This bench checks QASSA's optimality and timeliness survive the
harder regime.
"""

from __future__ import annotations

import statistics

from repro.composition.baselines import ExhaustiveSelection
from repro.composition.qassa import QASSA
from repro.composition.request import UserRequest
from repro.composition.selection import CandidateSets
from repro.composition.task import Task, leaf, sequence
from repro.errors import SelectionError
from repro.experiments.harness import optimality, try_select
from repro.experiments.reporting import render_table
from repro.experiments.workloads import constraints_at_tightness
from repro.qos.properties import STANDARD_PROPERTIES
from repro.services.generator import ServiceGenerator

PROPS = {
    name: STANDARD_PROPERTIES[name]
    for name in ("response_time", "cost", "availability", "reliability")
}


def build(tradeoff, seed, activities=3, services=15):
    task = Task(
        "m", sequence(*[leaf(f"A{i}", f"task:C{i}") for i in range(activities)])
    )
    generator = ServiceGenerator(PROPS, seed=seed, tradeoff=tradeoff)
    candidates = CandidateSets(
        task,
        {a.name: generator.candidates(a.capability, services)
         for a in task.activities},
    )
    constraints = constraints_at_tightness(
        task, candidates, PROPS, ["response_time", "cost"], 0.6
    )
    request = UserRequest(
        task, constraints=constraints, weights={n: 1.0 for n in PROPS}
    )
    return request, candidates


def test_robustness_tradeoff_markets(benchmark, emit):
    rows = []
    market_optimalities = []
    for tradeoff, label in ((0.0, "independent"), (0.9, "market")):
        for seed in range(5):
            request, candidates = build(tradeoff, seed)
            optimum = try_select(
                ExhaustiveSelection(PROPS), request, candidates
            )
            if optimum is None:
                rows.append([label, seed, "infeasible", ""])
                continue
            plan = try_select(QASSA(PROPS), request, candidates)
            ratio = optimality(plan, optimum) if plan else 0.0
            if label == "market":
                market_optimalities.append(ratio)
            rows.append([label, seed, ratio,
                         plan.statistics.elapsed_seconds * 1000 if plan
                         else ""])

    emit(
        "robustness_tradeoff",
        render_table(
            ["population", "seed", "optimality", "qassa ms"],
            rows,
            title="Robustness — QASSA on independent vs tradeoff QoS "
                  "populations",
        ),
    )
    # Shape claim: the harder regime keeps mean optimality >= 0.85.
    assert market_optimalities
    assert statistics.mean(market_optimalities) >= 0.85

    request, candidates = build(0.9, 0)

    def run():
        try:
            return QASSA(PROPS).select(request, candidates)
        except SelectionError:
            return None

    benchmark(run)
