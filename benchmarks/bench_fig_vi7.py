"""Fig. VI.7 — QASSA execution time per aggregation approach.

(a) pessimistic, (b) optimistic, (c) mean-value — on a task mixing
parallel, conditional and loop patterns.  The paper's observation: the
approach changes *which* compositions are admissible but barely moves the
selection time (the same clustering + lattice machinery runs underneath).
"""

from __future__ import annotations

import statistics

from repro.composition.aggregation import AggregationApproach
from repro.composition.qassa import QASSA
from repro.experiments.figures import fig_vi7
from repro.experiments.reporting import render_series
from repro.experiments.workloads import WorkloadSpec, make_workload


def test_fig_vi7_time_per_approach(benchmark, emit):
    sweeps = fig_vi7(service_counts=(10, 25, 50, 75), repetitions=3)
    for label, sweep in sweeps.items():
        emit(f"fig_vi7_{label}", render_series(sweep), data=sweep)

    # Shape claim: over the whole sweep the three approaches cost the same
    # order of magnitude (individual points fluctuate with how many lattice
    # states each approach's admissibility lets the beam collect), and all
    # stay interactive.
    totals = {
        label: sum(ms for _, ms in sweeps[label].series("qassa_ms"))
        for label in ("pessimistic", "optimistic", "mean")
    }
    assert max(totals.values()) < 10 * max(min(totals.values()), 0.01)
    for sweep in sweeps.values():
        assert all(
            ms < 1000.0 for _, ms in sweep.series("qassa_ms")
        )

    workload = make_workload(
        WorkloadSpec(activities=7, services_per_activity=50, constraints=4,
                     mixed_patterns=True, tightness=0.7, seed=3),
        approach=AggregationApproach.MEAN,
    )
    selector = QASSA(workload.properties, approach=AggregationApproach.MEAN)

    def run():
        try:
            return selector.select(workload.request, workload.candidates)
        except Exception:
            return None

    benchmark(run)
