"""Fig. VI.10 — QASSA execution time with constraints fixed at m and m+sigma.

Under the normal QoS law, bounds at the per-activity mean (m) are tight —
roughly half the services qualify per dimension — while m+sigma is
permissive.  The paper observes moderate extra work at m (more lattice
states explored before a feasible combination) but no blow-up.
"""

from __future__ import annotations

from repro.composition.qassa import QASSA
from repro.experiments.figures import fig_vi10
from repro.experiments.reporting import render_series
from repro.experiments.workloads import WorkloadSpec, make_workload
from repro.services.generator import QoSDistribution


def test_fig_vi10_constraint_tightness_time(benchmark, emit):
    sweeps = fig_vi10(service_counts=(10, 25, 50, 75), repetitions=3)
    for label, sweep in sweeps.items():
        emit(f"fig_vi10_{label.replace('+', '_')}", render_series(sweep), data=sweep)

    # Shape claim: at the permissive m+sigma setting every point is
    # feasible; total time stays within 100x between settings (no blow-up).
    permissive = sweeps["m+sigma"]
    assert all(p.values.get("feasible") == 1.0 for p in permissive.points)
    for x in (10, 25, 50, 75):
        tight_ms = dict(sweeps["m"].series("qassa_ms"))[x]
        loose_ms = dict(sweeps["m+sigma"].series("qassa_ms"))[x]
        assert tight_ms < 100 * max(loose_ms, 0.01)

    workload = make_workload(
        WorkloadSpec(activities=5, services_per_activity=50, constraints=4,
                     distribution=QoSDistribution.NORMAL, seed=5),
        sigma_offset=1.0,
    )
    selector = QASSA(workload.properties)

    def run():
        try:
            return selector.select(workload.request, workload.candidates)
        except Exception:
            return None

    benchmark(run)
