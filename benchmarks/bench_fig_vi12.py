"""Fig. VI.12 — distributed QASSA: local vs global phase execution time.

On the simulated ad hoc environment, the local phase parallelises across
provider devices (its wall-clock shrinks as nodes grow) while the
coordinator's global phase is node-count independent.
"""

from __future__ import annotations

from repro.composition.distributed import DistributedQASSA, round_robin_nodes
from repro.experiments.figures import fig_vi12
from repro.experiments.reporting import render_series
from repro.experiments.workloads import WorkloadSpec, make_workload


def test_fig_vi12_distributed_phases(benchmark, emit):
    sweep = fig_vi12(node_counts=(1, 2, 4, 6, 8), activities=8, services=40)
    emit("fig_vi12", render_series(sweep), data=sweep)

    local = dict(sweep.series("local_ms"))
    global_ = dict(sweep.series("global_ms"))
    # Shape claim 1: spreading over 8 devices cuts the local phase well
    # below the single-node cost.
    assert local[8] < local[1] * 0.7
    # Shape claim 2: the global phase does not grow with node count
    # (within noise).
    assert global_[8] < global_[1] * 5 + 5.0

    workload = make_workload(
        WorkloadSpec(activities=8, services_per_activity=40, constraints=4,
                     seed=6)
    )
    distributed = DistributedQASSA(workload.properties)
    nodes = round_robin_nodes(workload.candidates.activity_names(), 4)

    def run():
        return distributed.select(
            workload.request, workload.candidates, nodes, best_effort=True
        )

    plan, timing = benchmark(run)
    assert timing.total_seconds > 0
