"""Ablation 4 — dynamic binding policies under run-time drift.

QASSA keeps several ranked services per activity precisely so that binding
can react to run-time QoS (§I.5).  When the plan-time primary degrades
after selection, UTILITY binding (monitor-estimate-driven) routes around it
while FAILOVER binding keeps invoking it as long as it answers — paying the
degraded latency on every call.
"""

from __future__ import annotations

import statistics

from repro.adaptation.monitoring import QoSMonitor, QoSObservation
from repro.composition.qassa import QASSA, QassaConfig
from repro.composition.request import UserRequest
from repro.composition.selection import CandidateSets
from repro.composition.task import Task, leaf, sequence
from repro.execution.binding import BindingPolicy, DynamicBinder
from repro.execution.engine import ExecutionEngine
from repro.experiments.reporting import render_table
from repro.qos.properties import STANDARD_PROPERTIES
from repro.services.generator import ServiceGenerator

PROPS = {
    name: STANDARD_PROPERTIES[name]
    for name in ("response_time", "cost", "availability")
}
DEGRADATION_FACTOR = 20.0


def _build_plan(seed):
    task = Task(
        "t", sequence(leaf("A", "task:A"), leaf("B", "task:B"),
                      leaf("C", "task:C")),
    )
    generator = ServiceGenerator(PROPS, seed=seed)
    candidates = CandidateSets(
        task,
        {a.name: generator.candidates(a.capability, 12)
         for a in task.activities},
    )
    request = UserRequest(task, weights={"response_time": 1.0})
    plan = QASSA(PROPS, config=QassaConfig(alternates_kept=3)).select(
        request, candidates
    )
    return plan


def _run_policy(plan, policy, runs=5):
    """Execute repeatedly while the primaries' real latency is degraded."""
    degraded = {
        selection.primary.service_id
        for selection in plan.selections.values()
    }
    monitor = QoSMonitor(PROPS)

    def invoker(service, timestamp):
        observed = service.advertised_qos
        if service.service_id in degraded:
            observed = observed.replace(
                "response_time",
                observed["response_time"] * DEGRADATION_FACTOR,
            )
        return observed

    # Warm the monitor so utility binding has estimates to act on.
    for selection in plan.selections.values():
        for service in selection.services:
            rt = service.advertised_qos["response_time"]
            if service.service_id in degraded:
                rt *= DEGRADATION_FACTOR
            monitor.observe(
                QoSObservation(service.service_id, "response_time", rt, 0.0)
            )

    binder = DynamicBinder(PROPS, monitor=monitor, policy=policy)
    engine = ExecutionEngine(PROPS, invoker, binder=binder, monitor=monitor)
    elapsed = []
    for _ in range(runs):
        report = engine.execute(plan)
        elapsed.append(report.elapsed)
    return statistics.mean(elapsed)


def test_ablation_binding_policies(benchmark, emit):
    rows = []
    wins = 0
    for seed in range(5):
        plan = _build_plan(seed)
        utility_s = _run_policy(plan, BindingPolicy.UTILITY)
        failover_s = _run_policy(plan, BindingPolicy.FAILOVER)
        rows.append([seed, utility_s, failover_s,
                     failover_s / max(utility_s, 1e-9)])
        if utility_s < failover_s:
            wins += 1

    emit(
        "ablation_binding",
        render_table(
            ["seed", "utility binding (s)", "failover binding (s)",
             "failover/utility"],
            rows,
            title="Ablation — binding policy under 20x primary degradation",
        ),
    )
    # Shape claim: run-time-aware binding beats rank-order failover on
    # every degraded instance.
    assert wins == 5

    plan = _build_plan(0)
    benchmark(lambda: _run_policy(plan, BindingPolicy.UTILITY, runs=1))
