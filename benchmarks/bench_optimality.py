"""Optimality gap vs problem size, certified by the branch-and-bound oracle.

The paper's optimality experiments (Fig. VI.8) stop where exhaustive
enumeration stops.  :class:`~repro.composition.exact.ExactSelection`
removes that ceiling: it returns the *same plan, bit for bit* as
``ExhaustiveSelection`` (same optimum, same first-in-enumeration-order
tie-break) while expanding a small fraction of the assignment tree, so the
QASSA optimality gap can be measured at sizes the enumeration baseline
cannot reach.

Two bands:

* **tractable** — sizes where enumeration still runs.  Gate: the oracle's
  plan is byte-identical to the exhaustive optimum on every instance, and
  at the largest shared size it expands <= 10% of the enumeration's nodes.
* **beyond-exhaustive** — sizes whose search space exceeds
  ``ExhaustiveSelection``'s exploration limit.  Here the oracle is the
  only source of ground truth; the sweep reports QASSA's certified gap.

The sweep lands in ``BENCH_optimality.json`` at the repo root (see
``benchmarks/conftest.py``), so the certified gap trajectory is reviewed
like any other headline series.
"""

from __future__ import annotations

from repro.composition.baselines import ExhaustiveSelection
from repro.composition.exact import ExactSelection
from repro.composition.qassa import QASSA
from repro.experiments.harness import Sweep, measure, optimality, try_select
from repro.experiments.reporting import render_table
from repro.experiments.workloads import WorkloadSpec, make_workload

#: (activities, services) pairs with search spaces from 5e2 to 3e4 —
#: enumeration still runs, so every plan can be checked bit-for-bit.
TRACTABLE_SIZES = ((3, 8), (4, 8), (4, 12), (5, 8))

#: Sizes whose space exceeds ExhaustiveSelection's default 5e6 limit —
#: only the branch-and-bound oracle can certify the optimum there.
BEYOND_SIZES = ((5, 50), (6, 50))

SEEDS = (0, 1, 2)
CONSTRAINTS = 4
TIGHTNESS = 0.6


def build(activities, services, seed):
    return make_workload(
        WorkloadSpec(
            activities=activities,
            services_per_activity=services,
            constraints=CONSTRAINTS,
            tightness=TIGHTNESS,
            seed=seed,
        )
    )


def plans_identical(a, b):
    return (
        a.service_ids() == b.service_ids()
        and a.utility == b.utility
        and a.feasible == b.feasible
        and a.aggregated_qos == b.aggregated_qos
    )


def test_optimality_gap_vs_size(benchmark, emit):
    sweep = Sweep("optimality", x_label="search space")
    rows = []

    # --- tractable band: byte-identity + node efficiency ------------------
    worst_ratio_at_largest = 0.0
    for activities, services in TRACTABLE_SIZES:
        gaps, ratios, identical = [], [], 0
        runs = 0
        for seed in SEEDS:
            workload = build(activities, services, seed)
            exact_sel = ExactSelection(workload.properties)
            full_sel = ExhaustiveSelection(workload.properties)
            exact_plan = try_select(exact_sel, workload.request,
                                    workload.candidates)
            full_plan = try_select(full_sel, workload.request,
                                   workload.candidates)
            runs += 1
            assert (exact_plan is None) == (full_plan is None)
            if exact_plan is None:
                identical += 1  # both prove infeasibility
                continue
            assert plans_identical(exact_plan, full_plan)
            identical += 1
            space = workload.candidates.search_space()
            ratios.append(
                exact_plan.statistics.extra["nodes_expanded"] / space
            )
            qassa_plan = try_select(QASSA(workload.properties),
                                    workload.request, workload.candidates)
            if qassa_plan is not None:
                gaps.append(optimality(qassa_plan, exact_plan))
        assert identical == runs
        space = services ** activities
        point_ratio = max(ratios) if ratios else 0.0
        if (activities, services) == TRACTABLE_SIZES[-1]:
            worst_ratio_at_largest = point_ratio
        sweep.add(
            float(space),
            qassa_gap=(sum(gaps) / len(gaps)) if gaps else float("nan"),
            node_fraction=point_ratio,
            certified=1.0,
        )
        rows.append([
            f"{activities}x{services}", f"{space:.1e}",
            f"{point_ratio:.4f}",
            f"{(sum(gaps) / len(gaps)):.4f}" if gaps else "-",
            "exhaustive+bnb",
        ])

    # Gate: at the largest shared size the oracle expands <= 10% of the
    # nodes full enumeration would visit.
    assert 0.0 < worst_ratio_at_largest <= 0.10

    # --- beyond-exhaustive band: oracle-only certification ----------------
    beyond_reported = 0
    for activities, services in BEYOND_SIZES:
        gaps, ratios = [], []
        for seed in SEEDS[:2]:
            workload = build(activities, services, seed)
            space = workload.candidates.search_space()
            # This band must actually exceed the enumeration baseline.
            assert space > ExhaustiveSelection(workload.properties).limit
            exact_plan = try_select(ExactSelection(workload.properties),
                                    workload.request, workload.candidates)
            if exact_plan is None:
                continue
            ratios.append(
                exact_plan.statistics.extra["nodes_expanded"] / space
            )
            qassa_plan = try_select(QASSA(workload.properties),
                                    workload.request, workload.candidates)
            if qassa_plan is not None:
                gaps.append(optimality(qassa_plan, exact_plan))
        space = services ** activities
        if gaps:
            beyond_reported += 1
        sweep.add(
            float(space),
            qassa_gap=(sum(gaps) / len(gaps)) if gaps else float("nan"),
            node_fraction=max(ratios) if ratios else float("nan"),
            certified=1.0,
        )
        rows.append([
            f"{activities}x{services}", f"{space:.1e}",
            f"{max(ratios):.2e}" if ratios else "-",
            f"{(sum(gaps) / len(gaps)):.4f}" if gaps else "-",
            "bnb only",
        ])

    # Gate: the QASSA gap is certified at >= 1 size beyond the
    # enumeration limit — the whole point of the oracle.
    assert beyond_reported >= 1

    emit(
        "optimality",
        render_table(
            ["size", "space", "node fraction", "QASSA gap", "certified by"],
            rows,
            title="QASSA optimality gap, certified by branch-and-bound",
        ),
        data=sweep,
    )

    workload = build(5, 25, seed=0)
    selector = ExactSelection(workload.properties)
    benchmark(
        lambda: try_select(selector, workload.request, workload.candidates)
    )
