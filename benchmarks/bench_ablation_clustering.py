"""Ablation 1 — k-means QoS levels vs naive top-k truncation.

QASSA's local phase clusters candidates into QoS levels before the global
phase.  The obvious cheaper alternative keeps only the top-k services by
utility per activity.  Under tight constraints, truncation discards the
slack-heavy services the repair pass needs, hurting feasibility; clustering
keeps the whole population reachable through lower levels.
"""

from __future__ import annotations

from repro.composition.qassa import QASSA, QassaConfig
from repro.composition.selection import CandidateSets
from repro.composition.utility import Normalizer, service_utility
from repro.errors import SelectionError
from repro.experiments.reporting import render_table
from repro.experiments.workloads import WorkloadSpec, make_workload


def _truncate_candidates(workload, keep=4):
    """Top-k-by-utility truncation of each activity's candidate set."""
    weights = workload.request.normalised_weights(
        workload.request.relevant_properties
    )
    pools = {}
    for name in workload.candidates.activity_names():
        services = workload.candidates[name]
        normalizer = Normalizer.from_vectors(
            [s.advertised_qos for s in services], workload.properties
        )
        ranked = sorted(
            services,
            key=lambda s: -service_utility(s.advertised_qos, normalizer,
                                           weights),
        )
        pools[name] = ranked[:keep]
    return CandidateSets(workload.task, pools)


def test_ablation_clustering_vs_truncation(benchmark, emit):
    rows = []
    clustering_feasible = 0
    truncation_feasible = 0
    for seed in range(10):
        workload = make_workload(
            WorkloadSpec(activities=4, services_per_activity=30,
                         constraints=4, tightness=0.4, seed=seed)
        )
        selector = QASSA(workload.properties)
        try:
            selector.select(workload.request, workload.candidates)
            cluster_ok = True
        except SelectionError:
            cluster_ok = False
        truncated = _truncate_candidates(workload, keep=4)
        try:
            selector.select(workload.request, truncated)
            truncate_ok = True
        except SelectionError:
            truncate_ok = False
        clustering_feasible += cluster_ok
        truncation_feasible += truncate_ok
        rows.append([seed, cluster_ok, truncate_ok])

    emit(
        "ablation_clustering",
        render_table(
            ["seed", "clustering feasible", "top-4 truncation feasible"],
            rows,
            title="Ablation — QoS-level clustering vs top-k truncation "
                  "(tightness 0.4)",
        )
        + f"\ntotals: clustering {clustering_feasible}/10, "
          f"truncation {truncation_feasible}/10",
    )
    # Shape claim: clustering never does worse than truncation on
    # feasibility.
    assert clustering_feasible >= truncation_feasible

    workload = make_workload(
        WorkloadSpec(activities=4, services_per_activity=30, constraints=4,
                     tightness=0.4, seed=0)
    )
    selector = QASSA(workload.properties)

    def run():
        try:
            return selector.select(workload.request, workload.candidates)
        except SelectionError:
            return None

    benchmark(run)
