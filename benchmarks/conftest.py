"""Shared helpers for the benchmark suite.

Every benchmark both (a) registers a pytest-benchmark timing for one
representative point and (b) regenerates the paper's full series, printing
it and writing it under ``benchmarks/results/`` so EXPERIMENTS.md can quote
the exact rows.  When the benchmark hands ``emit`` the sweep itself (the
``data=`` argument), a machine-readable ``.json`` lands next to the
``.txt`` — including the run-to-run timing spread
(median/min/max/mean/stdev) that the rendered table collapses to a median.

Sweeps named in :data:`TRACKED_BENCHMARKS` additionally append to a
trajectory file at the repository root (``BENCH_throughput.json``,
``BENCH_tail_latency.json``): a committed, append-only history of the
headline series, so performance regressions show up in review diffs
instead of only in expiring CI artifacts.  Each run appends one entry and
the history is capped at :data:`TRAJECTORY_LIMIT` most-recent runs.
"""

from __future__ import annotations

import datetime
import json
import pathlib
from typing import Optional

import pytest

from repro.experiments.harness import Sweep
from repro.experiments.reporting import render_json, sweep_to_dict

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
REPO_ROOT = pathlib.Path(__file__).parent.parent

#: Sweep name -> repo-root trajectory file.
TRACKED_BENCHMARKS = {
    "throughput": "BENCH_throughput.json",
    "throughput_backend": "BENCH_throughput.json",
    "tail_latency": "BENCH_tail_latency.json",
    "chaos": "BENCH_chaos.json",
    "optimality": "BENCH_optimality.json",
}

#: Most-recent runs kept per trajectory file.
TRAJECTORY_LIMIT = 20


def _append_trajectory(sweep: Sweep) -> None:
    """Append one run to the sweep's repo-root trajectory, if tracked."""
    filename = TRACKED_BENCHMARKS.get(sweep.name)
    if filename is None:
        return
    path = REPO_ROOT / filename
    history = []
    if path.exists():
        try:
            history = json.loads(path.read_text())
        except (ValueError, OSError):
            history = []
        if not isinstance(history, list):
            history = []
    history.append({
        "recorded": datetime.date.today().isoformat(),
        "sweep": sweep_to_dict(sweep),
    })
    history = history[-TRAJECTORY_LIMIT:]
    path.write_text(json.dumps(history, indent=2, sort_keys=True) + "\n")


@pytest.fixture(scope="session")
def emit():
    """Print a rendered series and persist it to benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str, data: Optional[Sweep] = None) -> None:
        print(f"\n{text}\n")
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        if data is not None:
            (RESULTS_DIR / f"{name}.json").write_text(
                render_json(data) + "\n"
            )
            _append_trajectory(data)

    return _emit
