"""Shared helpers for the benchmark suite.

Every benchmark both (a) registers a pytest-benchmark timing for one
representative point and (b) regenerates the paper's full series, printing
it and writing it under ``benchmarks/results/`` so EXPERIMENTS.md can quote
the exact rows.  When the benchmark hands ``emit`` the sweep itself (the
``data=`` argument), a machine-readable ``.json`` lands next to the
``.txt`` — including the run-to-run timing spread
(median/min/max/mean/stdev) that the rendered table collapses to a median.
"""

from __future__ import annotations

import pathlib
from typing import Optional

import pytest

from repro.experiments.harness import Sweep
from repro.experiments.reporting import render_json

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def emit():
    """Print a rendered series and persist it to benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str, data: Optional[Sweep] = None) -> None:
        print(f"\n{text}\n")
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        if data is not None:
            (RESULTS_DIR / f"{name}.json").write_text(
                render_json(data) + "\n"
            )

    return _emit
