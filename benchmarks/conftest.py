"""Shared helpers for the benchmark suite.

Every benchmark both (a) registers a pytest-benchmark timing for one
representative point and (b) regenerates the paper's full series, printing
it and writing it under ``benchmarks/results/`` so EXPERIMENTS.md can quote
the exact rows.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def emit():
    """Print a rendered series and persist it to benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _emit
