"""Runtime fault domains — availability and determinism under chaos.

The claim: a pooled :class:`~repro.api.MiddlewareRuntime` subjected to a
seeded runtime fault schedule (worker crashes, a worker stall, a snapshot
failure, a commit delay) during a saturating burst **loses nothing**: no
request is lost or duplicated, every committed request selects the exact
plan the serial no-chaos run selects, the supervisor restores the pool to
``config.workers``, availability stays within 10% of the no-chaos arm, and
replaying the identical schedule yields an identical report.

Arms (all over identically-seeded worlds):

* **serial** — one :class:`~repro.api.ClosedLoopDriver` client over
  ``QASOM.submit``; the byte-identity reference.
* **pooled / no chaos** — ``WORKERS`` workers, all requests submitted
  back-to-back then drained; the availability baseline.
* **pooled / chaos** — same pool with a :class:`~repro.api.ChaosPolicy`
  built from :meth:`FaultSchedule.runtime_chaos` (2 crashes, 1 stall,
  1 snapshot failure, 1 commit delay); gated on invariants, byte-identity
  of committed plans, and relative availability.
* **replay x2** — the chaos arm twice more on a single-worker pool, where
  scheduling is fully deterministic; the two runs must produce identical
  statuses, plan signatures, fired-fault signatures and requeue counts.

Crash-requeue keeps the original admission ticket, so ordered commit — and
with it pooled==serial plan identity — survives worker death; that is the
property this benchmark pins.
"""

from __future__ import annotations

import random
import time

from repro.api import (
    ChaosPolicy,
    ClosedLoopDriver,
    FaultSchedule,
    MiddlewareRuntime,
    QASOM,
    RequestStatus,
    RuntimeConfig,
    UserRequest,
    build_shopping_scenario,
    verify_runtime_invariants,
)
from repro.experiments.harness import Sweep
from repro.experiments.reporting import render_table

PROFILES = 6
REPEATS = 8
WORKERS = 4
SERVICES_PER_ACTIVITY = 24
SEED = 7

#: Seeded schedule parameters — >= 2 crashes and a stall, per the contract.
CHAOS = dict(crashes=2, stalls=1, snapshot_failures=1, commit_delays=1,
             stall_seconds=0.01, seed=SEED)
CHAOS_WINDOW = (0.0, 0.25)


def build_world(seed=SEED):
    """One seeded scenario + middleware + request burst.

    Identically-seeded worlds have identical service *names* and QoS, so
    each arm gets a private environment yet stays comparable by name-level
    plan signatures.
    """
    scenario = build_shopping_scenario(
        services_per_activity=SERVICES_PER_ACTIVITY, seed=seed
    )
    middleware = QASOM.for_environment(
        scenario.environment,
        scenario.properties,
        ontology=scenario.ontology,
        repository=scenario.repository,
    )
    rng = random.Random(seed * 13 + 3)
    profiles = []
    for _ in range(PROFILES):
        weights = {
            name: round(rng.uniform(0.1, 1.0), 3)
            for name in scenario.request.weights
        }
        profiles.append(
            UserRequest(
                task=scenario.request.task,
                constraints=scenario.request.constraints,
                weights=weights,
            )
        )
    requests = [profiles[i % PROFILES] for i in range(PROFILES * REPEATS)]
    return scenario, middleware, requests


def plan_signature(plan):
    """World-independent identity of a composed plan (names, not ids)."""
    return (
        tuple(
            sorted(
                (activity, selection.primary.name)
                for activity, selection in plan.selections.items()
            )
        ),
        round(plan.utility, 9),
        plan.feasible,
    )


def chaos_schedule():
    return FaultSchedule.runtime_chaos(CHAOS_WINDOW, **CHAOS)


def run_pooled(workers, with_chaos):
    """One pooled arm; returns a plain dict of everything the gates need."""
    scenario, middleware, requests = build_world()
    chaos = None
    if with_chaos:
        chaos = ChaosPolicy.from_schedule(
            chaos_schedule(), scenario.environment.clock
        )
    # max_requeues must cover the worst case of every scheduled fault
    # landing on one request: a request that exhausts its requeue budget
    # fails, and a dropped commit shifts the live environment for every
    # later request (the serial run executed it; the pooled run did not),
    # which is exactly the divergence the byte-identity gate exists to
    # catch.  Chaos tolerance is only loss-free when the budgets cover
    # the fault schedule.
    config = RuntimeConfig(
        workers=workers,
        queue_depth=len(requests),
        max_requeues=CHAOS["crashes"] + CHAOS["snapshot_failures"] + 1,
    )
    started = time.perf_counter()
    with MiddlewareRuntime(middleware, config, chaos=chaos) as runtime:
        handles = [runtime.submit(request) for request in requests]
        runtime.drain()
        invariants = verify_runtime_invariants(runtime, handles)
        arm = {
            "wall": time.perf_counter() - started,
            "statuses": tuple(h.status.value for h in handles),
            "plans": tuple(
                plan_signature(h.result().plan)
                if h.status is RequestStatus.DONE else None
                for h in handles
            ),
            "ok": tuple(h.exception() is None for h in handles),
            "invariants": invariants,
            "restarts": runtime.supervisor.restarts,
            "requeued": runtime.requeued,
            "budget_denied": runtime.retry_budget.denied,
            "alive_workers": runtime.alive_workers,
            "fired": tuple(f.signature() for f in chaos.fired)
            if chaos is not None else (),
            "pending": len(chaos.pending) if chaos is not None else 0,
        }
    return arm


def availability(arm):
    return sum(arm["ok"]) / len(arm["ok"])


def test_chaos_availability_and_determinism(benchmark, emit):
    # --- serial reference arm ----------------------------------------------
    _, middleware_serial, requests_serial = build_world()
    serial_report = ClosedLoopDriver(middleware_serial.submit).run(
        requests_serial
    )
    serial_plans = [
        plan_signature(record.handle.result().plan)
        for record in serial_report.records
    ]

    # --- pooled arms -------------------------------------------------------
    nochaos = run_pooled(WORKERS, with_chaos=False)
    chaos = run_pooled(WORKERS, with_chaos=True)
    replay_a = run_pooled(1, with_chaos=True)
    replay_b = run_pooled(1, with_chaos=True)

    # --- gates -------------------------------------------------------------
    # 1. Nothing lost, nothing duplicated, pool restored — in every arm.
    for name, arm in [("no-chaos", nochaos), ("chaos", chaos),
                      ("replay-a", replay_a), ("replay-b", replay_b)]:
        assert arm["invariants"].ok, (
            f"{name} arm violated runtime invariants: "
            f"{arm['invariants'].violations}"
        )
    assert chaos["alive_workers"] == WORKERS, (
        f"supervisor left the pool at {chaos['alive_workers']}/{WORKERS}"
    )
    assert chaos["restarts"] >= CHAOS["crashes"], (
        f"{chaos['restarts']} restarts for {CHAOS['crashes']} crashes"
    )
    assert chaos["pending"] == 0, (
        f"{chaos['pending']} scheduled faults never fired"
    )

    # 2. Committed plans are byte-identical to the serial no-chaos run.
    for arm_name, arm in [("no-chaos", nochaos), ("chaos", chaos)]:
        for index, plan in enumerate(arm["plans"]):
            if plan is None:
                continue
            assert plan == serial_plans[index], (
                f"{arm_name} request {index}: committed plan diverged "
                f"from the serial reference"
            )

    # 3. Availability under chaos stays within 10% of the no-chaos arm.
    assert availability(chaos) >= 0.9 * availability(nochaos), (
        f"chaos availability {availability(chaos):.3f} < 0.9 x "
        f"no-chaos {availability(nochaos):.3f}"
    )

    # 4. Replaying the identical schedule is deterministic (single worker:
    #    pickup order is sequential, so the whole report must match).
    REPLAY_KEYS = ("statuses", "plans", "ok", "fired", "restarts",
                   "requeued", "budget_denied")
    for key in REPLAY_KEYS:
        assert replay_a[key] == replay_b[key], (
            f"replay diverged on {key!r}: "
            f"{replay_a[key]!r} != {replay_b[key]!r}"
        )

    # --- report ------------------------------------------------------------
    count = len(requests_serial)
    sweep = Sweep("chaos", x_label="request")
    for index in range(count):
        sweep.add(
            index,
            nochaos_ok=int(nochaos["ok"][index]),
            chaos_ok=int(chaos["ok"][index]),
        )

    fired = ", ".join(kind for kind, _, _ in chaos["fired"]) or "-"
    rows = [
        ["requests", count],
        ["workers", WORKERS],
        ["faults fired", fired],
        ["worker restarts", chaos["restarts"]],
        ["requeued", chaos["requeued"]],
        ["retry-budget denials", chaos["budget_denied"]],
        ["no-chaos availability", availability(nochaos)],
        ["chaos availability", availability(chaos)],
        ["no-chaos wall (s)", nochaos["wall"]],
        ["chaos wall (s)", chaos["wall"]],
        ["replay identical",
         all(replay_a[k] == replay_b[k] for k in REPLAY_KEYS)],
    ]
    emit(
        "chaos",
        render_table(
            ["metric", "value"],
            rows,
            title="Runtime fault domains: pooled MiddlewareRuntime under "
                  f"seeded chaos ({count} requests, {WORKERS} workers)",
        ),
        data=sweep,
    )

    # Representative timed point: one full chaos arm on a small burst.
    benchmark(lambda: run_pooled(2, with_chaos=True))
