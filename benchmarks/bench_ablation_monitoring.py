"""Ablation 3 — proactive (EWMA-forecast) vs reactive monitoring.

A drifting response-time series crosses the watch bound at some step.  The
reactive monitor fires only at the breach; the proactive monitor's forecast
rule fires earlier, buying the adaptation framework lead time.  We measure
the average lead (in observations) across drifting services.
"""

from __future__ import annotations

import statistics

from repro.adaptation.monitoring import (
    MonitorConfig,
    QoSMonitor,
    QoSObservation,
    TriggerKind,
)
from repro.experiments.reporting import render_table
from repro.qos.properties import STANDARD_PROPERTIES
from repro.services.discovery import QoSConstraint

PROPS = {"response_time": STANDARD_PROPERTIES["response_time"]}
BOUND = 1000.0


def _drifting_series(start, slope, steps=80):
    return [start + slope * i for i in range(steps)]


def _first_trigger_step(monitor, series, kind):
    monitor.watch("svc", [QoSConstraint("response_time", "<=", BOUND)])
    for step, value in enumerate(series):
        for trigger in monitor.observe(
            QoSObservation("svc", "response_time", value, float(step))
        ):
            if trigger.kind is kind:
                return step
    return None


def test_ablation_proactive_vs_reactive(benchmark, emit):
    rows = []
    leads = []
    for slope in (10.0, 20.0, 40.0):
        series = _drifting_series(start=400.0, slope=slope)
        proactive = QoSMonitor(
            PROPS, MonitorConfig(alpha=0.5, trend_gain=4.0)
        )
        reactive = QoSMonitor(
            PROPS, MonitorConfig(alpha=0.5, trend_gain=0.0)
        )
        forecast_step = _first_trigger_step(
            proactive, series, TriggerKind.FORECAST
        )
        violation_step = _first_trigger_step(
            reactive, series, TriggerKind.VIOLATION
        )
        lead = (
            violation_step - forecast_step
            if forecast_step is not None and violation_step is not None
            else None
        )
        if lead is not None:
            leads.append(lead)
        rows.append([slope, forecast_step, violation_step, lead])

    emit(
        "ablation_monitoring",
        render_table(
            ["drift (ms/obs)", "forecast @ step", "violation @ step",
             "lead (observations)"],
            rows,
            title="Ablation — proactive vs reactive monitoring "
                  f"(bound {BOUND:g} ms)",
        ),
    )
    # Shape claim: the forecast fires strictly before the violation on
    # every drifting series.
    assert leads and all(lead > 0 for lead in leads)
    assert statistics.mean(leads) >= 1.0

    series = _drifting_series(start=400.0, slope=20.0)

    def run():
        monitor = QoSMonitor(PROPS, MonitorConfig(alpha=0.5, trend_gain=4.0))
        return _first_trigger_step(monitor, series, TriggerKind.FORECAST)

    benchmark(run)
