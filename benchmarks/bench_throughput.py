"""Runtime throughput — pooled ``MiddlewareRuntime`` vs the serial path.

The claim: a broker fed a realistic workload — many users instantiating a
handful of shared task templates — sustains at least **2x the request rate**
of the serial one-at-a-time middleware, while staying *byte-identical*: the
pooled run selects exactly the plans, and produces exactly the execution
reports, the serial run does.

Setup: the shopping scenario with 24 candidate services per activity.  A
seeded load generator derives ``PROFILES`` distinct preference-weight
profiles from the scenario request and replays each ``REPEATS`` times
(interleaved), ``PROFILES x REPEATS`` requests total:

* **serial** — a single-client :class:`~repro.api.ClosedLoopDriver` over
  ``QASOM.submit`` (submit, wait, repeat — the pre-runtime application
  pattern);
* **pooled** — an unpaced :class:`~repro.api.OpenLoopDriver` over one
  :class:`~repro.api.MiddlewareRuntime` with ``WORKERS`` workers (all
  requests submitted back-to-back, then drained).

The pooled win is *work elimination*, not thread parallelism (the GIL
serialises pure-Python selection): snapshot-keyed discovery batching plus
whole-composition request coalescing compose each distinct profile once
per registry generation, and ordered commit keeps execution — and the
environment's shared clock/RNG draws — in admission order.

Determinism is compared across two identically-seeded worlds by *name*
signatures (service ids come from a process-global counter, so ids differ
across worlds while the seeded names do not).

Assertions: plan and report signatures equal request-by-request, and
pooled req/s >= 2x serial req/s.

A second axis (``test_backend_axis_process_vs_thread``) measures the
execution-backend redesign on the *opposite* workload: every request is
unique, so coalescing eliminates nothing and selection is genuinely
CPU-bound.  There the thread backend serialises on the GIL while
``backend="process"`` composes in parallel worker processes — the claim
is >= 2x thread throughput at 8 workers on a multi-core host, with plans
byte-identical to serial on both backends.
"""

from __future__ import annotations

import random
import time

from repro.api import (
    ClosedLoopDriver,
    MiddlewareRuntime,
    OpenLoopDriver,
    QASOM,
    RuntimeConfig,
    UserRequest,
    build_shopping_scenario,
)
from repro.experiments.harness import Sweep
from repro.experiments.reporting import render_table

PROFILES = 6
REPEATS = 5
WORKERS = 8
SERVICES_PER_ACTIVITY = 24
SEED = 7


def build_world(seed=SEED):
    """One seeded middleware plus its request workload.

    Two calls with the same seed produce interchangeable worlds (identical
    service *names* and QoS), which is what lets the serial and pooled arms
    run against separate environments without cross-contamination.
    """
    scenario = build_shopping_scenario(
        services_per_activity=SERVICES_PER_ACTIVITY, seed=seed
    )
    middleware = QASOM.for_environment(
        scenario.environment,
        scenario.properties,
        ontology=scenario.ontology,
        repository=scenario.repository,
    )
    rng = random.Random(seed * 13 + 3)
    profiles = []
    for _ in range(PROFILES):
        weights = {
            name: round(rng.uniform(0.1, 1.0), 3)
            for name in scenario.request.weights
        }
        profiles.append(
            UserRequest(
                task=scenario.request.task,
                constraints=scenario.request.constraints,
                weights=weights,
            )
        )
    requests = [profiles[i % PROFILES] for i in range(PROFILES * REPEATS)]
    return middleware, requests


def plan_signature(plan):
    """World-independent identity of a composed plan (names, not ids)."""
    return (
        tuple(
            sorted(
                (activity, selection.primary.name)
                for activity, selection in plan.selections.items()
            )
        ),
        round(plan.utility, 9),
        plan.feasible,
        tuple(
            sorted(
                (name, round(plan.aggregated_qos[name], 6))
                for name in plan.aggregated_qos
            )
        ),
    )


def report_signature(report):
    """World-independent identity of an execution report."""
    def qos(vector):
        if vector is None:
            return None
        return tuple(sorted((n, round(vector[n], 6)) for n in vector))

    return tuple(
        (
            record.activity_name,
            round(record.started_at, 9),
            record.succeeded,
            record.attempt,
            qos(record.observed_qos),
        )
        for record in report.invocations
    )


def test_pooled_throughput_vs_serial(benchmark, emit):
    # --- serial arm: one closed-loop client, no think time -----------------
    middleware_serial, requests_serial = build_world()
    serial_driver = ClosedLoopDriver(middleware_serial.submit)
    started = time.perf_counter()
    serial_report = serial_driver.run(requests_serial)
    serial_wall = time.perf_counter() - started
    serial_results = [r.handle.result() for r in serial_report.records]
    serial_latencies = [r.wall_seconds for r in serial_report.records]

    # --- pooled arm: unpaced open loop, submit everything then drain -------
    middleware_pooled, requests_pooled = build_world()
    config = RuntimeConfig(workers=WORKERS, queue_depth=len(requests_pooled))
    started = time.perf_counter()
    runtime = MiddlewareRuntime(middleware_pooled, config).start()
    pooled_driver = OpenLoopDriver(runtime.submit)
    pooled_report = pooled_driver.run(requests_pooled)
    runtime.drain()
    pooled_wall = time.perf_counter() - started
    handles = [record.handle for record in pooled_report.records]
    pooled_latencies = [handle.total_seconds for handle in handles]

    # --- byte-identical plans and reports, request by request --------------
    for index, (result, handle) in enumerate(zip(serial_results, handles)):
        pooled = handle.result()
        assert plan_signature(result.plan) == plan_signature(pooled.plan), (
            f"request {index}: pooled plan diverged from serial"
        )
        assert (
            report_signature(result.report) == report_signature(pooled.report)
        ), f"request {index}: pooled execution report diverged from serial"

    count = len(requests_serial)
    serial_rps = count / serial_wall
    pooled_rps = count / pooled_wall
    speedup = serial_wall / pooled_wall

    def percentile(values, fraction):
        ordered = sorted(values)
        return ordered[min(len(ordered) - 1, int(len(ordered) * fraction))]

    sweep = Sweep("throughput", x_label="request")
    for index in range(count):
        sweep.add(
            index,
            serial_ms=serial_latencies[index] * 1e3,
            pooled_ms=pooled_latencies[index] * 1e3,
        )

    rows = [
        ["requests", count],
        ["profiles x repeats", f"{PROFILES} x {REPEATS}"],
        ["workers", WORKERS],
        ["serial wall (s)", serial_wall],
        ["pooled wall (s)", pooled_wall],
        ["serial req/s", serial_rps],
        ["pooled req/s", pooled_rps],
        ["speedup", speedup],
        ["serial p50 (ms)", percentile(serial_latencies, 0.50) * 1e3],
        ["serial p95 (ms)", percentile(serial_latencies, 0.95) * 1e3],
        ["pooled p50 (ms)", percentile(pooled_latencies, 0.50) * 1e3],
        ["pooled p95 (ms)", percentile(pooled_latencies, 0.95) * 1e3],
        ["compositions coalesced",
         f"{runtime.coalescer.coalesced}/{runtime.coalescer.lookups}"],
        ["discovery lookups coalesced",
         f"{runtime.batcher.coalesced}/{runtime.batcher.lookups}"],
    ]
    emit(
        "throughput",
        render_table(
            ["metric", "value"],
            rows,
            title="Runtime throughput: pooled MiddlewareRuntime vs serial "
                  f"QASOM ({count} requests, {WORKERS} workers)",
        ),
        data=sweep,
    )

    # Every distinct profile composes once; every repeat is coalesced.
    assert runtime.coalescer.computed == PROFILES, (
        f"{runtime.coalescer.computed} compositions for {PROFILES} profiles"
    )
    assert speedup >= 2.0, (
        f"pooled throughput {pooled_rps:.1f} req/s is only {speedup:.2f}x "
        f"serial ({serial_rps:.1f} req/s); the contract is >= 2x"
    )

    # Representative timed point: one brokered request on the warm runtime.
    benchmark(lambda: runtime.run(requests_pooled[0]))
    runtime.close()


# ---------------------------------------------------------------------------
# The execution-backend axis: process vs thread on a CPU-bound workload.
# ---------------------------------------------------------------------------
BACKEND_REQUESTS = 24


def build_unique_world(seed=SEED):
    """A world whose workload defeats coalescing: every request unique.

    Each request carries its own weight profile, so the coalescer can
    eliminate nothing and every submission pays the full discovery +
    QASSA selection cost — the CPU-bound regime where backend parallelism
    (not work elimination) is the only possible win.
    """
    scenario = build_shopping_scenario(
        services_per_activity=SERVICES_PER_ACTIVITY, seed=seed
    )
    middleware = QASOM.for_environment(
        scenario.environment,
        scenario.properties,
        ontology=scenario.ontology,
        repository=scenario.repository,
    )
    rng = random.Random(seed * 17 + 5)
    requests = []
    for _ in range(BACKEND_REQUESTS + WORKERS):  # tail WORKERS = warmup
        weights = {
            name: round(rng.uniform(0.1, 1.0), 6)
            for name in scenario.request.weights
        }
        requests.append(
            UserRequest(
                task=scenario.request.task,
                constraints=scenario.request.constraints,
                weights=weights,
            )
        )
    return middleware, requests[:BACKEND_REQUESTS], requests[BACKEND_REQUESTS:]


def _timed_backend_run(backend_name):
    """(wall seconds, plans) for one backend over the workload.

    Spawn/start cost and first-snapshot shipping are warmed outside the
    timed window (they amortise over a runtime's lifetime); the timed
    region is submit-everything-then-drain, composition only
    (``execute=False`` — commits serialise by design on every backend, so
    the execution stage would only dilute the selection signal).
    """
    middleware, requests, warmups = build_unique_world()
    config = RuntimeConfig(
        backend=backend_name, workers=WORKERS,
        queue_depth=len(requests) + len(warmups),
    )
    runtime = MiddlewareRuntime(middleware, config).start()
    for handle in [runtime.submit(w, execute=False) for w in warmups]:
        handle.plan()
    started = time.perf_counter()
    handles = [runtime.submit(r, execute=False) for r in requests]
    runtime.drain()
    wall = time.perf_counter() - started
    plans = [handle.plan() for handle in handles]
    computed = runtime.coalescer.computed
    runtime.close()
    assert computed == len(requests) + len(warmups), (
        f"{backend_name}: coalescer eliminated work on a unique-request "
        f"workload ({computed} computed)"
    )
    return wall, plans


def test_backend_axis_process_vs_thread(emit):
    import os

    # --- serial reference: the plans both backends must reproduce ----------
    middleware_serial, requests_serial, _ = build_unique_world()
    serial_plans = [
        middleware_serial.submit(r, execute=False).plan()
        for r in requests_serial
    ]

    thread_wall, thread_plans = _timed_backend_run("thread")
    process_wall, process_plans = _timed_backend_run("process")

    # --- byte-identity on both backends, request by request ----------------
    for index, serial_plan in enumerate(serial_plans):
        assert plan_signature(serial_plan) == plan_signature(
            thread_plans[index]
        ), f"request {index}: thread-backend plan diverged from serial"
        assert plan_signature(serial_plan) == plan_signature(
            process_plans[index]
        ), f"request {index}: process-backend plan diverged from serial"

    count = len(requests_serial)
    thread_rps = count / thread_wall
    process_rps = count / process_wall
    speedup = thread_wall / process_wall
    cores = os.cpu_count() or 1

    sweep = Sweep("throughput_backend", x_label="workers")
    sweep.add(
        WORKERS,
        thread_rps=thread_rps,
        process_rps=process_rps,
        speedup=speedup,
        cores=cores,
    )
    emit(
        "throughput_backend",
        render_table(
            ["metric", "value"],
            [
                ["requests (all unique)", count],
                ["workers", WORKERS],
                ["cpu cores", cores],
                ["thread wall (s)", thread_wall],
                ["process wall (s)", process_wall],
                ["thread req/s", thread_rps],
                ["process req/s", process_rps],
                ["process/thread speedup", speedup],
            ],
            title="Execution backends: process vs thread on a CPU-bound "
                  f"workload ({count} unique requests, {WORKERS} workers)",
        ),
        data=sweep,
    )

    # The >= 2x contract needs actual cores to parallelise across; on a
    # starved host (CI smoke containers have 4 vCPUs, this guard is for
    # anything smaller) byte-identity above is still fully asserted.
    if cores >= 4:
        assert speedup >= 2.0, (
            f"process backend {process_rps:.1f} req/s is only "
            f"{speedup:.2f}x thread ({thread_rps:.1f} req/s) at "
            f"{WORKERS} workers on {cores} cores; the contract is >= 2x"
        )
