"""Fig. VI.11 — QASSA optimality with constraints fixed at m and m+sigma.

Optimality stays high at the permissive setting; at the tight m setting the
feasible region shrinks, so either QASSA finds a near-optimal composition
or the instance itself is infeasible (both reported).
"""

from __future__ import annotations

import statistics

from repro.composition.baselines import ExhaustiveSelection
from repro.experiments.figures import fig_vi11
from repro.experiments.reporting import render_series
from repro.experiments.workloads import WorkloadSpec, make_workload
from repro.services.generator import QoSDistribution


def test_fig_vi11_constraint_tightness_optimality(benchmark, emit):
    sweeps = fig_vi11(service_counts=(10, 20, 30, 40))
    for label, sweep in sweeps.items():
        emit(f"fig_vi11_{label.replace('+', '_')}", render_series(sweep), data=sweep)

    permissive = [v for _, v in sweeps["m+sigma"].series("qassa")]
    assert permissive, "permissive setting must have feasible points"
    assert statistics.mean(permissive) >= 0.85

    tight = [v for _, v in sweeps["m"].series("qassa")]
    if tight:  # when feasible at all, QASSA should not collapse
        assert min(tight) >= 0.6

    workload = make_workload(
        WorkloadSpec(activities=3, services_per_activity=20, constraints=3,
                     distribution=QoSDistribution.NORMAL, seed=5),
        sigma_offset=1.0,
    )
    selector = ExhaustiveSelection(workload.properties)

    def run():
        try:
            return selector.select(workload.request, workload.candidates)
        except Exception:
            return None

    benchmark.pedantic(run, rounds=3, iterations=1)
