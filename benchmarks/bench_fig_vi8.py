"""Fig. VI.8 — QASSA optimality per aggregation approach.

For each approach, the optimum is recomputed under the *same* approach, so
the metric isolates the heuristic's loss rather than the approach's
conservatism.  The paper reports comparable, high optimality for all three.
"""

from __future__ import annotations

import statistics

from repro.composition.aggregation import AggregationApproach
from repro.composition.baselines import ExhaustiveSelection
from repro.experiments.figures import fig_vi8
from repro.experiments.reporting import render_series
from repro.experiments.workloads import WorkloadSpec, make_workload


def test_fig_vi8_optimality_per_approach(benchmark, emit):
    sweeps = fig_vi8()
    means = {}
    for label, sweep in sweeps.items():
        emit(f"fig_vi8_{label}", render_series(sweep), data=sweep)
        values = [v for _, v in sweep.series("qassa")]
        if values:
            means[label] = statistics.mean(values)

    # Shape claim: every approach keeps mean optimality above 0.85.
    assert means, "no feasible optimality points"
    for label, value in means.items():
        assert value >= 0.85, f"{label} optimality degraded to {value:.3f}"

    workload = make_workload(
        WorkloadSpec(activities=3, services_per_activity=20, constraints=3,
                     tightness=0.7, seed=3),
        approach=AggregationApproach.OPTIMISTIC,
    )
    selector = ExhaustiveSelection(
        workload.properties, approach=AggregationApproach.OPTIMISTIC
    )

    def run():
        try:
            return selector.select(workload.request, workload.candidates)
        except Exception:
            return None

    benchmark.pedantic(run, rounds=3, iterations=1)
