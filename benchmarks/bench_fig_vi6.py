"""Fig. VI.6 — optimality of centralized QASSA.

(a) vs services per activity; (b) vs the number of constraints.  Optimality
is utility(QASSA) / utility(exhaustive optimum); the paper reports QASSA
staying above ~90 % of the optimum across both sweeps.
"""

from __future__ import annotations

import statistics

from repro.composition.baselines import ExhaustiveSelection
from repro.experiments.figures import fig_vi6a, fig_vi6b
from repro.experiments.reporting import render_series
from repro.experiments.workloads import WorkloadSpec, make_workload


def test_fig_vi6a_optimality_vs_services(benchmark, emit):
    sweep = fig_vi6a(service_counts=(10, 20, 30, 40, 50))
    emit("fig_vi6a", render_series(sweep), data=sweep)

    qassa = [v for _, v in sweep.series("qassa")]
    assert qassa, "no feasible points measured"
    # Shape claim: mean optimality ≥ 0.9 and no point collapses below 0.8.
    assert statistics.mean(qassa) >= 0.90
    assert min(qassa) >= 0.80

    workload = make_workload(
        WorkloadSpec(activities=3, services_per_activity=20, constraints=4,
                     seed=2)
    )
    selector = ExhaustiveSelection(workload.properties)

    def run():
        try:
            return selector.select(workload.request, workload.candidates)
        except Exception:
            return None

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_fig_vi6b_optimality_vs_constraints(benchmark, emit):
    sweep = fig_vi6b(constraint_counts=(1, 2, 3, 4, 5, 6))
    emit("fig_vi6b", render_series(sweep), data=sweep)

    qassa = [v for _, v in sweep.series("qassa")]
    assert qassa
    assert statistics.mean(qassa) >= 0.88

    from repro.composition.qassa import QASSA

    workload = make_workload(
        WorkloadSpec(activities=3, services_per_activity=25, constraints=6,
                     seed=2)
    )
    selector = QASSA(workload.properties)

    def run():
        try:
            return selector.select(workload.request, workload.candidates)
        except Exception:
            return None

    benchmark(run)
