"""Incremental re-selection — churn-step cost with the SelectionCache on.

The claim: in a churning environment, re-running QASSA after a single
activity's candidate pool changed should cost roughly one activity's local
phase, not five — and produce *exactly* the composition a from-scratch run
would have produced.

Setup: a 5-activity sequence task with 100 candidate services per activity.
Twenty churn steps each replace one provider in one activity's pool
(round-robin), then both arms re-select:

* **cached** — one long-lived ``QASSA`` wired to a ``SelectionCache``
  (the middleware's ``incremental_selection`` default);
* **cold** — a fresh, cache-less ``QASSA`` per step.

Assertions: byte-equal plans on every step, total speedup >= 3x, and a
local-phase hit rate >= 0.8 (4 unchanged activities out of 5 per step).
"""

from __future__ import annotations

import time

from repro.experiments.harness import Sweep
from repro.experiments.reporting import render_table
from repro.qos.properties import STANDARD_PROPERTIES
from repro.services.generator import ServiceGenerator
from repro.composition.qassa import QASSA
from repro.composition.request import UserRequest
from repro.composition.selection import CandidateSets
from repro.composition.selection_cache import SelectionCache
from repro.composition.task import Task, leaf, sequence

PROPS = {
    name: STANDARD_PROPERTIES[name]
    for name in ("response_time", "cost", "availability", "reliability")
}

ACTIVITIES = 5
SERVICES_PER_ACTIVITY = 100
CHURN_STEPS = 20


def build_world(seed=0):
    task = Task(
        "churn-bench",
        sequence(*[leaf(f"A{i}", f"task:C{i}") for i in range(ACTIVITIES)]),
    )
    generator = ServiceGenerator(PROPS, seed=seed)
    pools = {
        a.name: generator.candidates(a.capability, SERVICES_PER_ACTIVITY)
        for a in task.activities
    }
    request = UserRequest(task, constraints=(), weights={n: 1.0 for n in PROPS})
    return task, generator, pools, request


def churn(pools, generator, step):
    """Replace one provider in one activity's pool (round-robin)."""
    name = f"A{step % ACTIVITIES}"
    index = (step * 7) % SERVICES_PER_ACTIVITY
    replacement = generator.service(f"task:C{step % ACTIVITIES}")
    pool = list(pools[name])
    pool[index] = replacement
    pools[name] = pool


def plan_signature(plan):
    return (
        plan.service_ids(),
        {
            name: [s.service_id for s in sel.services]
            for name, sel in plan.selections.items()
        },
        plan.utility,
        {name: plan.aggregated_qos[name] for name in plan.aggregated_qos},
        plan.feasible,
    )


def test_churn_reselection_speedup(benchmark, emit):
    task, generator, pools, request = build_world()
    cache = SelectionCache()
    cached_selector = QASSA(PROPS, cache=cache)

    # Warm run: populates the cache (not timed — both arms pay it equally).
    warm_plan = cached_selector.select(request, CandidateSets(task, pools))
    assert warm_plan.feasible

    sweep = Sweep("incremental_selection", x_label="churn_step")
    rows = []
    cached_total = cold_total = 0.0
    hits = lookups = 0

    for step in range(CHURN_STEPS):
        churn(pools, generator, step)
        candidates = CandidateSets(task, pools)

        started = time.perf_counter()
        cached_plan = cached_selector.select(request, candidates)
        cached_s = time.perf_counter() - started

        started = time.perf_counter()
        cold_plan = QASSA(PROPS).select(request, candidates)
        cold_s = time.perf_counter() - started

        assert plan_signature(cached_plan) == plan_signature(cold_plan), (
            f"step {step}: cached plan diverged from the from-scratch plan"
        )
        stats = cached_plan.statistics
        assert stats.activities_recomputed == 1, (
            f"step {step}: {stats.activities_recomputed} activities "
            "recomputed for a single-activity churn event"
        )
        hits += stats.cache_hits
        lookups += stats.cache_hits + stats.cache_misses
        cached_total += cached_s
        cold_total += cold_s
        sweep.add(step, cached_ms=cached_s * 1e3, cold_ms=cold_s * 1e3)

    speedup = cold_total / cached_total
    hit_rate = hits / lookups
    rows.append(["churn steps", CHURN_STEPS])
    rows.append(["services / activity", SERVICES_PER_ACTIVITY])
    rows.append(["cold total (ms)", cold_total * 1e3])
    rows.append(["cached total (ms)", cached_total * 1e3])
    rows.append(["speedup", speedup])
    rows.append(["local-phase hit rate", hit_rate])

    emit(
        "incremental_selection",
        render_table(
            ["metric", "value"],
            rows,
            title="Churn-step re-selection: SelectionCache on vs from-scratch "
                  f"({ACTIVITIES} activities x {SERVICES_PER_ACTIVITY} services)",
        ),
        data=sweep,
    )

    assert hit_rate >= 0.79, f"hit rate {hit_rate:.2f} below the 4/5 contract"
    assert speedup >= 3.0, (
        f"churn-step re-selection speedup {speedup:.2f}x is below the 3x bar"
    )

    def one_cached_step(step=[CHURN_STEPS]):
        step[0] += 1
        churn(pools, generator, step[0])
        return cached_selector.select(request, CandidateSets(task, pools))

    benchmark(one_cached_step)
