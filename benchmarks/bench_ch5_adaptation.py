"""Ch. V §7 — behavioural adaptation evaluation.

Homeomorphism determination time as pattern size grows, and the end-to-end
behavioural adaptation latency (repository search + re-selection) on the
shopping scenario.
"""

from __future__ import annotations

from repro.experiments.figures import exp_ch5_homeomorphism
from repro.experiments.reporting import render_series
from repro.env.scenarios import build_shopping_scenario
from repro.middleware.qasom import QASOM


def test_ch5_homeomorphism_timing(benchmark, emit):
    sweep = exp_ch5_homeomorphism(sizes=(4, 6, 8, 10, 12), repetitions=3)
    emit("ch5_homeomorphism", render_series(sweep), data=sweep)

    # Shape claims: determination always succeeds on the constructed pairs,
    # and stays interactive (< 1 s) at the largest size.
    assert all(p.values["found"] == 1.0 for p in sweep.points)
    times = dict(sweep.series("determination_ms"))
    assert times[12] < 1000.0

    from repro.adaptation.behaviour_graph import task_to_graph
    from repro.adaptation.homeomorphism import find_homeomorphism
    from repro.composition.task import Task, leaf, sequence
    from repro.semantics.ontology import Ontology

    n = 10
    ontology = Ontology("bench")
    root = ontology.declare_class("task:UserActivity")
    for i in range(n):
        ontology.declare_class(f"task:Cap{i}", [root])
    ontology.declare_class("task:Extra", [root])
    pattern = task_to_graph(
        Task("p", sequence(*[leaf(f"P{i}", f"task:Cap{i}") for i in range(n)]))
    )
    host_members = []
    for i in range(n):
        host_members.append(leaf(f"H{i}", f"task:Cap{i}"))
        host_members.append(leaf(f"X{i}", "task:Extra"))
    host = task_to_graph(Task("h", sequence(*host_members)))

    result = benchmark(find_homeomorphism, pattern, host, ontology)
    assert result.found


def test_ch5_behavioural_adaptation_end_to_end(benchmark, emit):
    scenario = build_shopping_scenario(seed=99)
    middleware = QASOM.for_environment(
        scenario.environment,
        scenario.properties,
        ontology=scenario.ontology,
        repository=scenario.repository,
    )

    def adapt():
        return middleware.behavioural.adapt(scenario.request)

    result = benchmark(adapt)
    assert result.plan.feasible
    emit(
        "ch5_behavioural",
        "Ch. V — behavioural adaptation on the shopping scenario\n"
        f"adopted behaviour: {result.behaviour.name}\n"
        f"alternatives tried: {result.alternatives_tried}\n"
        f"embedding vertices mapped: {len(result.embedding.vertex_mapping)}",
    )
