"""Fig. VI.9 — the normal distribution law of generated QoS values.

Regenerates the histogram of a normal-law QoS population and verifies its
moments against N(m, sigma) — the premise of the constraint-tightness
experiments of Figs. VI.10-11.
"""

from __future__ import annotations

import statistics

from repro.experiments.figures import fig_vi9
from repro.experiments.reporting import render_series
from repro.experiments.workloads import EXPERIMENT_PROPERTIES
from repro.services.generator import QoSDistribution, ServiceGenerator


def test_fig_vi9_normal_law(benchmark, emit):
    sweep = fig_vi9(samples=5000, bins=20)
    emit("fig_vi9", render_series(sweep), data=sweep)

    counts = [p.values["count"] for p in sweep.points]
    # Shape claims: unimodal-ish around the centre, light tails.
    centre_mass = sum(counts[6:14])
    tail_mass = sum(counts[:3]) + sum(counts[-3:])
    assert centre_mass > 3 * tail_mass
    assert sum(counts) == 5000

    generator = ServiceGenerator(
        EXPERIMENT_PROPERTIES, distribution=QoSDistribution.NORMAL, seed=4
    )
    values = benchmark(generator.sample_values, "response_time", 2000)
    law = generator.law("response_time")
    assert statistics.mean(values) == statistics.mean(values)  # no NaNs
    assert abs(statistics.mean(values) - law.mean) < 0.1 * law.mean
