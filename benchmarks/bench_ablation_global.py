"""Ablation 2 — level-wise global selection vs utility-greedy assembly.

QASSA's global phase walks the level lattice best-first and repairs inside
clusters.  The greedy alternative (per-activity local best, no global view)
is faster but ignores global constraints.  Under tight constraints the
greedy assembly's feasibility collapses while QASSA's holds.
"""

from __future__ import annotations

from repro.composition.baselines import GreedySelection
from repro.composition.qassa import QASSA
from repro.errors import SelectionError
from repro.experiments.reporting import render_table
from repro.experiments.workloads import WorkloadSpec, make_workload


def test_ablation_global_vs_greedy(benchmark, emit):
    rows = []
    qassa_wins = 0
    comparisons = 0
    for tightness in (0.3, 0.45, 0.6, 0.8):
        qassa_ok = 0
        greedy_ok = 0
        for seed in range(8):
            workload = make_workload(
                WorkloadSpec(activities=4, services_per_activity=25,
                             constraints=4, tightness=tightness, seed=seed)
            )
            try:
                QASSA(workload.properties).select(
                    workload.request, workload.candidates
                )
                qassa_ok += 1
            except SelectionError:
                pass
            plan = GreedySelection(workload.properties).select(
                workload.request, workload.candidates, best_effort=True
            )
            greedy_ok += int(plan.feasible)
        rows.append([tightness, f"{qassa_ok}/8", f"{greedy_ok}/8"])
        comparisons += 1
        if qassa_ok >= greedy_ok:
            qassa_wins += 1

    emit(
        "ablation_global",
        render_table(
            ["tightness", "QASSA feasible", "greedy feasible"],
            rows,
            title="Ablation — level-wise global phase vs greedy assembly",
        ),
    )
    # Shape claim: at every tightness QASSA's feasibility >= greedy's.
    assert qassa_wins == comparisons

    workload = make_workload(
        WorkloadSpec(activities=4, services_per_activity=25, constraints=4,
                     tightness=0.45, seed=0)
    )
    selector = QASSA(workload.properties)

    def run():
        try:
            return selector.select(workload.request, workload.candidates)
        except SelectionError:
            return None

    benchmark(run)
