"""Fig. VI.5 — execution time of centralized QASSA.

(a) vs the number of services per activity; (b) vs the number of global QoS
constraints.  The paper's claim: QASSA scales near-linearly in both, staying
within interactive (sub-second) budgets, far below exhaustive search and
well below the genetic competitor.
"""

from __future__ import annotations

from repro.composition.qassa import QASSA
from repro.experiments.figures import fig_vi5a, fig_vi5b
from repro.experiments.reporting import render_series
from repro.experiments.workloads import WorkloadSpec, make_workload


def test_fig_vi5a_time_vs_services(benchmark, emit):
    sweep = fig_vi5a(service_counts=(10, 25, 50, 75, 100), repetitions=3)
    emit("fig_vi5a", render_series(sweep), data=sweep)

    qassa_series = sweep.series("qassa_ms")
    genetic_series = dict(sweep.series("genetic_ms"))
    # Shape claim 1: QASSA meets the paper's timeliness requirement — every
    # point stays interactive (< 1 s), the same order as (or below) the
    # genetic competitor, and every point is feasible.
    last_x, last_qassa = qassa_series[-1]
    assert all(ms < 1000.0 for _, ms in qassa_series)
    assert last_qassa < 5 * genetic_series[last_x]
    assert all(p.values["feasible"] == 1.0 for p in sweep.points)
    # Shape claim 2: near-linear growth — 10x the services costs far less
    # than 100x the time (the paper shows a gentle slope).
    first = qassa_series[0][1]
    assert last_qassa < first * 40

    workload = make_workload(
        WorkloadSpec(activities=5, services_per_activity=50, constraints=4,
                     seed=1)
    )
    selector = QASSA(workload.properties)
    plan = benchmark(selector.select, workload.request, workload.candidates)
    assert plan.feasible


def test_fig_vi5b_time_vs_constraints(benchmark, emit):
    sweep = fig_vi5b(constraint_counts=(1, 2, 3, 4, 5, 6, 7, 8),
                     repetitions=3)
    emit("fig_vi5b", render_series(sweep), data=sweep)

    series = sweep.series("qassa_ms")
    # Shape claim: adding constraints grows time gently (the paper's curve
    # is close to flat — the lattice search, not the constraint count,
    # dominates).
    assert series[-1][1] < series[0][1] * 50

    workload = make_workload(
        WorkloadSpec(activities=5, services_per_activity=50, constraints=8,
                     seed=1)
    )
    selector = QASSA(workload.properties)

    def run():
        try:
            return selector.select(workload.request, workload.candidates)
        except Exception:
            return None

    benchmark(run)
