"""Ablation 8 — semantic vs syntactic functional matching in discovery.

The survey chapter argues (§II.3) that syntactic discovery "constrains the
number of discovered services as it disregards services that fit the user
requirements but use a different QoS/term syntax".  The shopping scenario
makes it concrete: the user's abstract ``task:Payment`` is served only by
``task:CardPayment`` / ``task:MobilePayment`` providers — a syntactic
directory finds nothing and composition fails outright; the semantic
directory fills the pool through PLUGIN subsumption.
"""

from __future__ import annotations

from repro.env.scenarios import build_shopping_scenario
from repro.errors import NoCandidateError
from repro.experiments.reporting import render_table
from repro.middleware.qasom import QASOM
from repro.semantics.matching import MatchDegree
from repro.services.discovery import DiscoveryQuery, QoSAwareDiscovery


def test_ablation_semantic_vs_syntactic_discovery(benchmark, emit):
    scenario = build_shopping_scenario(services_per_activity=12, seed=7)
    semantic = QoSAwareDiscovery(
        scenario.environment.registry, scenario.ontology
    )
    syntactic = QoSAwareDiscovery(scenario.environment.registry, None)

    rows = []
    semantic_total = 0
    syntactic_total = 0
    for activity in scenario.task.activities:
        query = DiscoveryQuery(activity.capability)
        with_onto = len(semantic.candidates(query))
        without = len(syntactic.candidates(query))
        semantic_total += with_onto
        syntactic_total += without
        rows.append([activity.name, activity.capability, with_onto, without])

    # Composition outcome under each regime.
    middleware_semantic = QASOM.for_environment(
        scenario.environment, scenario.properties, ontology=scenario.ontology
    )
    semantic_ok = middleware_semantic.submit(
        scenario.request, execute=False
    ).plan().feasible
    middleware_syntactic = QASOM.for_environment(
        scenario.environment, scenario.properties, ontology=None
    )
    try:
        middleware_syntactic.submit(scenario.request, execute=False)
        syntactic_ok = True
    except NoCandidateError:
        syntactic_ok = False

    emit(
        "ablation_semantics",
        render_table(
            ["activity", "required capability", "semantic pool",
             "syntactic pool"],
            rows,
            title="Ablation — semantic vs syntactic discovery "
                  "(shopping scenario)",
        )
        + f"\ncomposition feasible: semantic={semantic_ok}, "
          f"syntactic={syntactic_ok}",
    )

    # Shape claims from §II.3: the semantic pool strictly contains the
    # syntactic one, and only the semantic regime can serve the abstract
    # Payment activity.
    assert semantic_total > syntactic_total
    pay_row = next(r for r in rows if r[0] == "Pay")
    assert pay_row[2] > 0 and pay_row[3] == 0
    assert semantic_ok and not syntactic_ok

    query = DiscoveryQuery("task:Payment", minimum_degree=MatchDegree.PLUGIN)
    benchmark(semantic.candidates, query)
