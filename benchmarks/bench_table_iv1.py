"""Table IV.1 — QoS aggregation formulas.

Prints the symbolic table and benchmarks the full-vector aggregation of a
mixed-pattern composition (the operation every selection algorithm calls in
its inner loop).
"""

from __future__ import annotations

from repro.composition.aggregation import (
    AggregationApproach,
    aggregate_composition,
)
from repro.experiments.figures import table_iv1
from repro.experiments.reporting import render_table
from repro.experiments.workloads import EXPERIMENT_PROPERTIES, make_task
from repro.services.generator import ServiceGenerator


def test_table_iv1_aggregation(benchmark, emit):
    emit(
        "table_iv1",
        render_table(
            ["kind", "sequence", "parallel", "conditional", "loop (n)"],
            table_iv1(),
            title="Table IV.1 — QoS aggregation formulas",
        ),
    )

    task = make_task(12, mixed_patterns=True)
    generator = ServiceGenerator(EXPERIMENT_PROPERTIES, seed=0)
    assignments = {
        activity.name: generator.draw_vector() for activity in task.activities
    }

    result = benchmark(
        aggregate_composition,
        task,
        assignments,
        EXPERIMENT_PROPERTIES,
        AggregationApproach.PESSIMISTIC,
    )
    assert set(result) == set(EXPERIMENT_PROPERTIES)
