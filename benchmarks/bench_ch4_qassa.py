"""Ch. IV §5 — QASSA vs baselines at the default workload point.

The summary comparison behind the chapter's evaluation discussion: one
table of (algorithm, time, optimality, feasibility).
"""

from __future__ import annotations

from repro.composition.qassa import QASSA
from repro.experiments.figures import exp_ch4_summary
from repro.experiments.reporting import render_table
from repro.experiments.workloads import WorkloadSpec, make_workload


def test_ch4_summary_table(benchmark, emit):
    rows = exp_ch4_summary(activities=4, services=25, constraints=4)
    emit(
        "ch4_summary",
        render_table(
            ["algorithm", "time_ms", "optimality", "feasible"],
            rows,
            title="Ch. IV §5 — QASSA vs baselines (4 activities × 25 services)",
        ),
    )

    by_name = {row[0]: row for row in rows}
    # Shape claims mirroring the chapter's discussion:
    # 1. exhaustive is orders of magnitude slower than QASSA;
    assert by_name["exhaustive"][1] > 10 * by_name["qassa"][1]
    # 2. QASSA's optimality stays close to 1;
    assert by_name["qassa"][2] >= 0.85
    # 3. QASSA is feasible where greedy has no guarantee.
    assert by_name["qassa"][3] is True

    workload = make_workload(
        WorkloadSpec(activities=4, services_per_activity=25, constraints=4,
                     seed=8)
    )
    selector = QASSA(workload.properties)
    plan = benchmark(selector.select, workload.request, workload.candidates)
    assert plan.feasible
