"""Measurement units for QoS metrics, with conversion.

The QoS Core ontology attaches a *metric* to every QoS property; a metric has
a unit.  Providers and users may advertise the same property in different
units (milliseconds vs seconds, € vs cents), so the shared-understanding goal
of Chapter III requires automatic conversion between commensurable units.

Units are grouped into *dimensions*; within a dimension every unit is defined
by a scale factor to the dimension's canonical unit.  Conversion across
dimensions raises :class:`repro.errors.UnitError`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import UnitError


@dataclass(frozen=True)
class Unit:
    """A measurement unit: a symbol, its dimension and the multiplicative
    factor converting a value in this unit to the dimension's canonical unit."""

    symbol: str
    dimension: str
    to_canonical: float = 1.0

    def __str__(self) -> str:
        return self.symbol


# --- time -----------------------------------------------------------------
MILLISECONDS = Unit("ms", "time", 1e-3)
SECONDS = Unit("s", "time", 1.0)
MINUTES = Unit("min", "time", 60.0)
HOURS = Unit("h", "time", 3600.0)

# --- data rate ------------------------------------------------------------
BITS_PER_SECOND = Unit("bit/s", "datarate", 1.0)
KILOBITS_PER_SECOND = Unit("kbit/s", "datarate", 1e3)
MEGABITS_PER_SECOND = Unit("Mbit/s", "datarate", 1e6)
REQUESTS_PER_SECOND = Unit("req/s", "rate", 1.0)

# --- data size ------------------------------------------------------------
BYTES = Unit("B", "datasize", 1.0)
KILOBYTES = Unit("kB", "datasize", 1e3)
MEGABYTES = Unit("MB", "datasize", 1e6)

# --- dimensionless ratios and scores ---------------------------------------
RATIO = Unit("ratio", "ratio", 1.0)          # probabilities in [0, 1]
PERCENT = Unit("%", "ratio", 1e-2)           # probabilities in [0, 100]
SCORE = Unit("score", "score", 1.0)          # ordinal scores (security level...)

# --- money ------------------------------------------------------------------
EURO = Unit("EUR", "money", 1.0)
CENT = Unit("cent", "money", 1e-2)

# --- energy -----------------------------------------------------------------
JOULE = Unit("J", "energy", 1.0)
MILLIWATT_HOUR = Unit("mWh", "energy", 3.6)

_REGISTRY: Dict[str, Unit] = {
    u.symbol: u
    for u in (
        MILLISECONDS, SECONDS, MINUTES, HOURS,
        BITS_PER_SECOND, KILOBITS_PER_SECOND, MEGABITS_PER_SECOND,
        REQUESTS_PER_SECOND,
        BYTES, KILOBYTES, MEGABYTES,
        RATIO, PERCENT, SCORE,
        EURO, CENT,
        JOULE, MILLIWATT_HOUR,
    )
}


def get_unit(symbol: str) -> Unit:
    """Look a unit up by symbol; raises :class:`UnitError` when unknown."""
    try:
        return _REGISTRY[symbol]
    except KeyError:
        raise UnitError(f"unknown unit symbol: {symbol!r}") from None


def register_unit(unit: Unit) -> Unit:
    """Add a custom unit to the registry (idempotent for identical entries)."""
    existing = _REGISTRY.get(unit.symbol)
    if existing is not None and existing != unit:
        raise UnitError(f"unit symbol {unit.symbol!r} already registered differently")
    _REGISTRY[unit.symbol] = unit
    return unit


def convert(value: float, from_unit: Unit, to_unit: Unit) -> float:
    """Convert ``value`` between two units of the same dimension."""
    if from_unit == to_unit:
        return value
    if from_unit.dimension != to_unit.dimension:
        raise UnitError(
            f"cannot convert {from_unit.symbol!r} ({from_unit.dimension}) "
            f"to {to_unit.symbol!r} ({to_unit.dimension})"
        )
    return value * from_unit.to_canonical / to_unit.to_canonical
