"""The Infrastructure QoS ontology (Chapter III §2.2).

End-to-end QoS requires modelling the quality of what lies *underneath*
application services: the wireless network and the (resource-constrained)
devices hosting them.  This ontology specialises the Core ontology's
property categories with network- and device-level concepts, and declares
the cross-layer ``qos:dependsOn`` facts the paper uses to explain how
infrastructure fluctuations surface as service-level QoS fluctuations
(e.g. service response time depends on network latency and bandwidth).

Concept map (prefix ``iqos:``)::

    qos:PerformanceProperty
    ├── NetworkProperty: Bandwidth, NetworkLatency, Jitter, PacketLoss,
    │                    SignalStrength
    └── DeviceProperty:  CpuLoad, MemoryUsage, BatteryLevel,
                         EnergyConsumption, StorageCapacity
    qos:DependabilityProperty
    └── NodeAvailability, LinkReliability
"""

from __future__ import annotations

from repro.semantics.ontology import Ontology
from repro.qos.core_ontology import PREFIX as CORE, build_core_ontology

PREFIX = "iqos:"

#: Infrastructure concepts grouped by their Core-ontology parent category.
NETWORK_PROPERTIES = (
    "Bandwidth",
    "NetworkLatency",
    "Jitter",
    "PacketLoss",
    "SignalStrength",
)
DEVICE_PROPERTIES = (
    "CpuLoad",
    "MemoryUsage",
    "BatteryLevel",
    "EnergyConsumption",
    "StorageCapacity",
)
DEPENDABILITY_PROPERTIES = (
    "NodeAvailability",
    "LinkReliability",
)


def build_infrastructure_ontology(core: Ontology = None) -> Ontology:
    """Construct the Infrastructure QoS ontology on top of the Core one.

    When ``core`` is omitted a fresh Core ontology is built and merged in,
    so the returned ontology is self-contained.
    """
    onto = Ontology("qos-infrastructure")
    onto.merge(core if core is not None else build_core_ontology())

    network = onto.declare_class(
        f"{PREFIX}NetworkProperty",
        [f"{CORE}PerformanceProperty"],
        label="Network-level property",
    )
    device = onto.declare_class(
        f"{PREFIX}DeviceProperty",
        [f"{CORE}PerformanceProperty"],
        label="Device-level property",
    )

    for name in NETWORK_PROPERTIES:
        onto.declare_class(f"{PREFIX}{name}", [network])
    for name in DEVICE_PROPERTIES:
        onto.declare_class(f"{PREFIX}{name}", [device])
    for name in DEPENDABILITY_PROPERTIES:
        onto.declare_class(f"{PREFIX}{name}", [f"{CORE}DependabilityProperty"])

    # Monotonicity annotations (facts on the class level, as in the paper's
    # ontology where properties carry a monotonicity individual).
    decreasing = (
        "NetworkLatency", "Jitter", "PacketLoss", "CpuLoad", "MemoryUsage",
        "EnergyConsumption",
    )
    increasing = (
        "Bandwidth", "SignalStrength", "BatteryLevel", "StorageCapacity",
        "NodeAvailability", "LinkReliability",
    )
    for name in decreasing:
        onto.assert_fact(f"{PREFIX}{name}", f"{CORE}hasMonotonicity",
                         f"{CORE}Decreasing")
    for name in increasing:
        onto.assert_fact(f"{PREFIX}{name}", f"{CORE}hasMonotonicity",
                         f"{CORE}Increasing")

    onto.validate()
    return onto


def declare_cross_layer_dependencies(onto: Ontology) -> None:
    """Record which service-level properties depend on which infrastructure
    properties (the formal relationships Ch. III motivates, à la QoPS).

    Expects an ontology containing both the infrastructure and the service
    QoS concepts (see :func:`repro.qos.model.build_end_to_end_model`).
    """
    depends = f"{CORE}dependsOn"
    facts = (
        ("sqos:ResponseTime", f"{PREFIX}NetworkLatency"),
        ("sqos:ResponseTime", f"{PREFIX}Bandwidth"),
        ("sqos:ResponseTime", f"{PREFIX}CpuLoad"),
        ("sqos:Availability", f"{PREFIX}NodeAvailability"),
        ("sqos:Availability", f"{PREFIX}BatteryLevel"),
        ("sqos:Reliability", f"{PREFIX}LinkReliability"),
        ("sqos:Reliability", f"{PREFIX}PacketLoss"),
        ("sqos:Throughput", f"{PREFIX}Bandwidth"),
    )
    for service_prop, infra_prop in facts:
        onto.assert_fact(service_prop, depends, infra_prop)
