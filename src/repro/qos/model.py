"""The end-to-end QoS model facade (Chapter III).

:class:`QoSModel` assembles the four ontologies into one knowledge base and
offers the operations the rest of the middleware needs:

* registering :class:`~repro.qos.properties.QoSProperty` definitions and
  anchoring them to ontology concepts,
* **term mapping**: resolving a (possibly user-vocabulary) concept URI to the
  registered properties that can satisfy it, with a semantic match degree —
  this is the "common QoS understanding" mechanism of the paper,
* building :class:`~repro.qos.values.QoSVector` instances in canonical units.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.errors import QoSModelError
from repro.qos.core_ontology import build_core_ontology
from repro.qos.infrastructure import (
    build_infrastructure_ontology,
    declare_cross_layer_dependencies,
)
from repro.qos.properties import QoSProperty, STANDARD_PROPERTIES
from repro.qos.service_qos import build_service_ontology
from repro.qos.user_qos import build_user_ontology
from repro.qos.values import QoSVector
from repro.semantics.matching import MatchCache, MatchDegree
from repro.semantics.ontology import Ontology


class QoSModel:
    """A registry of QoS properties backed by a merged QoS ontology."""

    def __init__(self, ontology: Optional[Ontology] = None) -> None:
        self.ontology = ontology if ontology is not None else Ontology("qos-empty")
        self._properties: Dict[str, QoSProperty] = {}
        self._by_uri: Dict[str, QoSProperty] = {}
        # Term mapping re-grades the same (user concept, property URI) pairs
        # on every translated request; the cache self-invalidates when the
        # ontology mutates (generation check), so sharing it is safe.
        self.match_cache = MatchCache(self.ontology)

    # ------------------------------------------------------------------
    def register(self, prop: QoSProperty) -> QoSProperty:
        """Register a property definition; its URI must be a declared concept."""
        if prop.name in self._properties:
            existing = self._properties[prop.name]
            if existing != prop:
                raise QoSModelError(
                    f"property {prop.name!r} already registered with a "
                    f"different definition"
                )
            return existing
        if not self.ontology.is_class(prop.uri):
            raise QoSModelError(
                f"property {prop.name!r} refers to undeclared concept {prop.uri!r}"
            )
        self._properties[prop.name] = prop
        self._by_uri[prop.uri] = prop
        return prop

    def property(self, name: str) -> QoSProperty:
        try:
            return self._properties[name]
        except KeyError:
            raise QoSModelError(f"unknown QoS property: {name!r}") from None

    def property_by_uri(self, uri: str) -> QoSProperty:
        try:
            return self._by_uri[uri]
        except KeyError:
            raise QoSModelError(f"no property registered for concept {uri!r}") from None

    def properties(self) -> Dict[str, QoSProperty]:
        return dict(self._properties)

    def __contains__(self, name: str) -> bool:
        return name in self._properties

    # ------------------------------------------------------------------
    def resolve_term(
        self,
        concept_uri: str,
        minimum: MatchDegree = MatchDegree.PLUGIN,
    ) -> List[Tuple[QoSProperty, MatchDegree]]:
        """Map a required QoS concept onto registered properties.

        This implements the user↔provider vocabulary bridging of §III.2.4:
        a user asking for ``uqos:Speed`` resolves to the ``response_time``
        property with an EXACT match (through the declared equivalence), and
        ``uqos:Dependability`` resolves to ``availability`` and
        ``reliability`` with PLUGIN matches.

        Results are sorted best-match-first.  ``minimum`` filters out weaker
        degrees (pass ``MatchDegree.SIBLING`` to see everything related).
        """
        if not self.ontology.is_class(concept_uri):
            raise QoSModelError(f"unknown QoS concept: {concept_uri!r}")
        matches: List[Tuple[QoSProperty, MatchDegree]] = []
        for uri, prop in self._by_uri.items():
            degree = self.match_cache.match(
                concept_uri, uri, root="qos:QoSProperty"
            )
            if degree >= minimum:
                matches.append((prop, degree))
        matches.sort(key=lambda pair: (-pair[1], pair[0].name))
        return matches

    def vector(self, values: Mapping[str, float]) -> QoSVector:
        """Build a QoS vector over registered properties (canonical units)."""
        props = {}
        for name in values:
            props[name] = self.property(name)
        return QoSVector(dict(values), props)

    def shared_properties(self, vectors: Iterable[QoSVector]) -> List[str]:
        """Property names present in every vector of the iterable."""
        names: Optional[set] = None
        for v in vectors:
            names = set(v) if names is None else names & set(v)
        return sorted(names or ())


def build_end_to_end_model() -> QoSModel:
    """Assemble the full end-to-end QoS model of the paper.

    Core + Infrastructure + Service + User ontologies are merged into one
    knowledge base, cross-layer dependencies are declared, and the standard
    property set is registered.
    """
    core = build_core_ontology()
    merged = Ontology("qos-end-to-end")
    merged.merge(build_infrastructure_ontology(core))
    merged.merge(build_service_ontology(core))
    build_user_ontology(merged)
    declare_cross_layer_dependencies(merged)
    merged.validate()

    model = QoSModel(merged)
    for prop in STANDARD_PROPERTIES.values():
        model.register(prop)
    return model
