"""Cross-layer QoS estimation (Chapter III's end-to-end dependencies).

The Infrastructure QoS ontology records *which* service-level properties
depend on *which* infrastructure properties (``sqos:ResponseTime dependsOn
iqos:NetworkLatency`` ...).  This module makes those facts operational: a
:class:`CrossLayerEstimator` reads the current infrastructure state of the
hosting device and link from a
:class:`~repro.env.environment.PervasiveEnvironment` and corrects a
service's *advertised* QoS into an *expected effective* QoS:

* ``response_time`` — stretched by the device's CPU slowdown and increased
  by the link's expected transfer time;
* ``availability`` — scaled by host liveness and (low-battery) risk;
* ``reliability`` — scaled by the link's loss rate;
* ``throughput`` — capped by the link bandwidth.

:class:`InfrastructureAwareDiscovery` plugs the estimator into QoS-aware
discovery, so candidates are filtered and ranked on what the environment
can actually deliver right now — advertised claims alone systematically
overestimate QoS on degraded links (the gap that otherwise only surfaces as
run-time adaptation triggers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from repro.qos.values import QoSVector
from repro.services.description import ServiceDescription
from repro.services.discovery import (
    DiscoveryMatch,
    DiscoveryQuery,
    QoSAwareDiscovery,
)
from repro.env.environment import PervasiveEnvironment

#: Average request payload assumed when estimating transfer time, in bytes.
DEFAULT_PAYLOAD_BYTES = 4096

#: Battery level under which availability is discounted (the device may die
#: before the composition completes).
LOW_BATTERY_THRESHOLD = 0.2


@dataclass(frozen=True)
class EstimationBreakdown:
    """Why an estimate differs from the advertisement (for diagnostics)."""

    device_slowdown: float = 1.0
    link_transfer_ms: float = 0.0
    liveness_factor: float = 1.0
    loss_factor: float = 1.0
    bandwidth_cap: Optional[float] = None


class CrossLayerEstimator:
    """Estimates effective service QoS from infrastructure state."""

    def __init__(
        self,
        environment: PervasiveEnvironment,
        payload_bytes: int = DEFAULT_PAYLOAD_BYTES,
    ) -> None:
        self.environment = environment
        self.payload_bytes = payload_bytes

    # ------------------------------------------------------------------
    def breakdown(self, service: ServiceDescription) -> EstimationBreakdown:
        """The infrastructure factors currently applying to one service."""
        device = self.environment.hosting_device(service.service_id)
        link = None
        if device is not None and self.environment.network.has_link(
            device.device_id
        ):
            link = self.environment.network.link(device.device_id)

        slowdown = device.slowdown() if device is not None else 1.0
        transfer_ms = (
            link.transfer_seconds(self.payload_bytes) * 1000.0
            if link is not None
            else 0.0
        )
        liveness = 1.0
        if device is not None:
            if not device.alive:
                liveness = 0.0
            elif device.battery_level < LOW_BATTERY_THRESHOLD:
                liveness = device.battery_level / LOW_BATTERY_THRESHOLD
        loss_factor = 1.0 - link.loss_rate.value if link is not None else 1.0
        bandwidth_cap = None
        if link is not None:
            # Requests the link can carry per second at the assumed payload.
            bandwidth_cap = link.bandwidth.value / max(self.payload_bytes, 1)
        return EstimationBreakdown(
            device_slowdown=slowdown,
            link_transfer_ms=transfer_ms,
            liveness_factor=liveness,
            loss_factor=loss_factor,
            bandwidth_cap=bandwidth_cap,
        )

    def estimate(self, service: ServiceDescription) -> QoSVector:
        """Expected effective QoS of the service, right now."""
        advertised = service.advertised_qos
        factors = self.breakdown(service)
        values: Dict[str, float] = {}
        for name in advertised:
            value = advertised[name]
            if name == "response_time":
                value = value * factors.device_slowdown + factors.link_transfer_ms
            elif name == "availability":
                value *= factors.liveness_factor
            elif name == "reliability":
                value *= factors.loss_factor
            elif name == "throughput" and factors.bandwidth_cap is not None:
                value = min(value, factors.bandwidth_cap)
            values[name] = value
        return QoSVector(values, advertised.properties())

    def estimated_service(
        self, service: ServiceDescription
    ) -> ServiceDescription:
        """A copy of the service advertising its *estimated* QoS.

        Selection algorithms consume advertised vectors; feeding them
        estimate-adjusted copies makes the whole pipeline
        infrastructure-aware without touching the algorithms.
        """
        return service.with_qos(self.estimate(service))


class InfrastructureAwareDiscovery:
    """QoS-aware discovery that filters/ranks on *estimated* QoS.

    Wraps a plain :class:`QoSAwareDiscovery`: functional (semantic)
    matching is unchanged; the QoS admissibility check and the returned
    service descriptions use cross-layer estimates.
    """

    def __init__(
        self,
        discovery: QoSAwareDiscovery,
        estimator: CrossLayerEstimator,
    ) -> None:
        self.discovery = discovery
        self.estimator = estimator

    def discover(self, query: DiscoveryQuery) -> List[DiscoveryMatch]:
        # Run functional matching without local QoS constraints, then apply
        # the constraints against estimates.
        functional_query = DiscoveryQuery(
            capability=query.capability,
            inputs=query.inputs,
            outputs=query.outputs,
            local_constraints=(),
            minimum_degree=query.minimum_degree,
        )
        matches: List[DiscoveryMatch] = []
        for match in self.discovery.discover(functional_query):
            estimated = self.estimator.estimated_service(match.service)
            admissible = all(
                (value := estimated.advertised_qos.get(c.property_name))
                is not None and c.satisfied_by(value)
                for c in query.local_constraints
            )
            if admissible:
                matches.append(DiscoveryMatch(estimated, match.degree))
        return matches

    def candidates(self, query: DiscoveryQuery) -> List[ServiceDescription]:
        return [m.service for m in self.discover(query)]
