"""The Service QoS ontology (Chapter III §2.3).

Quality factors of application services themselves, organised under the
Core categories the WSQM-style taxonomy uses: performance, dependability,
cost, security and trust.  These are the concepts service providers use to
advertise QoS in pervasive environments.

Concept map (prefix ``sqos:``)::

    qos:PerformanceProperty   → ResponseTime (ExecutionTime, TransmissionTime),
                                Throughput, Capacity
    qos:DependabilityProperty → Availability, Reliability, Accuracy, Robustness
    qos:CostProperty          → Cost (FixedCost, PerUseCost)
    qos:SecurityProperty      → SecurityLevel, Confidentiality, Integrity,
                                Authentication
    qos:TrustProperty         → Reputation
"""

from __future__ import annotations

from repro.semantics.ontology import Ontology
from repro.qos.core_ontology import PREFIX as CORE, build_core_ontology

PREFIX = "sqos:"


def build_service_ontology(core: Ontology = None) -> Ontology:
    """Construct the Service QoS ontology on top of the Core one."""
    onto = Ontology("qos-service")
    onto.merge(core if core is not None else build_core_ontology())

    perf = f"{CORE}PerformanceProperty"
    dep = f"{CORE}DependabilityProperty"
    cost = f"{CORE}CostProperty"
    sec = f"{CORE}SecurityProperty"
    trust = f"{CORE}TrustProperty"

    response_time = onto.declare_class(
        f"{PREFIX}ResponseTime", [perf], label="Response time",
        comment="Invocation-to-response delay perceived by the consumer.",
    )
    onto.declare_class(f"{PREFIX}ExecutionTime", [response_time])
    onto.declare_class(f"{PREFIX}TransmissionTime", [response_time])
    onto.declare_class(f"{PREFIX}Throughput", [perf], label="Throughput")
    onto.declare_class(f"{PREFIX}Capacity", [perf], label="Capacity")

    onto.declare_class(f"{PREFIX}Availability", [dep], label="Availability")
    onto.declare_class(f"{PREFIX}Reliability", [dep], label="Reliability")
    onto.declare_class(f"{PREFIX}Accuracy", [dep], label="Accuracy")
    onto.declare_class(f"{PREFIX}Robustness", [dep], label="Robustness")

    cost_cls = onto.declare_class(f"{PREFIX}Cost", [cost], label="Cost")
    onto.declare_class(f"{PREFIX}FixedCost", [cost_cls])
    onto.declare_class(f"{PREFIX}PerUseCost", [cost_cls])

    onto.declare_class(f"{PREFIX}SecurityLevel", [sec], label="Security level")
    onto.declare_class(f"{PREFIX}Confidentiality", [sec])
    onto.declare_class(f"{PREFIX}Integrity", [sec])
    onto.declare_class(f"{PREFIX}Authentication", [sec])

    onto.declare_class(f"{PREFIX}Reputation", [trust], label="Reputation")

    # Monotonicity facts.
    decreasing = ("ResponseTime", "ExecutionTime", "TransmissionTime", "Cost",
                  "FixedCost", "PerUseCost")
    increasing = ("Throughput", "Capacity", "Availability", "Reliability",
                  "Accuracy", "Robustness", "SecurityLevel", "Confidentiality",
                  "Integrity", "Authentication", "Reputation")
    for name in decreasing:
        onto.assert_fact(f"{PREFIX}{name}", f"{CORE}hasMonotonicity",
                         f"{CORE}Decreasing")
    for name in increasing:
        onto.assert_fact(f"{PREFIX}{name}", f"{CORE}hasMonotonicity",
                         f"{CORE}Increasing")

    # Aggregation-mode facts (Table IV.1 anchors).
    additive = ("ResponseTime", "ExecutionTime", "TransmissionTime", "Cost",
                "FixedCost", "PerUseCost")
    multiplicative = ("Availability", "Reliability")
    min_agg = ("Throughput", "Capacity", "SecurityLevel")
    averaged = ("Reputation", "Accuracy")
    for names, mode in (
        (additive, "Additive"),
        (multiplicative, "Multiplicative"),
        (min_agg, "MinAggregated"),
        (averaged, "Averaged"),
    ):
        for name in names:
            onto.assert_fact(f"{PREFIX}{name}", f"{CORE}hasAggregationMode",
                             f"{CORE}{mode}")

    onto.validate()
    return onto
