"""The User QoS ontology (Chapter III §2.4).

Users do not speak in provider vocabulary: they ask for *fast*, *cheap*,
*dependable* services.  The User QoS ontology declares the user-perceived
concepts and — crucially for shared understanding — maps them onto the
Service/Infrastructure concepts through ``owl:equivalentClass`` statements
and subsumption, so the middleware can translate a user requirement like
``uqos:Speed ≤ 500 ms`` into constraints over ``sqos:ResponseTime``.

Concept map (prefix ``uqos:``)::

    UserPerceivedProperty
    ├── Speed          ≡ sqos:ResponseTime
    ├── Price          ≡ sqos:Cost
    ├── Dependability  ⊒ sqos:Availability, sqos:Reliability
    ├── RenderingQuality (MediaQuality for streaming scenarios)
    ├── BatteryFriendliness ≡ iqos:EnergyConsumption
    └── Trustworthiness ≡ sqos:Reputation
"""

from __future__ import annotations

from typing import Dict

from repro.semantics.ontology import Ontology
from repro.qos.core_ontology import PREFIX as CORE

PREFIX = "uqos:"

#: Direct term translation table (user concept -> service/infra concept).
#: Derived from the equivalences declared below; exported for quick lookups
#: that do not need full reasoning.
USER_TERM_MAP: Dict[str, str] = {
    f"{PREFIX}Speed": "sqos:ResponseTime",
    f"{PREFIX}Price": "sqos:Cost",
    f"{PREFIX}BatteryFriendliness": "iqos:EnergyConsumption",
    f"{PREFIX}Trustworthiness": "sqos:Reputation",
}


def build_user_ontology(base: Ontology) -> Ontology:
    """Extend an ontology that already contains the Core + Service (+ Infra)
    concepts with the user-perceived vocabulary and its mappings.

    Unlike the other builders this one *requires* a base ontology, because
    every user concept is defined by reference to provider concepts.
    """
    onto = base

    user_root = onto.declare_class(
        f"{PREFIX}UserPerceivedProperty",
        [f"{CORE}QoSProperty"],
        label="User-perceived property",
        comment="QoS vocabulary as end users express it.",
    )

    speed = onto.declare_class(f"{PREFIX}Speed", [user_root], label="Speed")
    onto.declare_equivalence(speed, "sqos:ResponseTime")

    price = onto.declare_class(f"{PREFIX}Price", [user_root], label="Price")
    onto.declare_equivalence(price, "sqos:Cost")

    dependability = onto.declare_class(
        f"{PREFIX}Dependability", [user_root], label="Dependability",
        comment="Umbrella user term covering availability and reliability.",
    )
    # The user term is *more general* than the provider terms: providers
    # advertising Availability or Reliability satisfy a Dependability ask
    # with a PLUGIN match.
    onto.declare_subclass("sqos:Availability", dependability)
    onto.declare_subclass("sqos:Reliability", dependability)

    onto.declare_class(
        f"{PREFIX}RenderingQuality", [user_root], label="Rendering quality",
        comment="Perceived media quality (audio/video streaming scenarios).",
    )

    battery = onto.declare_class(
        f"{PREFIX}BatteryFriendliness", [user_root], label="Battery friendliness",
    )
    if onto.is_class("iqos:EnergyConsumption"):
        onto.declare_equivalence(battery, "iqos:EnergyConsumption")

    trust = onto.declare_class(
        f"{PREFIX}Trustworthiness", [user_root], label="Trustworthiness",
    )
    onto.declare_equivalence(trust, "sqos:Reputation")

    onto.validate()
    return onto
