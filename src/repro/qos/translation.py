"""Translating user-vocabulary requirements into middleware constraints.

The User QoS ontology (§III.2.4) exists so users never have to speak
provider vocabulary: Bob asks for *Speed* and *Dependability*, not
``sqos:ResponseTime`` and availability×reliability.  This module is the
operational half of that story:

* a :class:`UserRequirement` is a bound on a *user concept*
  (``uqos:Speed <= 2 s``), optionally in a non-canonical unit;
* :func:`translate_requirements` resolves each concept through the QoS
  model's subsumption reasoning into one or more concrete
  :class:`~repro.composition.request.GlobalConstraint` — an umbrella term
  like ``uqos:Dependability`` fans out to availability *and* reliability;
* user-term preference weights translate the same way, splitting an
  umbrella's weight over its refinements;
* :func:`build_request` packages the result into a ready
  :class:`~repro.composition.request.UserRequest`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import QoSModelError
from repro.qos.model import QoSModel
from repro.qos.properties import Direction
from repro.qos.units import Unit, convert
from repro.semantics.matching import MatchDegree
from repro.composition.request import GlobalConstraint, UserRequest
from repro.composition.task import Task


@dataclass(frozen=True)
class UserRequirement:
    """One bound expressed in the user's vocabulary.

    ``operator`` may be omitted: the natural direction of each resolved
    property is used (an upper bound for negative properties, a lower bound
    for positive ones), which is what "Speed at most 2 s" / "Dependability
    at least 0.9" mean without the user knowing property polarity.
    """

    concept: str                       # e.g. "uqos:Speed"
    bound: float
    unit: Optional[Unit] = None        # bound's unit, if not canonical
    operator: Optional[str] = None     # "<=", ">=" or None for natural


@dataclass(frozen=True)
class TranslationReport:
    """How one user requirement resolved (for explaining to the user)."""

    requirement: UserRequirement
    constraints: Tuple[GlobalConstraint, ...]
    degrees: Tuple[MatchDegree, ...]


def translate_requirements(
    model: QoSModel,
    requirements: Sequence[UserRequirement],
    minimum: MatchDegree = MatchDegree.PLUGIN,
) -> Tuple[Tuple[GlobalConstraint, ...], List[TranslationReport]]:
    """Resolve user-vocabulary requirements to concrete global constraints.

    Raises :class:`QoSModelError` when a concept resolves to nothing — a
    silent drop would let the middleware return compositions that ignore a
    requirement the user stated.
    """
    constraints: List[GlobalConstraint] = []
    reports: List[TranslationReport] = []
    for requirement in requirements:
        matches = model.resolve_term(requirement.concept, minimum=minimum)
        if not matches:
            raise QoSModelError(
                f"user requirement on {requirement.concept!r} resolves to "
                "no registered QoS property"
            )
        resolved: List[GlobalConstraint] = []
        degrees: List[MatchDegree] = []
        for prop, degree in matches:
            bound = requirement.bound
            if requirement.unit is not None:
                bound = convert(bound, requirement.unit, prop.unit)
            if requirement.operator is not None:
                constraint = GlobalConstraint(
                    prop.name, requirement.operator, bound
                )
            else:
                constraint = GlobalConstraint.natural(prop, bound)
            resolved.append(constraint)
            degrees.append(degree)
        constraints.extend(resolved)
        reports.append(
            TranslationReport(requirement, tuple(resolved), tuple(degrees))
        )
    return tuple(constraints), reports


def translate_weights(
    model: QoSModel,
    user_weights: Mapping[str, float],
    minimum: MatchDegree = MatchDegree.PLUGIN,
) -> Dict[str, float]:
    """Resolve user-concept preference weights onto property names.

    An umbrella concept's weight splits evenly over its resolved
    properties; weights landing on the same property accumulate.
    """
    weights: Dict[str, float] = {}
    for concept, weight in user_weights.items():
        if weight < 0:
            raise QoSModelError(
                f"negative preference weight for {concept!r}"
            )
        matches = model.resolve_term(concept, minimum=minimum)
        if not matches:
            raise QoSModelError(
                f"preference on {concept!r} resolves to no registered "
                "QoS property"
            )
        share = weight / len(matches)
        for prop, _ in matches:
            weights[prop.name] = weights.get(prop.name, 0.0) + share
    return weights


def build_request(
    model: QoSModel,
    task: Task,
    requirements: Sequence[UserRequirement] = (),
    user_weights: Optional[Mapping[str, float]] = None,
    minimum: MatchDegree = MatchDegree.PLUGIN,
) -> Tuple[UserRequest, List[TranslationReport]]:
    """A ready UserRequest from user-vocabulary requirements and weights."""
    constraints, reports = translate_requirements(model, requirements, minimum)
    weights = (
        translate_weights(model, user_weights, minimum)
        if user_weights
        else {}
    )
    return UserRequest(task, constraints=constraints, weights=weights), reports
