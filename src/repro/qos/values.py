"""Concrete QoS values and vectors.

A :class:`QoSValue` is one measured/advertised quantity for one property;
a :class:`QoSVector` bundles the values a service advertises (or a monitor
observed) over a property set.  Vectors support unit-normalised access,
Pareto-dominance tests (used by QASSA's local selection pruning) and the
N-dimensional Euclidean distance ``D`` used by the clustering phase.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Mapping, Optional, Tuple

from repro.errors import QoSModelError, UnitError
from repro.qos.properties import QoSProperty
from repro.qos.units import Unit, convert


@dataclass(frozen=True)
class QoSValue:
    """A raw quantity for one QoS property, in an explicit unit."""

    property: QoSProperty
    value: float
    unit: Optional[Unit] = None

    def __post_init__(self) -> None:
        if self.unit is None:
            object.__setattr__(self, "unit", self.property.unit)

    def in_canonical_unit(self) -> float:
        """The value converted to the property's declared unit."""
        assert self.unit is not None
        return convert(self.value, self.unit, self.property.unit)

    def better_than(self, other: "QoSValue") -> bool:
        """Strict preference under the property's direction (unit-aware)."""
        if other.property != self.property:
            raise QoSModelError(
                f"cannot compare {self.property.name} with {other.property.name}"
            )
        return self.property.better(
            self.in_canonical_unit(), other.in_canonical_unit()
        )


class QoSVector:
    """An immutable mapping ``property name -> value`` in canonical units.

    This is the ``QoS_s`` vector of the paper's composition model (§IV.2.1):
    the QoS advertised by one service, or aggregated over one composition.
    """

    __slots__ = ("_values", "_properties")

    def __init__(
        self,
        values: Mapping[str, float],
        properties: Mapping[str, QoSProperty],
    ) -> None:
        unknown = set(values) - set(properties)
        if unknown:
            raise QoSModelError(f"values for undeclared properties: {sorted(unknown)}")
        self._values: Dict[str, float] = dict(values)
        self._properties: Dict[str, QoSProperty] = {
            name: properties[name] for name in values
        }

    @classmethod
    def from_values(cls, values: Iterable[QoSValue]) -> "QoSVector":
        """Build a vector from raw :class:`QoSValue` items, converting units."""
        mapping: Dict[str, float] = {}
        props: Dict[str, QoSProperty] = {}
        for v in values:
            if v.property.name in mapping:
                raise QoSModelError(f"duplicate value for {v.property.name!r}")
            mapping[v.property.name] = v.in_canonical_unit()
            props[v.property.name] = v.property
        return cls(mapping, props)

    # -- mapping protocol ----------------------------------------------------
    def __getitem__(self, name: str) -> float:
        return self._values[name]

    def get(self, name: str, default: Optional[float] = None) -> Optional[float]:
        return self._values.get(name, default)

    def __contains__(self, name: str) -> bool:
        return name in self._values

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def items(self) -> Iterator[Tuple[str, float]]:
        return iter(self._values.items())

    def property(self, name: str) -> QoSProperty:
        return self._properties[name]

    def properties(self) -> Dict[str, QoSProperty]:
        return dict(self._properties)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QoSVector):
            return NotImplemented
        return self._values == other._values

    def __hash__(self) -> int:
        return hash(tuple(sorted(self._values.items())))

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v:g}" for k, v in sorted(self._values.items()))
        return f"QoSVector({inner})"

    # -- algebra ---------------------------------------------------------------
    def restrict(self, names: Iterable[str]) -> "QoSVector":
        """Project onto a subset of properties (missing names are ignored)."""
        keep = [n for n in names if n in self._values]
        return QoSVector(
            {n: self._values[n] for n in keep},
            {n: self._properties[n] for n in keep},
        )

    def replace(self, name: str, value: float) -> "QoSVector":
        """A copy with one property's value changed."""
        if name not in self._values:
            raise QoSModelError(f"property {name!r} not in vector")
        values = dict(self._values)
        values[name] = value
        return QoSVector(values, self._properties)

    def dominates(self, other: "QoSVector") -> bool:
        """Pareto dominance over the *common* property set.

        ``self`` dominates ``other`` when it is at least as good on every
        shared property and strictly better on at least one.  Used to prune
        dominated candidates before clustering in QASSA's local phase.
        """
        shared = [n for n in self._values if n in other]
        if not shared:
            return False
        strictly_better = False
        for name in shared:
            prop = self._properties[name]
            a, b = self._values[name], other[name]
            if prop.better(b, a):
                return False
            if prop.better(a, b):
                strictly_better = True
        return strictly_better

    def distance(self, other: "QoSVector", scales: Mapping[str, float]) -> float:
        """The N-dimensional Euclidean distance ``D`` of §IV.3.2.

        ``scales`` maps property names to the (max - min) span observed in
        the candidate population, so each dimension contributes comparably
        regardless of unit magnitude.
        """
        total = 0.0
        for name, value in self._values.items():
            if name not in other:
                continue
            span = scales.get(name, 1.0) or 1.0
            delta = (value - other[name]) / span
            total += delta * delta
        return math.sqrt(total)
