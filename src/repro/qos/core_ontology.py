"""The QoS Core ontology (Chapter III §2.1).

The Core ontology captures domain-independent QoS concepts — what a QoS
property *is*, how it is measured, and how values behave — independently of
whether the property concerns the network, a device or an application
service.  The three domain ontologies (infrastructure, service, user) all
specialise concepts declared here.

Concept map (prefix ``qos:``)::

    QoSConcept
    ├── QoSProperty
    │   ├── PerformanceProperty
    │   ├── DependabilityProperty
    │   ├── CostProperty
    │   ├── SecurityProperty
    │   └── TrustProperty
    ├── QoSMetric
    │   ├── DeterministicMetric
    │   └── StatisticalMetric   (mean / percentile / variance)
    ├── QoSUnit
    ├── QoSValueType            (numeric / ordinal / boolean)
    ├── Monotonicity            (increasing / decreasing)
    └── AggregationMode         (additive / multiplicative / min / max / average)
"""

from __future__ import annotations

from repro.semantics.ontology import Ontology

PREFIX = "qos:"


def build_core_ontology() -> Ontology:
    """Construct the QoS Core ontology from scratch."""
    onto = Ontology("qos-core")

    root = onto.declare_class(
        f"{PREFIX}QoSConcept", label="QoS concept",
        comment="Top concept of the QoS Core ontology.",
    )

    prop = onto.declare_class(
        f"{PREFIX}QoSProperty", [root], label="QoS property",
        comment="A measurable non-functional characteristic.",
    )
    onto.declare_class(f"{PREFIX}PerformanceProperty", [prop], label="Performance")
    onto.declare_class(f"{PREFIX}DependabilityProperty", [prop], label="Dependability")
    onto.declare_class(f"{PREFIX}CostProperty", [prop], label="Cost")
    onto.declare_class(f"{PREFIX}SecurityProperty", [prop], label="Security")
    onto.declare_class(f"{PREFIX}TrustProperty", [prop], label="Trust")

    metric = onto.declare_class(
        f"{PREFIX}QoSMetric", [root], label="QoS metric",
        comment="How a property is quantified.",
    )
    onto.declare_class(f"{PREFIX}DeterministicMetric", [metric])
    stat = onto.declare_class(f"{PREFIX}StatisticalMetric", [metric])
    onto.declare_class(f"{PREFIX}MeanMetric", [stat])
    onto.declare_class(f"{PREFIX}PercentileMetric", [stat])
    onto.declare_class(f"{PREFIX}VarianceMetric", [stat])

    onto.declare_class(f"{PREFIX}QoSUnit", [root], label="Measurement unit")

    value_type = onto.declare_class(f"{PREFIX}QoSValueType", [root])
    onto.declare_class(f"{PREFIX}NumericValue", [value_type])
    onto.declare_class(f"{PREFIX}OrdinalValue", [value_type])
    onto.declare_class(f"{PREFIX}BooleanValue", [value_type])

    mono = onto.declare_class(
        f"{PREFIX}Monotonicity", [root],
        comment="Whether user satisfaction grows or shrinks with the value.",
    )
    onto.declare_class(f"{PREFIX}Increasing", [mono], label="higher is better")
    onto.declare_class(f"{PREFIX}Decreasing", [mono], label="lower is better")

    agg = onto.declare_class(
        f"{PREFIX}AggregationMode", [root],
        comment="How values compose along a service composition (Table IV.1).",
    )
    for mode in ("Additive", "Multiplicative", "MinAggregated", "MaxAggregated",
                 "Averaged"):
        onto.declare_class(f"{PREFIX}{mode}", [agg])

    # Relations tying the concepts together.
    onto.declare_property(
        f"{PREFIX}hasMetric", domain=prop, range_=metric, label="has metric"
    )
    onto.declare_property(
        f"{PREFIX}hasUnit", domain=metric, range_=f"{PREFIX}QoSUnit"
    )
    onto.declare_property(
        f"{PREFIX}hasValueType", domain=prop, range_=value_type
    )
    onto.declare_property(f"{PREFIX}hasMonotonicity", domain=prop, range_=mono)
    onto.declare_property(f"{PREFIX}hasAggregationMode", domain=prop, range_=agg)
    onto.declare_property(
        f"{PREFIX}dependsOn", domain=prop, range_=prop,
        label="depends on",
    )

    onto.validate()
    return onto
