"""Service-level agreements over composed services.

The survey chapter (II §2.2) highlights *contracting ability* as a defining
feature of service orientation, and VRESCo-style middleware represents a
composition's QoS as per-service SLAs under a global orchestration view.
This module provides that layer for QASOM:

* a :class:`ServiceLevelAgreement` holds the objectives one service owes
  the composition — derived from the user's *global* constraints by the
  same equal-share decomposition the monitor uses
  (:func:`repro.composition.request.decompose_constraint`);
* :func:`derive_slas` builds the SLA set for a selected composition plan;
* :class:`ComplianceTracker` consumes run-time observations (directly, or
  as a monitor listener) and produces per-objective
  :class:`ComplianceReport` rows with violation counts, compliance ratios
  and accrued penalties.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.errors import QoSModelError
from repro.qos.properties import QoSProperty
from repro.services.discovery import QoSConstraint
from repro.composition.request import decompose_constraint
from repro.composition.selection import CompositionPlan


@dataclass(frozen=True)
class ServiceLevelObjective:
    """One agreed bound, with an optional penalty per violation."""

    constraint: QoSConstraint
    penalty_per_violation: float = 0.0

    @property
    def property_name(self) -> str:
        return self.constraint.property_name

    def violated_by(self, value: float) -> bool:
        return not self.constraint.satisfied_by(value)

    def __str__(self) -> str:
        return str(self.constraint)


@dataclass
class ServiceLevelAgreement:
    """The objectives one service owes one composition."""

    service_id: str
    provider: str
    objectives: Tuple[ServiceLevelObjective, ...]
    composition: str = ""

    def objective_for(self, property_name: str) -> Optional[ServiceLevelObjective]:
        for objective in self.objectives:
            if objective.property_name == property_name:
                return objective
        return None


def derive_slas(
    plan: CompositionPlan,
    properties: Mapping[str, QoSProperty],
    penalty_per_violation: float = 0.0,
    include_alternates: bool = True,
) -> Dict[str, ServiceLevelAgreement]:
    """Per-service SLAs implementing a plan's global constraints.

    Each global constraint is decomposed into an equal-share per-service
    bound; services only receive objectives for properties they advertise
    (a provider cannot contract on a dimension it never promised).  With
    ``include_alternates`` (default) every ranked service of each activity
    gets an agreement — dynamic binding may invoke any of them, and an
    uncontracted invocation would escape compliance tracking.
    """
    n = len(plan.selections)
    slas: Dict[str, ServiceLevelAgreement] = {}
    for activity, selection in plan.selections.items():
        services = (
            selection.services if include_alternates else [selection.primary]
        )
        for service in services:
            objectives: List[ServiceLevelObjective] = []
            for constraint in plan.request.constraints:
                prop = properties.get(constraint.property_name)
                if prop is None:
                    continue
                if constraint.property_name not in service.advertised_qos:
                    continue
                objectives.append(
                    ServiceLevelObjective(
                        decompose_constraint(constraint, prop, n),
                        penalty_per_violation,
                    )
                )
            slas[service.service_id] = ServiceLevelAgreement(
                service_id=service.service_id,
                provider=service.provider,
                objectives=tuple(objectives),
                composition=plan.task.name,
            )
    return slas


@dataclass
class ComplianceReport:
    """Per-objective compliance of one service."""

    service_id: str
    objective: ServiceLevelObjective
    observations: int = 0
    violations: int = 0
    worst_value: Optional[float] = None
    accrued_penalty: float = 0.0

    @property
    def compliance_ratio(self) -> float:
        """Fraction of observations meeting the objective (1.0 if none)."""
        if self.observations == 0:
            return 1.0
        return 1.0 - self.violations / self.observations

    @property
    def compliant(self) -> bool:
        return self.violations == 0


class ComplianceTracker:
    """Tracks observed QoS against a set of SLAs.

    Feed it directly via :meth:`record`, or attach it to a
    :class:`~repro.adaptation.monitoring.QoSMonitor`-shaped observation
    stream by calling :meth:`record` from the execution engine's invoker
    wrapper.
    """

    def __init__(self, slas: Mapping[str, ServiceLevelAgreement]) -> None:
        self._slas = dict(slas)
        self._reports: Dict[Tuple[str, str], ComplianceReport] = {}
        for sla in self._slas.values():
            for objective in sla.objectives:
                key = (sla.service_id, objective.property_name)
                self._reports[key] = ComplianceReport(sla.service_id, objective)

    def record(self, service_id: str, property_name: str, value: float) -> bool:
        """Record one observation; returns True when it violated the SLO.

        Observations for services/properties without an agreement are
        ignored (no contract — nothing to breach).
        """
        report = self._reports.get((service_id, property_name))
        if report is None:
            return False
        report.observations += 1
        objective = report.objective
        prop_constraint = objective.constraint
        if report.worst_value is None or prop_constraint.slack(value) < (
            prop_constraint.slack(report.worst_value)
        ):
            report.worst_value = value
        if objective.violated_by(value):
            report.violations += 1
            report.accrued_penalty += objective.penalty_per_violation
            return True
        return False

    def record_vector(self, service_id: str, vector) -> int:
        """Record a full QoS vector; returns the number of violations."""
        count = 0
        for name, value in vector.items():
            if self.record(service_id, name, value):
                count += 1
        return count

    # ------------------------------------------------------------------
    def report(self, service_id: str) -> List[ComplianceReport]:
        return [
            r for (sid, _), r in self._reports.items() if sid == service_id
        ]

    def reports(self) -> List[ComplianceReport]:
        return list(self._reports.values())

    def total_penalty(self) -> float:
        return sum(r.accrued_penalty for r in self._reports.values())

    def breached_agreements(self) -> List[str]:
        """Service ids with at least one violated objective."""
        return sorted({
            r.service_id for r in self._reports.values() if not r.compliant
        })

    def summary(self) -> Dict[str, float]:
        reports = self.reports()
        observations = sum(r.observations for r in reports)
        violations = sum(r.violations for r in reports)
        return {
            "agreements": float(len(self._slas)),
            "objectives": float(len(reports)),
            "observations": float(observations),
            "violations": float(violations),
            "total_penalty": self.total_penalty(),
        }
