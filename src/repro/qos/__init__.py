"""Semantic end-to-end QoS model for pervasive environments (S2, Chapter III).

The paper's first contribution is a semantic QoS model structured as four
ontologies:

* **QoS Core ontology** (:mod:`repro.qos.core_ontology`) — domain-independent
  QoS concepts: properties, metrics, units, value types, monotonicity.
* **Infrastructure QoS ontology** (:mod:`repro.qos.infrastructure`) — quality
  factors of the network and devices underlying services (bandwidth, latency,
  battery, CPU, memory...).
* **Service QoS ontology** (:mod:`repro.qos.service_qos`) — quality of
  application services (response time, availability, reliability, cost,
  throughput, security, reputation...).
* **User QoS ontology** (:mod:`repro.qos.user_qos`) — the user-perceived
  vocabulary (speed, price, dependability...) mapped onto service/infra
  concepts through equivalences, enabling heterogeneous actors to interoperate.

On top of the ontologies, this package provides the concrete value machinery
used everywhere else: :class:`~repro.qos.properties.QoSProperty` definitions
with units and monotonicity, :class:`~repro.qos.values.QoSVector` bundles, and
the :class:`~repro.qos.model.QoSModel` facade that maps required (user) QoS
terms onto offered (provider) terms via subsumption reasoning.
"""

from repro.qos.core_ontology import build_core_ontology
from repro.qos.infrastructure import build_infrastructure_ontology
from repro.qos.model import QoSModel, build_end_to_end_model
from repro.qos.properties import (
    Direction,
    QoSProperty,
    AVAILABILITY,
    COST,
    ENERGY,
    RELIABILITY,
    REPUTATION,
    RESPONSE_TIME,
    SECURITY_LEVEL,
    THROUGHPUT,
    STANDARD_PROPERTIES,
)
from repro.qos.service_qos import build_service_ontology
from repro.qos.units import Unit, convert
from repro.qos.user_qos import build_user_ontology
from repro.qos.values import QoSValue, QoSVector

__all__ = [
    "AVAILABILITY",
    "COST",
    "Direction",
    "ENERGY",
    "QoSModel",
    "QoSProperty",
    "QoSValue",
    "QoSVector",
    "RELIABILITY",
    "REPUTATION",
    "RESPONSE_TIME",
    "SECURITY_LEVEL",
    "STANDARD_PROPERTIES",
    "THROUGHPUT",
    "Unit",
    "build_core_ontology",
    "build_end_to_end_model",
    "build_infrastructure_ontology",
    "build_service_ontology",
    "build_user_ontology",
    "convert",
]
