"""QoS property definitions.

A :class:`QoSProperty` ties together the pieces the rest of the middleware
needs to reason about one quality dimension:

* a concept URI anchoring the property in the QoS ontologies,
* a *direction* (whether larger values are better or worse for the user),
* the *aggregation kind* determining how values compose over patterns
  (Table IV.1 of the paper: additive, multiplicative, min/max...),
* a measurement unit and a plausible value range (used by workload
  generators and utility normalisation).

The module also declares the standard property set used throughout the
paper's evaluation: response time, cost, availability, reliability,
throughput, reputation, security level and energy consumption.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.errors import QoSModelError
from repro.qos import units as u
from repro.qos.units import Unit


class Direction(enum.Enum):
    """Whether a QoS property is to be minimised or maximised.

    ``NEGATIVE`` properties (response time, cost...) hurt the user as they
    grow; ``POSITIVE`` properties (availability, throughput...) help.
    """

    NEGATIVE = "negative"   # lower is better
    POSITIVE = "positive"   # higher is better

    def better(self, a: float, b: float) -> bool:
        """True when value ``a`` is strictly better than ``b``."""
        return a < b if self is Direction.NEGATIVE else a > b

    def best(self, values) -> float:
        """The best value of an iterable under this direction."""
        return min(values) if self is Direction.NEGATIVE else max(values)

    def worst(self, values) -> float:
        """The worst value of an iterable under this direction."""
        return max(values) if self is Direction.NEGATIVE else min(values)


class AggregationKind(enum.Enum):
    """How a property composes along a *sequence* of services (Table IV.1).

    The full per-pattern formulas live in
    :mod:`repro.composition.aggregation`; the kind recorded here picks the
    formula family.
    """

    ADDITIVE = "additive"             # e.g. response time, cost, energy
    MULTIPLICATIVE = "multiplicative"  # e.g. availability, reliability
    MIN = "min"                        # e.g. throughput (bottleneck)
    MAX = "max"                        # e.g. worst-case security exposure
    AVERAGE = "average"                # e.g. reputation


@dataclass(frozen=True)
class QoSProperty:
    """One quality dimension of services/infrastructure.

    ``value_range`` bounds plausible raw values; it is used for SAW utility
    normalisation fallback and by the synthetic workload generator, not for
    validation of observed values (run-time QoS may exceed it).
    """

    name: str
    uri: str
    direction: Direction
    aggregation: AggregationKind
    unit: Unit
    value_range: Tuple[float, float] = (0.0, 1.0)
    description: str = ""

    def __post_init__(self) -> None:
        lo, hi = self.value_range
        if not lo < hi:
            raise QoSModelError(
                f"property {self.name!r}: empty value range {self.value_range}"
            )

    def better(self, a: float, b: float) -> bool:
        return self.direction.better(a, b)

    def __str__(self) -> str:
        return self.name


RESPONSE_TIME = QoSProperty(
    name="response_time",
    uri="sqos:ResponseTime",
    direction=Direction.NEGATIVE,
    aggregation=AggregationKind.ADDITIVE,
    unit=u.MILLISECONDS,
    value_range=(5.0, 2000.0),
    description="Elapsed time between service invocation and response.",
)

COST = QoSProperty(
    name="cost",
    uri="sqos:Cost",
    direction=Direction.NEGATIVE,
    aggregation=AggregationKind.ADDITIVE,
    unit=u.EURO,
    value_range=(0.0, 100.0),
    description="Monetary price charged for one service execution.",
)

AVAILABILITY = QoSProperty(
    name="availability",
    uri="sqos:Availability",
    direction=Direction.POSITIVE,
    aggregation=AggregationKind.MULTIPLICATIVE,
    unit=u.RATIO,
    value_range=(0.5, 1.0),
    description="Probability that the service is up and reachable.",
)

RELIABILITY = QoSProperty(
    name="reliability",
    uri="sqos:Reliability",
    direction=Direction.POSITIVE,
    aggregation=AggregationKind.MULTIPLICATIVE,
    unit=u.RATIO,
    value_range=(0.5, 1.0),
    description="Probability that an invocation completes correctly.",
)

THROUGHPUT = QoSProperty(
    name="throughput",
    uri="sqos:Throughput",
    direction=Direction.POSITIVE,
    aggregation=AggregationKind.MIN,
    unit=u.REQUESTS_PER_SECOND,
    value_range=(1.0, 500.0),
    description="Sustained request rate the service can absorb.",
)

REPUTATION = QoSProperty(
    name="reputation",
    uri="sqos:Reputation",
    direction=Direction.POSITIVE,
    aggregation=AggregationKind.AVERAGE,
    unit=u.SCORE,
    value_range=(0.0, 5.0),
    description="Average user rating of the service provider.",
)

SECURITY_LEVEL = QoSProperty(
    name="security_level",
    uri="sqos:SecurityLevel",
    direction=Direction.POSITIVE,
    aggregation=AggregationKind.MIN,
    unit=u.SCORE,
    value_range=(0.0, 5.0),
    description="Ordinal strength of the security mechanisms applied.",
)

ENERGY = QoSProperty(
    name="energy",
    uri="iqos:EnergyConsumption",
    direction=Direction.NEGATIVE,
    aggregation=AggregationKind.ADDITIVE,
    unit=u.JOULE,
    value_range=(0.1, 50.0),
    description="Device energy drawn by one service execution.",
)

#: The standard property set used by the paper's evaluation workloads.
STANDARD_PROPERTIES: Dict[str, QoSProperty] = {
    p.name: p
    for p in (
        RESPONSE_TIME,
        COST,
        AVAILABILITY,
        RELIABILITY,
        THROUGHPUT,
        REPUTATION,
        SECURITY_LEVEL,
        ENERGY,
    )
}


def property_by_name(name: str) -> QoSProperty:
    """Look a standard property up by name; raises for unknown names."""
    try:
        return STANDARD_PROPERTIES[name]
    except KeyError:
        raise QoSModelError(f"unknown standard QoS property: {name!r}") from None
