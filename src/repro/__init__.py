"""QASOM — QoS-aware Service-Oriented Middleware for Pervasive Environments.

A from-scratch Python reproduction of Nebil Ben Mabrouk's middleware
(MIDDLEWARE 2009 / INRIA ARLES thesis).  The three contributions of the
paper map onto three subsystem groups:

1. **Semantic end-to-end QoS model** — :mod:`repro.semantics`,
   :mod:`repro.qos`;
2. **QoS-aware service composition (QASSA)** — :mod:`repro.services`,
   :mod:`repro.composition`;
3. **QoS-driven composition adaptation** — :mod:`repro.adaptation`,
   :mod:`repro.execution`.

The :mod:`repro.env` simulator stands in for a physical pervasive
environment, :mod:`repro.middleware` assembles everything into the QASOM
platform, and :mod:`repro.experiments` regenerates the paper's evaluation.

Applications should import from :mod:`repro.api`, the stable blessed
surface (this top level re-exports the most common names for interactive
convenience).  Quickstart::

    from repro.api import QASOM, build_shopping_scenario

    scenario = build_shopping_scenario()
    middleware = QASOM.for_environment(
        scenario.environment,
        scenario.properties,
        ontology=scenario.ontology,
        repository=scenario.repository,
    )
    result = middleware.run(scenario.request)

For many concurrent requests against one environment, wrap the middleware
in a :class:`repro.runtime.MiddlewareRuntime` — same ``submit``/``run``
surface, pooled brokering.  See ``docs/RUNTIME.md``.
"""

from repro.errors import ReproError
from repro.middleware.qasom import QASOM, RunResult
from repro.middleware.config import MiddlewareConfig
from repro.runtime import MiddlewareRuntime, RunHandle, RuntimeConfig
from repro.qos.model import QoSModel, build_end_to_end_model
from repro.qos.properties import STANDARD_PROPERTIES
from repro.composition.qassa import QASSA, QassaConfig
from repro.composition.request import GlobalConstraint, UserRequest
from repro.composition.selection import CandidateSets, CompositionPlan
from repro.composition.task import Task
from repro.env.environment import PervasiveEnvironment
from repro.env.scenarios import (
    build_hospital_scenario,
    build_holiday_camp_scenario,
    build_shopping_scenario,
)

__version__ = "1.0.0"

__all__ = [
    "CandidateSets",
    "CompositionPlan",
    "GlobalConstraint",
    "MiddlewareConfig",
    "MiddlewareRuntime",
    "PervasiveEnvironment",
    "QASOM",
    "QASSA",
    "QassaConfig",
    "QoSModel",
    "ReproError",
    "RunHandle",
    "RunResult",
    "RuntimeConfig",
    "STANDARD_PROPERTIES",
    "Task",
    "UserRequest",
    "build_end_to_end_model",
    "build_hospital_scenario",
    "build_holiday_camp_scenario",
    "build_shopping_scenario",
    "__version__",
]
