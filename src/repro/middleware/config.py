"""Middleware-level configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.composition.aggregation import AggregationApproach
from repro.composition.qassa import QassaConfig
from repro.adaptation.homeomorphism import HomeomorphismConfig
from repro.adaptation.monitoring import MonitorConfig
from repro.observability import ObservabilityConfig
from repro.resilience.policies import ResilienceConfig
from repro.semantics.matching import MatchDegree


@dataclass(frozen=True, kw_only=True)
class MiddlewareConfig:
    """One place to tune the whole QASOM stack.

    The defaults mirror the paper's prototype: pessimistic aggregation (the
    only approach whose results are *guaranteed* bounds), PLUGIN-or-better
    semantic matching, proactive monitoring on.

    Construction is keyword-only: a dozen positional booleans/enums would
    be unreadable and unorderable at call sites, and keyword-only fields
    let this dataclass grow without breaking existing callers.
    """

    aggregation: AggregationApproach = AggregationApproach.PESSIMISTIC
    qassa: QassaConfig = field(default_factory=QassaConfig)
    homeomorphism: HomeomorphismConfig = field(default_factory=HomeomorphismConfig)
    monitor: MonitorConfig = field(default_factory=MonitorConfig)
    discovery_minimum_degree: MatchDegree = MatchDegree.PLUGIN
    #: When on, discovery corrects advertised QoS with cross-layer estimates
    #: from the live infrastructure state (device load/battery, link
    #: latency/loss) before selection sees the candidates — the operational
    #: form of Ch. III's end-to-end dependencies.
    infrastructure_aware: bool = False
    #: When on, the middleware wires a shared
    #: :class:`~repro.composition.selection_cache.SelectionCache` into QASSA
    #: and substitution: repeated selections reuse per-activity local-phase
    #: results for activities whose candidate pool is unchanged, so churn
    #: and fault events recompute only what they touched.  Chosen
    #: compositions are identical either way; turn off to force full
    #: recomputation on every request.  See ``docs/PERFORMANCE.md``.
    incremental_selection: bool = True
    max_execution_attempts: int = 3
    seed: int = 0
    #: Tracing + metrics for every component the middleware constructs
    #: (off by default — the disabled path is near-zero cost).  See
    #: ``docs/OBSERVABILITY.md``.
    observability: ObservabilityConfig = field(
        default_factory=ObservabilityConfig
    )
    #: Retry/timeout/backoff policies, per-service circuit breakers and
    #: graceful degradation for composition execution (off by default —
    #: the fault-free hot path is unchanged).  See ``docs/RESILIENCE.md``.
    resilience: ResilienceConfig = field(default_factory=ResilienceConfig)
