"""QASOM — the QoS-aware service-oriented middleware facade (S13, Ch. VI).

:class:`~repro.middleware.qasom.QASOM` assembles the two frameworks of
Fig. VI.2 — the QoS-aware Service Composition Framework (discovery +
QASSA + dynamic binding + execution) and the QoS-driven Composition
Adaptation Framework (monitor + substitution + behavioural adaptation) —
behind the small API the examples use:

>>> middleware = QASOM.for_environment(env, ontology=onto, repository=repo)
>>> result = middleware.run(request)
>>> plan = middleware.submit(request, execute=False).plan()

For concurrent multi-request brokering, wrap it in
:class:`repro.runtime.MiddlewareRuntime` — same surface, pooled.
"""

from repro.middleware.config import MiddlewareConfig
from repro.middleware.qasom import QASOM, RunResult

__all__ = ["MiddlewareConfig", "QASOM", "RunResult"]
