"""The QASOM middleware platform (Ch. VI, Figs. VI.2-VI.4).

QASOM wires every subsystem of the reproduction into the two frameworks of
the paper's architecture:

* the **QoS-aware Service Composition Framework** — semantic QoS-aware
  discovery over the environment's registry, QASSA selection, dynamic
  binding, and the execution engine;
* the **QoS-driven Composition Adaptation Framework** — global/proactive
  monitoring, service substitution, and behavioural adaptation over the
  task class repository.

The public surface is deliberately small and mirrors the concurrent
runtime's: :meth:`submit` (request → :class:`~repro.runtime.handle.RunHandle`,
processed inline) and :meth:`run` (request → :class:`RunResult`).  Code
written against it moves to the pooled
:class:`~repro.runtime.runtime.MiddlewareRuntime` without changes.  The
pre-redesign entrypoints (``compose`` / ``compose_ranked`` / ``execute``)
remain as deprecated shims — see the "Public API & migration" section of
``docs/ARCHITECTURE.md``.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.errors import DiscoveryError, NoCandidateError
from repro.qos.model import QoSModel, build_end_to_end_model
from repro.qos.properties import QoSProperty
from repro.semantics.ontology import Ontology
from repro.services.description import ServiceDescription
from repro.services.discovery import DiscoveryQuery, QoSAwareDiscovery
from repro.composition.qassa import QASSA
from repro.composition.request import UserRequest
from repro.composition.selection import CandidateSets, CompositionPlan
from repro.composition.selection_cache import SelectionCache
from repro.composition.task import Task
from repro.execution.binding import DynamicBinder
from repro.execution.engine import ExecutionEngine, ExecutionReport
from repro.adaptation.behavioural import BehaviouralAdaptation
from repro.adaptation.manager import AdaptationManager, AdaptationOutcome
from repro.adaptation.monitoring import AdaptationTrigger, QoSMonitor
from repro.adaptation.substitution import ServiceSubstitution
from repro.adaptation.task_class import TaskClassRepository
from repro.middleware.config import MiddlewareConfig
from repro.observability import Observability, Span, TraceContext
from repro.observability import core as observability_core
from repro.qos.sla import ComplianceTracker, derive_slas
from repro.resilience.breaker import BreakerRegistry
from repro.resilience.degradation import PartialExecutionReport
from repro.runtime.handle import RunHandle, RunSpec, completed_handle
from repro.env.environment import PervasiveEnvironment


@dataclass
class RunResult:
    """compose + execute in one call: the plan, the trace, the adaptations,
    and (when SLA tracking is on) the compliance summary."""

    plan: CompositionPlan
    report: ExecutionReport
    adaptations: List[AdaptationOutcome] = field(default_factory=list)
    compliance: Optional["ComplianceTracker"] = None
    #: Root span of the run when observability is enabled (None otherwise).
    trace: Optional[Span] = None
    #: Degradation summary when the run completed with skipped optional
    #: activities (None for full completions and hard failures).
    partial: Optional[PartialExecutionReport] = None


class QASOM:
    """The assembled middleware."""

    def __init__(
        self,
        environment: PervasiveEnvironment,
        properties: Mapping[str, QoSProperty],
        *,
        task_ontology: Optional[Ontology] = None,
        repository: Optional[TaskClassRepository] = None,
        qos_model: Optional[QoSModel] = None,
        config: Optional[MiddlewareConfig] = None,
        observability: Optional[Observability] = None,
    ) -> None:
        # A fresh config per instance: a dataclass default would be one
        # module-level object silently shared by every QASOM ever built.
        config = config if config is not None else MiddlewareConfig()
        self.environment = environment
        self.properties = dict(properties)
        self.config = config
        self.qos_model = qos_model if qos_model is not None else build_end_to_end_model()

        # Observability: an explicit instance wins; otherwise the config
        # knob; otherwise the ambient default (NULL unless installed).
        if observability is None:
            observability = Observability.from_config(
                config.observability, clock=environment.clock
            )
            if not observability.enabled:
                observability = observability_core.get_default()
        if observability.enabled and getattr(
            observability.tracer, "clock", None
        ) is None:
            observability.attach_clock(environment.clock)
        self.observability = observability

        # Composition framework.
        self.discovery = QoSAwareDiscovery(
            environment.registry, task_ontology, observability=observability
        )
        self.estimator = None
        if config.infrastructure_aware:
            from repro.qos.dependencies import CrossLayerEstimator

            self.estimator = CrossLayerEstimator(environment)
        # Incremental re-selection: one cache shared by the selector (reuse
        # of per-activity local phases across compose() calls) and the
        # substitution path (utility-ranking of fresh candidates).
        self.selection_cache: Optional[SelectionCache] = (
            SelectionCache() if config.incremental_selection else None
        )
        self.selector = QASSA(
            self.properties, config.aggregation, config.qassa,
            observability=observability, cache=self.selection_cache,
        )

        # Adaptation framework.
        self.monitor = QoSMonitor(
            self.properties, config.monitor, observability=observability
        )
        self.substitution = ServiceSubstitution(
            self.properties, self.monitor,
            selection_cache=self.selection_cache,
        )
        self.repository = repository
        self.behavioural: Optional[BehaviouralAdaptation] = None
        if repository is not None:
            self.behavioural = BehaviouralAdaptation(
                repository,
                resolver=self.candidates_for,
                selector=lambda req, cands: self.selector.select(req, cands),
                ontology=task_ontology,
                config=config.homeomorphism,
            )

        # Resilience: with the knob on, build the per-service breaker
        # registry and hand the retry/timeout/degradation policies to the
        # binder and engine; off, every hook stays None and the execution
        # path is byte-for-byte the pre-resilience code.
        resilience = config.resilience
        self.breakers: Optional[BreakerRegistry] = None
        retry = timeout = degradation = None
        if resilience.enabled:
            self.breakers = BreakerRegistry(
                resilience.breaker,
                clock=environment.clock,
                observability=observability,
            )
            retry = resilience.retry
            timeout = resilience.timeout
            degradation = resilience.degradation
        # The environment's fault counters should land in the same metrics
        # registry as everything else (unless it already has its own).
        if observability.enabled and not environment.obs.enabled:
            environment.attach_observability(observability)

        self.binder = DynamicBinder(
            self.properties, self.monitor, liveness=environment.is_alive,
            observability=observability, breakers=self.breakers,
        )
        self.engine = ExecutionEngine(
            self.properties,
            invoker=environment.invoke,
            clock=environment.clock,
            binder=self.binder,
            monitor=self.monitor,
            max_attempts_per_activity=config.max_execution_attempts,
            seed=config.seed,
            observability=observability,
            retry=retry,
            timeout=timeout,
            breakers=self.breakers,
            degradation=degradation,
        )

    # ------------------------------------------------------------------
    @classmethod
    def for_environment(
        cls,
        environment: PervasiveEnvironment,
        properties: Mapping[str, QoSProperty],
        *,
        ontology: Optional[Ontology] = None,
        repository: Optional[TaskClassRepository] = None,
        config: Optional[MiddlewareConfig] = None,
        observability: Optional[Observability] = None,
    ) -> "QASOM":
        return cls(
            environment,
            properties,
            task_ontology=ontology,
            repository=repository,
            config=config,
            observability=observability,
        )

    # ------------------------------------------------------------------
    # composition framework
    # ------------------------------------------------------------------
    def candidates_for(self, task: Task) -> CandidateSets:
        """QoS-aware semantic discovery for every activity of a task.

        With ``config.infrastructure_aware`` the returned candidates
        advertise their *estimated effective* QoS (advertisement corrected
        by the hosting device and link state) instead of the raw claims.
        """
        pools: Dict[str, List[ServiceDescription]] = {}
        for activity in task.activities:
            query = DiscoveryQuery(
                capability=activity.capability,
                minimum_degree=self.config.discovery_minimum_degree,
            )
            with self.observability.span(
                "discovery", activity=activity.name,
                capability=activity.capability,
            ) as span:
                services = self.discovery.candidates(query)
                if self.estimator is not None:
                    services = [
                        self.estimator.estimated_service(s) for s in services
                    ]
                span.set(pool_size=len(services))
            if not services:
                raise NoCandidateError(activity.name)
            pools[activity.name] = services
        return CandidateSets(task, pools)

    def _compose_plan(
        self, request: UserRequest, best_effort: bool = False
    ) -> CompositionPlan:
        """Discover + select: the request's answer, ready for execution."""
        with self.observability.span(
            "compose", task=request.task.name,
            activities=request.task.size(),
        ) as span:
            candidates = self.candidates_for(request.task)
            plan = self.selector.select(
                request, candidates, best_effort=best_effort
            )
            span.set(utility=plan.utility, feasible=plan.feasible)
        return plan

    def _compose_ranked_plans(
        self, request: UserRequest, k: int = 3
    ) -> List[CompositionPlan]:
        """Several distinct feasible compositions, best QoS first (§I.1:
        the platform proposes ranked alternatives and the user picks)."""
        candidates = self.candidates_for(request.task)
        return self.selector.select_ranked(request, candidates, k=k)

    # ------------------------------------------------------------------
    # adaptation framework
    # ------------------------------------------------------------------
    def _fresh_candidates(self, activity) -> Sequence[ServiceDescription]:
        """A fresh discovery round for one abstract activity (substitution
        fallback).  Takes the Activity itself so it stays correct when
        behavioural adaptation swaps the managed plan's task."""
        query = DiscoveryQuery(
            capability=activity.capability,
            minimum_degree=self.config.discovery_minimum_degree,
        )
        return [
            s for s in self.discovery.candidates(query)
            if self.environment.is_alive(s)
        ]

    def adaptation_manager(
        self, plan: CompositionPlan, allow_behavioural: bool = True
    ) -> AdaptationManager:
        """Deploy a plan under a fresh adaptation manager.

        ``allow_behavioural=False`` restricts the manager to substitution —
        useful when the caller must keep executing the *same* task shape
        (and for the substitution-only arms of experiments)."""
        manager = AdaptationManager(
            self.properties,
            self.monitor,
            self.substitution,
            behavioural=self.behavioural if allow_behavioural else None,
            fresh_candidates=self._fresh_candidates,
            observability=self.observability,
        )
        manager.deploy(plan)
        return manager

    # ------------------------------------------------------------------
    # end-to-end
    # ------------------------------------------------------------------
    def _execute_plan(
        self,
        plan: CompositionPlan,
        adapt: bool = True,
        track_sla: bool = False,
    ) -> RunResult:
        """Execute a composition with monitoring (and adaptation) active.

        With ``track_sla`` the user's global constraints are decomposed into
        per-service SLAs before execution and every observed invocation is
        checked against them; the tracker lands in ``RunResult.compliance``.
        """
        with self.observability.span(
            "execute", task=plan.task.name, adapt=adapt,
        ) as execute_span:
            manager = self.adaptation_manager(plan) if adapt else None
            tracker = (
                ComplianceTracker(derive_slas(plan, self.properties))
                if track_sla
                else None
            )
            pending: List[AdaptationTrigger] = []
            unsubscribe = None
            if manager is not None:
                unsubscribe = self.monitor.subscribe(pending.append)

            try:
                report = self.engine.execute(plan)
            finally:
                if unsubscribe is not None:
                    unsubscribe()

            if tracker is not None:
                for record in report.invocations:
                    if record.observed_qos is not None:
                        tracker.record_vector(record.service_id,
                                              record.observed_qos)

            adaptations: List[AdaptationOutcome] = []
            if manager is not None:
                handled = set()
                for trigger in pending:
                    key = (trigger.service_id, trigger.kind)
                    if key in handled:
                        continue
                    handled.add(key)
                    adaptations.append(manager.handle(trigger))
            partial: Optional[PartialExecutionReport] = None
            if report.degraded:
                partial = PartialExecutionReport.from_run(
                    plan, report, self.config.resilience.degradation
                )
            execute_span.set(
                succeeded=report.succeeded,
                invocations=len(report.invocations),
                adaptations=len(adaptations),
                degraded=report.degraded,
            )
        trace = execute_span if self.observability.enabled else None
        return RunResult(plan=plan, report=report, adaptations=adaptations,
                         compliance=tracker, trace=trace, partial=partial)

    # ------------------------------------------------------------------
    # stable public surface (mirrors MiddlewareRuntime)
    # ------------------------------------------------------------------
    def submit(
        self,
        request: Optional[UserRequest] = None,
        *,
        plan: Optional[CompositionPlan] = None,
        execute: bool = True,
        adapt: bool = True,
        ranked: int = 0,
        best_effort: bool = False,
        track_sla: bool = False,
    ) -> RunHandle:
        """Process one submission inline; returns a completed handle.

        The single entry point of the redesigned API: pass a ``request``
        to compose (and, by default, execute) it, ``execute=False`` for a
        plan-only run, ``ranked=k`` for up to ``k`` alternative proposals,
        or ``plan=`` to execute a previously composed plan.  The returned
        :class:`~repro.runtime.handle.RunHandle` is already terminal —
        the same surface :class:`~repro.runtime.runtime.MiddlewareRuntime`
        completes asynchronously, so call sites are agnostic to the
        serial/pooled deployment choice.
        """
        spec = RunSpec(
            request=request, plan=plan, execute=execute, adapt=adapt,
            ranked=ranked, best_effort=best_effort, track_sla=track_sla,
        )
        submitted_sim = self.environment.clock.now()
        context = (
            TraceContext.mint() if self.observability.enabled else None
        )

        def stamped(handle):
            # Simulated-clock latency annotations, mirroring what the
            # concurrent runtime stamps on pooled handles.
            handle.trace_context = context
            handle.submitted_sim = submitted_sim
            handle.finished_sim = self.environment.clock.now()
            return handle

        task_name = (
            spec.request.task.name if spec.request is not None
            else spec.plan.task.name
        )
        # Mirror the pooled runtime's span shape: one ``runtime.request``
        # root per submission, every descendant carrying the minted trace
        # id — so serial and pooled runs assemble into identical
        # one-tree-per-request traces.
        with self.observability.adopt(context):
            with self.observability.span(
                "runtime.request", task=task_name, execute=spec.execute,
                inline=True,
            ) as request_span:
                if spec.ranked:
                    plans = self._compose_ranked_plans(
                        spec.request, k=spec.ranked
                    )
                    request_span.set(status="done")
                    return stamped(completed_handle(spec, plans=plans))
                if spec.plan is not None:
                    chosen = spec.plan
                else:
                    chosen = self._compose_plan(
                        spec.request, best_effort=spec.best_effort
                    )
                if not spec.execute:
                    request_span.set(status="done")
                    return stamped(completed_handle(spec, plans=[chosen]))
                result = self._execute_plan(
                    chosen, adapt=spec.adapt, track_sla=spec.track_sla
                )
                request_span.set(status="done")
        return stamped(completed_handle(spec, result=result))

    def run(
        self,
        request: UserRequest,
        *,
        adapt: bool = True,
        best_effort: bool = False,
        track_sla: bool = False,
    ) -> RunResult:
        """compose + execute in one step."""
        context = (
            TraceContext.mint() if self.observability.enabled else None
        )
        with self.observability.adopt(context):
            with self.observability.span(
                "run", task=request.task.name
            ) as run_span:
                plan = self._compose_plan(request, best_effort=best_effort)
                result = self._execute_plan(
                    plan, adapt=adapt, track_sla=track_sla
                )
        if self.observability.enabled:
            result.trace = run_span
        return result

    # ------------------------------------------------------------------
    # deprecated pre-redesign entrypoints (thin shims)
    # ------------------------------------------------------------------
    def compose(
        self, request: UserRequest, best_effort: bool = False
    ) -> CompositionPlan:
        """Deprecated: use ``submit(request, execute=False).plan()``."""
        warnings.warn(
            "QASOM.compose() is deprecated; use "
            "submit(request, execute=False).plan()",
            DeprecationWarning, stacklevel=2,
        )
        return self._compose_plan(request, best_effort=best_effort)

    def compose_ranked(
        self, request: UserRequest, k: int = 3
    ) -> List[CompositionPlan]:
        """Deprecated: use ``submit(request, execute=False, ranked=k)
        .alternatives()``."""
        warnings.warn(
            "QASOM.compose_ranked() is deprecated; use "
            "submit(request, execute=False, ranked=k).alternatives()",
            DeprecationWarning, stacklevel=2,
        )
        return self._compose_ranked_plans(request, k=k)

    def execute(
        self,
        plan: CompositionPlan,
        adapt: bool = True,
        track_sla: bool = False,
    ) -> RunResult:
        """Deprecated: use ``submit(plan=plan).result()``."""
        warnings.warn(
            "QASOM.execute() is deprecated; use submit(plan=plan).result()",
            DeprecationWarning, stacklevel=2,
        )
        return self._execute_plan(plan, adapt=adapt, track_sla=track_sla)
