"""Text serialisation of ontologies (a Turtle-inspired line format).

The QoS and task ontologies are code-built, but a middleware deployment
needs to ship, diff and audit them as artefacts.  Since no RDF library is
available, this module defines a minimal line-oriented triple format —
deliberately a *subset* of Turtle's spirit, not the full grammar:

.. code-block:: text

    # comment
    <subject> <predicate> <object> .
    <subject> <predicate> "literal with spaces" .

URIs keep their prefix form (``qos:QoSProperty``); objects containing
whitespace are quoted literals (labels, comments).  Round-tripping an
ontology through :func:`dump_ontology` / :func:`load_ontology` preserves
every triple and therefore every inference.
"""

from __future__ import annotations

import pathlib
from typing import List, Union

from repro.errors import OntologyError
from repro.semantics.ontology import Ontology
from repro.semantics.triples import Triple


def _format_term(term: str) -> str:
    if any(c.isspace() for c in term) or term.startswith('"'):
        escaped = term.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    return term


def _parse_term(raw: str) -> str:
    if raw.startswith('"'):
        if not raw.endswith('"') or len(raw) < 2:
            raise OntologyError(f"unterminated literal: {raw!r}")
        body = raw[1:-1]
        return body.replace('\\"', '"').replace("\\\\", "\\")
    return raw


def dump_ontology(ontology: Ontology) -> str:
    """Serialise every triple, sorted for stable diffs."""
    lines: List[str] = [f"# ontology: {ontology.name}"]
    triples = sorted(
        ontology.store.triples(),
        key=lambda t: (t.subject, t.predicate, t.object),
    )
    for triple in triples:
        lines.append(
            f"{_format_term(triple.subject)} "
            f"{_format_term(triple.predicate)} "
            f"{_format_term(triple.object)} ."
        )
    return "\n".join(lines) + "\n"


def _split_terms(line: str) -> List[str]:
    """Split a statement line into terms, honouring quoted literals."""
    terms: List[str] = []
    i = 0
    n = len(line)
    while i < n:
        while i < n and line[i].isspace():
            i += 1
        if i >= n:
            break
        if line[i] == '"':
            j = i + 1
            while j < n:
                if line[j] == "\\":
                    j += 2
                    continue
                if line[j] == '"':
                    break
                j += 1
            if j >= n:
                raise OntologyError(f"unterminated literal in line: {line!r}")
            terms.append(line[i:j + 1])
            i = j + 1
        else:
            j = i
            while j < n and not line[j].isspace():
                j += 1
            terms.append(line[i:j])
            i = j
    return terms


def load_ontology(document: str, name: str = "loaded") -> Ontology:
    """Rebuild an ontology from its serialisation.

    The first ``# ontology:`` comment, when present, names the result.
    """
    ontology = Ontology(name)
    for line_number, raw_line in enumerate(document.splitlines(), start=1):
        line = raw_line.strip()
        if not line:
            continue
        if line.startswith("#"):
            marker = "# ontology:"
            if line.startswith(marker):
                ontology.name = line[len(marker):].strip() or name
            continue
        if not line.endswith("."):
            raise OntologyError(
                f"line {line_number}: statement must end with '.': {line!r}"
            )
        terms = _split_terms(line[:-1].strip())
        if len(terms) != 3:
            raise OntologyError(
                f"line {line_number}: expected 3 terms, got {len(terms)}"
            )
        subject, predicate, object_ = (_parse_term(t) for t in terms)
        ontology.store.add(subject, predicate, object_)
    ontology.invalidate_caches()
    return ontology


def save_ontology(
    ontology: Ontology, path: Union[str, pathlib.Path]
) -> pathlib.Path:
    """Write the serialisation to disk; returns the resolved path."""
    target = pathlib.Path(path)
    target.write_text(dump_ontology(ontology))
    return target


def read_ontology(
    path: Union[str, pathlib.Path], name: str = "loaded"
) -> Ontology:
    """Load a serialised ontology from disk."""
    return load_ontology(pathlib.Path(path).read_text(), name)
