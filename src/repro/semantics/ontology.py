"""Concept ontologies with RDFS/OWL-lite subsumption reasoning.

The paper's semantic QoS model (Chapter III) and the semantic vertex matching
of behavioural adaptation (Chapter V) only require a small, well-defined
fragment of OWL semantics:

* ``rdfs:subClassOf`` transitive closure,
* ``owl:equivalentClass`` symmetric-transitive closure, folded into
  subsumption (equivalent classes subsume each other),
* class declarations with labels and comments,
* object/data property declarations with domain and range.

:class:`Ontology` implements exactly this fragment on top of
:class:`repro.semantics.triples.TripleStore`, with memoised ancestor sets so
repeated subsumption checks during selection are O(1) amortised.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, Optional, Set

from repro.errors import OntologyError, UnknownConceptError
from repro.semantics.triples import TripleStore

RDF_TYPE = "rdf:type"
RDFS_SUBCLASS = "rdfs:subClassOf"
RDFS_LABEL = "rdfs:label"
RDFS_COMMENT = "rdfs:comment"
RDFS_DOMAIN = "rdfs:domain"
RDFS_RANGE = "rdfs:range"
OWL_CLASS = "owl:Class"
OWL_EQUIVALENT = "owl:equivalentClass"
OWL_OBJECT_PROPERTY = "owl:ObjectProperty"
OWL_DATA_PROPERTY = "owl:DatatypeProperty"


class Ontology:
    """A set of concepts, properties and individuals with reasoning support.

    Concepts are identified by URI-like strings, conventionally namespaced
    with a short prefix (``qos:Latency``, ``task:Payment``).  The class
    hierarchy is a DAG; cycles through ``subClassOf`` are rejected unless they
    are explicit equivalences.
    """

    def __init__(self, name: str = "ontology") -> None:
        self.name = name
        self.store = TripleStore()
        self._ancestor_cache: Dict[str, FrozenSet[str]] = {}
        self._descendant_cache: Dict[str, FrozenSet[str]] = {}
        self._generation = 0

    # ------------------------------------------------------------------
    # declaration API
    # ------------------------------------------------------------------
    def declare_class(
        self,
        uri: str,
        parents: Iterable[str] = (),
        label: Optional[str] = None,
        comment: Optional[str] = None,
    ) -> str:
        """Declare a concept, optionally under one or more parent concepts.

        Parents must already be declared; this enforces bottom-up ontology
        construction and catches typos in concept URIs early.
        """
        self.store.add(uri, RDF_TYPE, OWL_CLASS)
        for parent in parents:
            if not self.is_class(parent):
                raise UnknownConceptError(parent)
            self.store.add(uri, RDFS_SUBCLASS, parent)
        if label:
            self.store.add(uri, RDFS_LABEL, label)
        if comment:
            self.store.add(uri, RDFS_COMMENT, comment)
        self._invalidate()
        return uri

    def declare_subclass(self, child: str, parent: str) -> None:
        """Add a ``subClassOf`` edge between two already-declared concepts."""
        for uri in (child, parent):
            if not self.is_class(uri):
                raise UnknownConceptError(uri)
        self.store.add(child, RDFS_SUBCLASS, parent)
        self._invalidate()

    def declare_equivalence(self, uri_a: str, uri_b: str) -> None:
        """State that two concepts denote the same notion (owl:equivalentClass)."""
        for uri in (uri_a, uri_b):
            if not self.is_class(uri):
                raise UnknownConceptError(uri)
        self.store.add(uri_a, OWL_EQUIVALENT, uri_b)
        self.store.add(uri_b, OWL_EQUIVALENT, uri_a)
        self._invalidate()

    def declare_property(
        self,
        uri: str,
        domain: Optional[str] = None,
        range_: Optional[str] = None,
        data_property: bool = False,
        label: Optional[str] = None,
    ) -> str:
        """Declare an object or datatype property with optional domain/range."""
        kind = OWL_DATA_PROPERTY if data_property else OWL_OBJECT_PROPERTY
        self.store.add(uri, RDF_TYPE, kind)
        if domain is not None:
            self.store.add(uri, RDFS_DOMAIN, domain)
        if range_ is not None:
            self.store.add(uri, RDFS_RANGE, range_)
        if label:
            self.store.add(uri, RDFS_LABEL, label)
        return uri

    def declare_individual(self, uri: str, class_uri: str) -> str:
        """Assert that an individual is an instance of a declared class."""
        if not self.is_class(class_uri):
            raise UnknownConceptError(class_uri)
        self.store.add(uri, RDF_TYPE, class_uri)
        return uri

    def assert_fact(self, subject: str, predicate: str, object_: str) -> None:
        """Add an arbitrary statement (used for metric/unit annotations)."""
        self.store.add(subject, predicate, object_)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def is_class(self, uri: str) -> bool:
        return (uri, RDF_TYPE, OWL_CLASS) in self.store

    def classes(self) -> Iterator[str]:
        return iter(self.store.subjects(RDF_TYPE, OWL_CLASS))

    def label(self, uri: str) -> Optional[str]:
        return self.store.one_object(uri, RDFS_LABEL)

    def comment(self, uri: str) -> Optional[str]:
        return self.store.one_object(uri, RDFS_COMMENT)

    def parents(self, uri: str) -> Set[str]:
        """Direct superclasses (declared, not inferred)."""
        return self.store.objects(uri, RDFS_SUBCLASS)

    def children(self, uri: str) -> Set[str]:
        """Direct subclasses (declared, not inferred)."""
        return self.store.subjects(RDFS_SUBCLASS, uri)

    def equivalents(self, uri: str) -> Set[str]:
        """Transitive equivalence class of a concept, including itself."""
        seen = {uri}
        frontier = [uri]
        while frontier:
            current = frontier.pop()
            for eq in self.store.objects(current, OWL_EQUIVALENT):
                if eq not in seen:
                    seen.add(eq)
                    frontier.append(eq)
        return seen

    def types_of(self, individual: str) -> Set[str]:
        """All classes the individual belongs to, including inferred ones."""
        direct = {
            t for t in self.store.objects(individual, RDF_TYPE) if self.is_class(t)
        }
        inferred: Set[str] = set()
        for t in direct:
            inferred |= self.ancestors(t)
        return direct | inferred

    def individuals_of(self, class_uri: str, transitive: bool = True) -> Set[str]:
        """All individuals typed by the class (or any subclass when transitive)."""
        classes = {class_uri}
        if transitive:
            classes |= self.descendants(class_uri)
        result: Set[str] = set()
        for c in classes:
            result |= {
                s for s in self.store.subjects(RDF_TYPE, c) if not self.is_class(s)
            }
        return result

    # ------------------------------------------------------------------
    # reasoning
    # ------------------------------------------------------------------
    def ancestors(self, uri: str) -> FrozenSet[str]:
        """Inferred superclass set of a concept (reflexive-transitive,
        through equivalences)."""
        cached = self._ancestor_cache.get(uri)
        if cached is not None:
            return cached
        if not self.is_class(uri):
            raise UnknownConceptError(uri)
        result: Set[str] = set()
        frontier = list(self.equivalents(uri))
        visiting: Set[str] = set()
        while frontier:
            current = frontier.pop()
            if current in result:
                continue
            result.add(current)
            if current in visiting:
                continue
            visiting.add(current)
            for parent in self.parents(current):
                frontier.extend(self.equivalents(parent))
        frozen = frozenset(result)
        self._ancestor_cache[uri] = frozen
        return frozen

    def descendants(self, uri: str) -> FrozenSet[str]:
        """Inferred subclass set of a concept (reflexive-transitive,
        through equivalences)."""
        cached = self._descendant_cache.get(uri)
        if cached is not None:
            return cached
        if not self.is_class(uri):
            raise UnknownConceptError(uri)
        result: Set[str] = set()
        frontier = list(self.equivalents(uri))
        while frontier:
            current = frontier.pop()
            if current in result:
                continue
            result.add(current)
            for child in self.children(current):
                frontier.extend(self.equivalents(child))
        frozen = frozenset(result)
        self._descendant_cache[uri] = frozen
        return frozen

    def subsumes(self, general: str, specific: str) -> bool:
        """True when ``general`` is a (possibly inferred) superclass of
        ``specific`` — i.e. every instance of ``specific`` is an instance of
        ``general``."""
        return general in self.ancestors(specific)

    def common_ancestors(self, uri_a: str, uri_b: str) -> FrozenSet[str]:
        return self.ancestors(uri_a) & self.ancestors(uri_b)

    def depth(self, uri: str) -> int:
        """Longest declared subclass chain from the concept to a root."""
        best = 0
        for parent in self.parents(uri):
            if parent == uri:
                continue
            best = max(best, 1 + self.depth(parent))
        return best

    def merge(self, other: "Ontology") -> None:
        """Union another ontology's statements into this one.

        Used to assemble the end-to-end QoS model out of the Core,
        Infrastructure, Service and User QoS ontologies.
        """
        for triple in other.store.triples():
            self.store.add_triple(triple)
        self._invalidate()

    def validate(self) -> None:
        """Check structural sanity: the declared ``subClassOf`` graph is a DAG.

        Raises :class:`OntologyError` when a concept reaches itself through a
        chain of declared ``subClassOf`` edges.  (Mutual subsumption must be
        stated with :meth:`declare_equivalence`, not a subclass cycle.)
        """
        for uri in self.classes():
            stack = list(self.parents(uri))
            seen: Set[str] = set()
            while stack:
                node = stack.pop()
                if node == uri:
                    raise OntologyError(
                        f"subClassOf cycle through {uri!r} in ontology {self.name!r}"
                    )
                if node in seen:
                    continue
                seen.add(node)
                stack.extend(self.parents(node))

    @property
    def cache_generation(self) -> int:
        """Monotonic counter bumped by :meth:`invalidate_caches`.

        Downstream memoisers (e.g. :class:`repro.semantics.matching.MatchCache`)
        compare it against the generation they cached at, so invalidating
        this ontology's reasoning caches transitively flushes theirs.
        """
        return self._generation

    def invalidate_caches(self) -> None:
        """Drop memoised inference results.

        Required after mutating :attr:`store` directly (bulk loaders do);
        the declaration API calls it automatically.
        """
        self._ancestor_cache.clear()
        self._descendant_cache.clear()
        self._generation += 1

    # Internal alias kept for the declaration methods.
    _invalidate = invalidate_caches
