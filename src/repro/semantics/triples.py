"""An indexed, in-memory RDF-style triple store.

This is the storage substrate underneath :class:`repro.semantics.Ontology`.
Triples are ``(subject, predicate, object)`` tuples of strings (URIs or
literals).  Three hash indexes (SPO, POS, OSP) give O(1) lookups for every
single-variable query pattern, which keeps subsumption closure and semantic
matching fast even for the full QoS ontology suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Set, Tuple


@dataclass(frozen=True)
class Triple:
    """A single ``(subject, predicate, object)`` statement."""

    subject: str
    predicate: str
    object: str

    def __iter__(self) -> Iterator[str]:
        return iter((self.subject, self.predicate, self.object))


class TripleStore:
    """A set of triples with SPO/POS/OSP indexes.

    The public query entry point is :meth:`triples`, which accepts ``None``
    as a wildcard for any position, mirroring ``rdflib.Graph.triples``.
    """

    def __init__(self) -> None:
        self._spo: Dict[str, Dict[str, Set[str]]] = {}
        self._pos: Dict[str, Dict[str, Set[str]]] = {}
        self._osp: Dict[str, Dict[str, Set[str]]] = {}
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __contains__(self, triple: Tuple[str, str, str]) -> bool:
        s, p, o = triple
        return o in self._spo.get(s, {}).get(p, ())

    def add(self, subject: str, predicate: str, object_: str) -> bool:
        """Insert a triple.  Returns ``True`` if it was not already present."""
        if (subject, predicate, object_) in self:
            return False
        self._spo.setdefault(subject, {}).setdefault(predicate, set()).add(object_)
        self._pos.setdefault(predicate, {}).setdefault(object_, set()).add(subject)
        self._osp.setdefault(object_, {}).setdefault(subject, set()).add(predicate)
        self._size += 1
        return True

    def add_triple(self, triple: Triple) -> bool:
        return self.add(triple.subject, triple.predicate, triple.object)

    def remove(self, subject: str, predicate: str, object_: str) -> bool:
        """Remove a triple.  Returns ``True`` if it was present."""
        if (subject, predicate, object_) not in self:
            return False
        self._spo[subject][predicate].discard(object_)
        self._pos[predicate][object_].discard(subject)
        self._osp[object_][subject].discard(predicate)
        self._size -= 1
        return True

    def triples(
        self,
        subject: Optional[str] = None,
        predicate: Optional[str] = None,
        object_: Optional[str] = None,
    ) -> Iterator[Triple]:
        """Yield all triples matching a pattern; ``None`` is a wildcard."""
        if subject is not None:
            by_pred = self._spo.get(subject, {})
            preds = [predicate] if predicate is not None else list(by_pred)
            for p in preds:
                objs = by_pred.get(p, ())
                if object_ is not None:
                    if object_ in objs:
                        yield Triple(subject, p, object_)
                else:
                    for o in objs:
                        yield Triple(subject, p, o)
        elif predicate is not None:
            by_obj = self._pos.get(predicate, {})
            objs = [object_] if object_ is not None else list(by_obj)
            for o in objs:
                for s in by_obj.get(o, ()):
                    yield Triple(s, predicate, o)
        elif object_ is not None:
            by_subj = self._osp.get(object_, {})
            for s, preds in by_subj.items():
                for p in preds:
                    yield Triple(s, p, object_)
        else:
            for s, by_pred in self._spo.items():
                for p, objs in by_pred.items():
                    for o in objs:
                        yield Triple(s, p, o)

    def objects(self, subject: str, predicate: str) -> Set[str]:
        """All objects ``o`` such that ``(subject, predicate, o)`` holds."""
        return set(self._spo.get(subject, {}).get(predicate, ()))

    def subjects(self, predicate: str, object_: str) -> Set[str]:
        """All subjects ``s`` such that ``(s, predicate, object_)`` holds."""
        return set(self._pos.get(predicate, {}).get(object_, ()))

    def one_object(self, subject: str, predicate: str) -> Optional[str]:
        """A single object for ``(subject, predicate, ·)``, or ``None``."""
        for o in self._spo.get(subject, {}).get(predicate, ()):
            return o
        return None

    def copy(self) -> "TripleStore":
        clone = TripleStore()
        for t in self.triples():
            clone.add_triple(t)
        return clone
