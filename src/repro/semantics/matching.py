"""Semantic concept matching with graded match degrees.

QoS-aware service discovery (Chapter II §3) and the semantic vertex matching
of behavioural adaptation (Chapter V §6.2.1) both compare a *required*
concept against an *offered* one.  Following the classic OWLS-MX /
Paolucci-style scheme that the ARLES middleware line (Amigo, PERSE) uses, a
comparison yields one of five degrees:

=========  ====================================================
EXACT      same concept or declared equivalent
PLUGIN     the offer is more specific than the request — the
           offered instances all satisfy the request
SUBSUME    the offer is more general than the request — it may
           satisfy it, with weaker guarantees
SIBLING    distinct concepts sharing a non-trivial ancestor
FAIL       semantically unrelated
=========  ====================================================

Degrees are totally ordered (EXACT > PLUGIN > SUBSUME > SIBLING > FAIL) so
match results can be ranked and thresholded.
"""

from __future__ import annotations

import enum
from typing import Dict, Optional, Tuple

from repro.semantics.ontology import Ontology


class MatchDegree(enum.IntEnum):
    """Ordered semantic match quality between two concepts."""

    FAIL = 0
    SIBLING = 1
    SUBSUME = 2
    PLUGIN = 3
    EXACT = 4

    @property
    def satisfies(self) -> bool:
        """Whether the match is strong enough for functional substitution.

        EXACT and PLUGIN guarantee the offer fulfils the request; SUBSUME and
        below do not (the offer might be too general).
        """
        return self >= MatchDegree.PLUGIN


def match_concepts(
    ontology: Ontology,
    required: str,
    offered: str,
    root: Optional[str] = None,
) -> MatchDegree:
    """Grade how well ``offered`` satisfies ``required`` under ``ontology``.

    ``root`` optionally names a top concept that should *not* count as a
    meaningful common ancestor for the SIBLING degree (e.g. ``qos:QoSProperty``
    is an ancestor of everything in the QoS ontology, so sharing it proves
    nothing).
    """
    if required == offered or offered in ontology.equivalents(required):
        return MatchDegree.EXACT
    required_subsumes = ontology.subsumes(required, offered)
    offered_subsumes = ontology.subsumes(offered, required)
    if required_subsumes and offered_subsumes:
        # Mutual subsumption (e.g. through mixed subclass/equivalence
        # paths) is semantic equivalence even without a declared
        # owl:equivalentClass statement.
        return MatchDegree.EXACT
    if required_subsumes:
        return MatchDegree.PLUGIN
    if offered_subsumes:
        return MatchDegree.SUBSUME
    common = ontology.common_ancestors(required, offered)
    meaningful = {c for c in common if c != root}
    # Remove each concept's own equivalence class (reflexive ancestors).
    meaningful -= ontology.equivalents(required) | ontology.equivalents(offered)
    if meaningful:
        return MatchDegree.SIBLING
    return MatchDegree.FAIL


def similarity(
    ontology: Ontology,
    required: str,
    offered: str,
    root: Optional[str] = None,
) -> float:
    """A [0, 1] similarity score derived from the match degree.

    Used where a numeric weight is needed (e.g. ranking discovery results):
    EXACT → 1.0, PLUGIN → 0.8, SUBSUME → 0.5, SIBLING → 0.2, FAIL → 0.0.
    ``root`` is forwarded to :func:`match_concepts`: without it a shared top
    concept would upgrade genuinely unrelated pairs from FAIL (0.0) to
    SIBLING (0.2) and skew rankings.
    """
    degree = match_concepts(ontology, required, offered, root)
    return {
        MatchDegree.EXACT: 1.0,
        MatchDegree.PLUGIN: 0.8,
        MatchDegree.SUBSUME: 0.5,
        MatchDegree.SIBLING: 0.2,
        MatchDegree.FAIL: 0.0,
    }[degree]


class MatchCache:
    """Memoised :func:`match_concepts` over one ontology.

    Discovery, QoS-term translation and behavioural vertex matching all
    grade the same small set of concept pairs over and over during a
    selection round; subsumption reasoning is amortised-O(1) but the
    constant (set intersections, equivalence-class walks) still dominates
    the hot path.  The cache keys on ``(required, offered, root)`` and holds
    the resulting degree.

    Invalidation rides the ontology's own hook: every lookup compares
    :attr:`Ontology.cache_generation` (bumped by
    :meth:`Ontology.invalidate_caches`, which every declaration-API mutation
    and bulk load calls) against the generation the entries were computed
    under, and flushes on mismatch — a stale hit is impossible.

    ``hits``/``misses`` are exposed for observability counters.
    """

    __slots__ = ("ontology", "_entries", "_generation", "hits", "misses")

    def __init__(self, ontology: Ontology) -> None:
        self.ontology = ontology
        self._entries: Dict[Tuple[str, str, Optional[str]], MatchDegree] = {}
        self._generation = ontology.cache_generation
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def match(
        self, required: str, offered: str, root: Optional[str] = None
    ) -> MatchDegree:
        """Graded match, served from cache when the ontology is unchanged."""
        generation = self.ontology.cache_generation
        if generation != self._generation:
            self._entries.clear()
            self._generation = generation
        key = (required, offered, root)
        degree = self._entries.get(key)
        if degree is None:
            degree = match_concepts(self.ontology, required, offered, root)
            self._entries[key] = degree
            self.misses += 1
        else:
            self.hits += 1
        return degree

    def similarity(
        self, required: str, offered: str, root: Optional[str] = None
    ) -> float:
        """Cached counterpart of :func:`similarity`."""
        degree = self.match(required, offered, root)
        return {
            MatchDegree.EXACT: 1.0,
            MatchDegree.PLUGIN: 0.8,
            MatchDegree.SUBSUME: 0.5,
            MatchDegree.SIBLING: 0.2,
            MatchDegree.FAIL: 0.0,
        }[degree]
