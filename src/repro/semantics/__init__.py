"""Lightweight semantic-web substrate (S1).

The paper's QoS model and behavioural adaptation both rely on OWL ontologies
and subsumption reasoning (semantic vertex matching, required/offered QoS
mapping).  Since no RDF library is available offline, this package implements
the needed subset from scratch:

* :mod:`repro.semantics.triples` — an indexed in-memory triple store with
  SPO/POS/OSP lookups.
* :mod:`repro.semantics.ontology` — concept/property declarations and an
  RDFS/OWL-lite reasoner (``subClassOf`` / ``equivalentClass`` transitive
  closure, domain/range typing).
* :mod:`repro.semantics.matching` — concept match degrees (EXACT, PLUGIN,
  SUBSUME, SIBLING, FAIL) used by QoS-aware discovery and behavioural
  adaptation.
"""

from repro.semantics.matching import (
    MatchCache,
    MatchDegree,
    match_concepts,
    similarity,
)
from repro.semantics.ontology import Ontology, RDF_TYPE, RDFS_SUBCLASS
from repro.semantics.triples import Triple, TripleStore

__all__ = [
    "MatchCache",
    "MatchDegree",
    "Ontology",
    "RDF_TYPE",
    "RDFS_SUBCLASS",
    "Triple",
    "TripleStore",
    "match_concepts",
    "similarity",
]
