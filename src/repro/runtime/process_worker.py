"""Child-process side of the process execution backend.

A worker process is a tiny request-reply server over one
:mod:`multiprocessing` pipe.  The parent primes it with a
:class:`WorkerContext` (the picklable slice of middleware configuration
composition needs), ships a pickled
:class:`~repro.services.registry.RegistrySnapshot` once per registry
generation, and then sends one ``("compose", ComposeRequest)`` message per
request.  The child recomposes exactly the way a parent-side worker thread
would — batched discovery against the snapshot, a private QASSA selector —
and returns the finished :class:`~repro.composition.selection.CompositionPlan`
list, which the parent rehydrates onto its own service objects (see
:meth:`repro.runtime.backends.ProcessBackend._rehydrate`).

Determinism across the pickle boundary is load-bearing: discovery iterates
capabilities in sorted order and snapshots index candidates as materialised
tuples, so a deserialised snapshot yields byte-identical candidate pools —
and QASSA is a pure function of pools + request — which is what lets the
process backend keep the runtime's pooled==serial plan guarantee.

Messages (all tuples, first element is the kind):

``("context", WorkerContext)``
    Fire-and-forget; must precede any compose.
``("snapshot", RegistrySnapshot)``
    Fire-and-forget; replaces the worker's world view.
``("compose", ComposeRequest)``
    Request-reply; answered with ``("ok", [CompositionPlan, ...])`` or
    ``("error", exception)`` (``("error_opaque", type_name, message)``
    when the exception itself does not pickle).
``("exit",)``
    Clean shutdown.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import NoCandidateError
from repro.composition.qassa import QASSA, QassaConfig
from repro.composition.aggregation import AggregationApproach
from repro.composition.request import UserRequest
from repro.composition.selection import CandidateSets, CompositionPlan
from repro.composition.selection_cache import SelectionCache
from repro.qos.properties import QoSProperty
from repro.runtime.batching import DiscoveryBatcher
from repro.semantics.matching import MatchCache, MatchDegree
from repro.semantics.ontology import Ontology


@dataclass(frozen=True)
class WorkerContext:
    """Everything a worker process needs to compose, beyond the snapshot."""

    properties: Dict[str, QoSProperty]
    aggregation: AggregationApproach
    qassa: QassaConfig
    discovery_minimum_degree: MatchDegree
    ontology: Optional[Ontology]
    incremental_selection: bool


@dataclass(frozen=True)
class ComposeRequest:
    """One composition order: the request plus its selection options."""

    request: UserRequest
    ranked: int
    best_effort: bool


class _WorkerState:
    """Per-process composition machinery, rebuilt from a WorkerContext."""

    def __init__(self, context: WorkerContext) -> None:
        self.context = context
        self.snapshot = None
        self.batcher = DiscoveryBatcher(
            ontology=context.ontology,
            match_cache=(
                MatchCache(context.ontology)
                if context.ontology is not None else None
            ),
        )
        self.selector = QASSA(
            context.properties,
            context.aggregation,
            context.qassa,
            cache=(
                SelectionCache() if context.incremental_selection else None
            ),
        )

    def compose(self, order: ComposeRequest) -> List[CompositionPlan]:
        """Mirror of ``MiddlewareRuntime._compose_against``, sans spans."""
        if self.snapshot is None:
            raise RuntimeError("compose before any snapshot was shipped")
        request = order.request
        pools: Dict[str, list] = {}
        for activity in request.task.activities:
            services = self.batcher.candidates(
                self.snapshot,
                activity.capability,
                self.context.discovery_minimum_degree,
            )
            if not services:
                raise NoCandidateError(activity.name)
            pools[activity.name] = services
        candidates = CandidateSets(request.task, pools)
        if order.ranked:
            return self.selector.select_ranked(
                request, candidates, k=order.ranked
            )
        return [
            self.selector.select(
                request, candidates, best_effort=order.best_effort
            )
        ]


def _error_reply(exc: Exception) -> tuple:
    """An ``("error", ...)`` reply, degrading to opaque transport.

    ``Connection.send`` pickles into a buffer before writing any bytes, so
    probing with ``pickle.dumps`` first guarantees the reply that *is*
    sent never corrupts the stream mid-message.
    """
    try:
        pickle.dumps(exc)
        return ("error", exc)
    except Exception:  # noqa: BLE001 - any pickle failure degrades
        return ("error_opaque", type(exc).__name__, str(exc))


def worker_main(conn) -> None:
    """Entry point of a worker process (module-level for spawn pickling)."""
    state: Optional[_WorkerState] = None
    try:
        while True:
            try:
                message = conn.recv()
            except EOFError:
                return  # parent went away; nothing left to serve
            kind = message[0]
            if kind == "context":
                state = _WorkerState(message[1])
            elif kind == "snapshot" and state is not None:
                state.snapshot = message[1]
            elif kind == "compose":
                try:
                    if state is None:
                        raise RuntimeError("compose before context")
                    plans = state.compose(message[1])
                    reply = ("ok", plans)
                    pickle.dumps(reply)  # probe before touching the pipe
                except Exception as exc:  # noqa: BLE001 - shipped to parent
                    reply = _error_reply(exc)
                conn.send(reply)
            elif kind == "exit":
                return
    finally:
        conn.close()
