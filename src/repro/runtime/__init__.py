"""Concurrent multi-request runtime for the QASOM middleware.

The paper evaluates one composition request at a time; this package is the
deployable-middleware counterpart: a bounded worker pool that admits many
user requests against one shared environment, with snapshot-isolated
composition, coalesced discovery, per-request deadlines and backpressure —
while staying byte-for-byte deterministic with the serial path.

Entry points: :class:`MiddlewareRuntime` (the pool),
:class:`RuntimeConfig` (knobs), :class:`RunHandle` (the result surface,
shared with :meth:`repro.middleware.qasom.QASOM.submit`).
"""

from repro.runtime.admission import (
    AdaptiveAdmissionController,
    StaticAdmissionController,
    build_admission_controller,
)
from repro.runtime.backends import (
    BACKEND_CHOICES,
    ExecutionBackend,
    ProcessBackend,
    ThreadBackend,
    build_backend,
)
from repro.runtime.batching import DiscoveryBatcher, RequestCoalescer
from repro.runtime.chaos import (
    ChaosPolicy,
    FiredFault,
    InjectedSnapshotFailure,
    InjectedWorkerCrash,
    InvariantReport,
    assert_runtime_invariants,
    verify_runtime_invariants,
)
from repro.runtime.handle import RequestStatus, RunHandle, RunSpec
from repro.runtime.runtime import MiddlewareRuntime, RuntimeConfig
from repro.runtime.snapshot import SnapshotManager
from repro.runtime.supervisor import RetryBudget, WorkerSupervisor

__all__ = [
    "AdaptiveAdmissionController",
    "BACKEND_CHOICES",
    "ChaosPolicy",
    "DiscoveryBatcher",
    "ExecutionBackend",
    "ProcessBackend",
    "ThreadBackend",
    "build_backend",
    "FiredFault",
    "InjectedSnapshotFailure",
    "InjectedWorkerCrash",
    "InvariantReport",
    "RequestCoalescer",
    "MiddlewareRuntime",
    "RetryBudget",
    "StaticAdmissionController",
    "WorkerSupervisor",
    "assert_runtime_invariants",
    "build_admission_controller",
    "verify_runtime_invariants",
    "RequestStatus",
    "RunHandle",
    "RunSpec",
    "RuntimeConfig",
    "SnapshotManager",
]
