"""Concurrent multi-request runtime for the QASOM middleware.

The paper evaluates one composition request at a time; this package is the
deployable-middleware counterpart: a bounded worker pool that admits many
user requests against one shared environment, with snapshot-isolated
composition, coalesced discovery, per-request deadlines and backpressure —
while staying byte-for-byte deterministic with the serial path.

Entry points: :class:`MiddlewareRuntime` (the pool),
:class:`RuntimeConfig` (knobs), :class:`RunHandle` (the result surface,
shared with :meth:`repro.middleware.qasom.QASOM.submit`).
"""

from repro.runtime.admission import (
    AdaptiveAdmissionController,
    StaticAdmissionController,
    build_admission_controller,
)
from repro.runtime.batching import DiscoveryBatcher, RequestCoalescer
from repro.runtime.handle import RequestStatus, RunHandle, RunSpec
from repro.runtime.runtime import MiddlewareRuntime, RuntimeConfig
from repro.runtime.snapshot import SnapshotManager

__all__ = [
    "AdaptiveAdmissionController",
    "DiscoveryBatcher",
    "RequestCoalescer",
    "MiddlewareRuntime",
    "StaticAdmissionController",
    "build_admission_controller",
    "RequestStatus",
    "RunHandle",
    "RunSpec",
    "RuntimeConfig",
    "SnapshotManager",
]
