"""Copy-on-write snapshot isolation over the live service registry.

Concurrent requests must each see a *consistent* world: a selection that
starts with five candidates for an activity must not watch two of them
vanish mid-phase because churn fired on another thread.  The
:class:`SnapshotManager` provides that isolation the same way the PR-4
caches do — a **generation counter**: the registry bumps
:attr:`~repro.services.registry.ServiceRegistry.generation` on every
publish/withdraw, and the manager materialises a fresh
:class:`~repro.services.registry.RegistrySnapshot` only when the counter
moved.  Between churn events every in-flight request shares one immutable
snapshot object (copy-on-write, not copy-per-request), so the steady-state
cost is one integer comparison per acquire.
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.services.registry import RegistrySnapshot, ServiceRegistry


class SnapshotManager:
    """Hands out generation-consistent registry snapshots, lazily refreshed.

    ``acquire()`` is safe to call from any thread; the snapshot it returns
    is immutable and may be read without locking for as long as the caller
    likes (it simply describes an older generation once churn proceeds).
    """

    def __init__(self, registry: ServiceRegistry) -> None:
        self.registry = registry
        self._lock = threading.Lock()
        self._current: Optional[RegistrySnapshot] = None
        self._refreshes = 0
        self._acquires = 0

    def acquire(self) -> RegistrySnapshot:
        """The snapshot for the registry's current generation."""
        self._acquires += 1
        current = self._current
        if current is not None and current.generation == self.registry.generation:
            return current
        with self._lock:
            current = self._current
            if (
                current is None
                or current.generation != self.registry.generation
            ):
                current = self._current = self.registry.snapshot()
                self._refreshes += 1
            return current

    @property
    def refreshes(self) -> int:
        """How many times churn forced a fresh copy."""
        return self._refreshes

    @property
    def acquires(self) -> int:
        """Total ``acquire()`` calls (hit rate = 1 - refreshes/acquires)."""
        return self._acquires

    def invalidate(self) -> None:
        """Drop the cached snapshot (the next acquire re-copies)."""
        with self._lock:
            self._current = None
