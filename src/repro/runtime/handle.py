"""Run specifications and handles: the stable result surface of the API.

A :class:`RunSpec` is the validated, normalised form of one submission —
what the caller wants done with a :class:`~repro.composition.request.UserRequest`
(or a pre-composed plan).  A :class:`RunHandle` is the caller's view of
that submission's progress: the same object whether the work ran inline
(:meth:`repro.middleware.qasom.QASOM.submit`) or through the concurrent
:class:`~repro.runtime.runtime.MiddlewareRuntime` pool, so code written
against handles is oblivious to the serial/pooled deployment choice.

Handles are thread-safe: the runtime's worker threads complete them, the
submitting thread blocks on :meth:`RunHandle.result` /
:meth:`RunHandle.plan` / :meth:`RunHandle.wait`.
"""

from __future__ import annotations

import enum
import itertools
import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

from repro.errors import MiddlewareRuntimeError
from repro.composition.request import UserRequest
from repro.composition.selection import CompositionPlan

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.middleware.qasom import RunResult


class RequestStatus(enum.Enum):
    """Lifecycle of one submitted request."""

    #: Admitted, waiting for a worker.
    QUEUED = "queued"
    #: A worker is composing/executing it.
    RUNNING = "running"
    #: Finished successfully; the handle holds the plan(s)/result.
    DONE = "done"
    #: Finished with an error; the handle re-raises it on access.
    FAILED = "failed"
    #: Refused at submit time — the admission queue was full.
    REJECTED = "rejected"
    #: The per-request deadline elapsed before completion.
    EXPIRED = "expired"
    #: The runtime shut down before the request was processed.
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        """Whether the request will make no further progress."""
        return self is not RequestStatus.QUEUED and self is not RequestStatus.RUNNING


@dataclass(frozen=True)
class RunSpec:
    """What one submission asks the middleware to do.

    Exactly one of ``request`` / ``plan`` drives composition: with a
    ``request`` the middleware discovers and selects; with a ``plan`` the
    composition stage is skipped and the plan is executed as-is.
    ``ranked`` asks for up to that many alternative compositions instead
    of one (a plan-only operation — ranked proposals are presented to the
    user, not executed).
    """

    request: Optional[UserRequest] = None
    plan: Optional[CompositionPlan] = None
    execute: bool = True
    adapt: bool = True
    ranked: int = 0
    best_effort: bool = False
    track_sla: bool = False

    def __post_init__(self) -> None:
        if self.request is None and self.plan is None:
            raise MiddlewareRuntimeError(
                "a submission needs a request (to compose) or a plan "
                "(to execute)"
            )
        if self.ranked < 0:
            raise MiddlewareRuntimeError("ranked must be >= 0")
        if self.ranked and self.plan is not None:
            raise MiddlewareRuntimeError(
                "ranked alternatives require a request, not a pre-built plan"
            )
        if self.ranked and self.execute:
            raise MiddlewareRuntimeError(
                "ranked proposals are not executed; pass execute=False and "
                "run the chosen alternative separately"
            )
        if self.plan is not None and not self.execute:
            raise MiddlewareRuntimeError(
                "a plan-only submission of an existing plan is a no-op"
            )


#: Process-wide monotonic handle sequence.  ``next()`` on an
#: ``itertools.count`` is atomic under the GIL, so handles created from
#: any thread get unique, never-reused ids — unlike ``id(handle)``, which
#: the allocator recycles after GC and which could cross-wire the
#: runtime's ticket bookkeeping between an old and a new handle.
_HANDLE_SEQ = itertools.count(1)


class RunHandle:
    """The caller's view of one submitted request.

    Blocking accessors (:meth:`result`, :meth:`plan`, :meth:`alternatives`)
    wait for completion and re-raise the request's failure —
    :class:`~repro.errors.AdmissionRejectedError` for backpressure
    rejections, :class:`~repro.errors.DeadlineExceededError` for expired
    deadlines, or whatever composition/execution raised.
    """

    def __init__(self, spec: RunSpec) -> None:
        self.spec = spec
        #: Unique, never-reused identity (the runtime's ticket-map key).
        self.seq: int = next(_HANDLE_SEQ)
        #: How many times a supervisor/transient-fault requeue re-admitted
        #: this request after a worker crash or injected snapshot failure.
        self.requeues: int = 0
        #: How many worker crashes this request survived (set by the
        #: runtime; drives the deferred ``worker_crash`` forensic bundle).
        self.crashes: int = 0
        #: The request's causal identity
        #: (:class:`~repro.observability.context.TraceContext`), minted at
        #: submission when observability or the flight recorder is on.
        #: After the first execution attempt opens its root span, this is
        #: replaced by a child context so crash-requeued retries nest
        #: under the first attempt's root — one span tree per request.
        self.trace_context = None
        self._done = threading.Event()
        self._status = RequestStatus.QUEUED
        self._result: Optional["RunResult"] = None
        self._plans: List[CompositionPlan] = []
        self._error: Optional[BaseException] = None
        #: Wall-clock submission/start/finish stamps (``time.perf_counter``),
        #: the raw material for queue-delay and tail-latency measurements.
        self.submitted_wall: float = time.perf_counter()
        self.started_wall: Optional[float] = None
        self.finished_wall: Optional[float] = None
        #: Simulated-clock submission/finish stamps, filled in by whichever
        #: path processed the handle (runtime pool or inline submit) when a
        #: simulated clock is available.  Pure annotations: they never
        #: influence scheduling, so serial/pooled byte-identity is untouched.
        self.submitted_sim: Optional[float] = None
        self.finished_sim: Optional[float] = None

    # -- state transitions (runtime-internal) ---------------------------
    def _mark_running(self) -> None:
        self._status = RequestStatus.RUNNING
        self.started_wall = time.perf_counter()

    def _mark_requeued(self) -> None:
        """Back to the queue after a worker crash / transient fault."""
        self._status = RequestStatus.QUEUED

    def _complete(
        self,
        result: Optional["RunResult"] = None,
        plans: Optional[List[CompositionPlan]] = None,
    ) -> None:
        self._result = result
        if plans is not None:
            self._plans = plans
        elif result is not None:
            self._plans = [result.plan]
        self._status = RequestStatus.DONE
        self.finished_wall = time.perf_counter()
        self._done.set()

    def _fail(self, error: BaseException, status: RequestStatus) -> None:
        self._error = error
        self._status = status
        self.finished_wall = time.perf_counter()
        self._done.set()

    # -- caller surface -------------------------------------------------
    @property
    def status(self) -> RequestStatus:
        """Current lifecycle state (terminal states never change again)."""
        return self._status

    def done(self) -> bool:
        """Whether the request reached a terminal state."""
        return self._done.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until terminal (or ``timeout`` seconds); True if terminal."""
        return self._done.wait(timeout)

    def exception(
        self, timeout: Optional[float] = None
    ) -> Optional[BaseException]:
        """The failure, if the request failed; None on success."""
        self._await(timeout)
        return self._error

    def result(self, timeout: Optional[float] = None) -> "RunResult":
        """The full :class:`~repro.middleware.qasom.RunResult`.

        Only executing submissions produce one; for ``execute=False``
        submissions read :meth:`plan` / :meth:`alternatives` instead.
        """
        self._await(timeout)
        self._raise_if_failed()
        if self._result is None:
            raise MiddlewareRuntimeError(
                "plan-only submission has no execution result; read "
                "handle.plan() or handle.alternatives()"
            )
        return self._result

    def plan(self, timeout: Optional[float] = None) -> CompositionPlan:
        """The chosen composition plan (best alternative for ranked runs)."""
        self._await(timeout)
        self._raise_if_failed()
        return self._plans[0]

    def alternatives(
        self, timeout: Optional[float] = None
    ) -> List[CompositionPlan]:
        """All composed alternatives, best utility first."""
        self._await(timeout)
        self._raise_if_failed()
        return list(self._plans)

    @property
    def trace_id(self) -> Optional[str]:
        """The request's trace id, when a trace context was minted.

        ``getattr`` keeps the property total on partially-constructed
        handles (tests stub them via ``__new__``).
        """
        context = getattr(self, "trace_context", None)
        return context.trace_id if context is not None else None

    # -- latency accounting ---------------------------------------------
    @property
    def queue_seconds(self) -> Optional[float]:
        """Wall-clock seconds spent admitted but not yet picked up."""
        if self.started_wall is None:
            return None
        return self.started_wall - self.submitted_wall

    @property
    def total_seconds(self) -> Optional[float]:
        """Wall-clock seconds from submission to terminal state."""
        if self.finished_wall is None:
            return None
        return self.finished_wall - self.submitted_wall

    @property
    def sim_seconds(self) -> Optional[float]:
        """Simulated seconds from submission to terminal state.

        ``None`` until terminal, or when no simulated clock stamped the
        handle.  This is the latency axis the windowed tail-latency
        telemetry and SLO gates use — deterministic across runs, unlike
        the wall-clock stamps.
        """
        if self.submitted_sim is None or self.finished_sim is None:
            return None
        return self.finished_sim - self.submitted_sim

    # -- internals ------------------------------------------------------
    def _await(self, timeout: Optional[float]) -> None:
        if not self._done.wait(timeout):
            raise MiddlewareRuntimeError(
                f"request not finished within {timeout} s "
                f"(status: {self._status.value})"
            )

    def _raise_if_failed(self) -> None:
        if self._error is not None:
            raise self._error
        if not self._plans and self._result is None:
            raise MiddlewareRuntimeError(
                f"request finished without a result (status: "
                f"{self._status.value})"
            )

    def __repr__(self) -> str:
        return f"RunHandle(status={self._status.value})"


def completed_handle(
    spec: RunSpec,
    result: Optional["RunResult"] = None,
    plans: Optional[List[CompositionPlan]] = None,
) -> RunHandle:
    """A handle born terminal — the inline (serial) submission path."""
    handle = RunHandle(spec)
    handle._mark_running()
    handle._complete(result, plans)
    return handle
