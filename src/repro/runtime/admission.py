"""Admission control policies for the concurrent runtime.

PR 5 gave the runtime one blunt instrument against overload: a hard-coded
``queue_depth`` — reject everything beyond it.  That bound is *static*: a
queue of 64 requests each taking 5 simulated seconds to serve promises the
last admission a ~5-minute wait, while the same queue of 5 ms requests
rejects load the pool could absorb easily.  This module makes the bound a
*policy*:

* :class:`StaticAdmissionController` — the original behaviour (admit while
  the queue is shorter than ``queue_depth``), preserved as the default so
  pooled-vs-serial byte-identity is untouched;
* :class:`AdaptiveAdmissionController` — sizes the effective queue depth
  from *measured* load via Little's law.  Over a sliding window on the
  **simulated clock** it tracks the arrival rate λ and the mean service
  time W of committed executions; a queue of length L in front of a
  serialised commit stage imposes a wait of ≈ L·W on the last arrival, so
  bounding the admission wait by ``target_delay`` means admitting at most
  ``L = target_delay / W`` requests:

  .. math:: d_{\\text{eff}} = \\mathrm{clamp}\\left(
      \\lceil \\text{target\\_delay} / W \\rceil,
      d_{\\min}, \\text{queue\\_depth} \\right)

  Until service-time samples exist the controller behaves exactly like the
  static one (``d_eff = queue_depth``), and it never admits *more* than
  the static bound — adaptivity only tightens admission under load.

Both controllers are driven entirely by timestamps their caller passes in
(the runtime passes simulated-clock readings), so identical simulated
timelines produce identical depth decisions.  Each depth *change* emits a
``runtime.admission`` decision span and refreshed ``runtime_admission_*``
gauges through the runtime's observability.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from typing import Any, Deque, Optional, Tuple

from repro.observability import NULL_OBSERVABILITY
from repro.observability.events import ADMISSION_DEPTH, NULL_RECORDER


class StaticAdmissionController:
    """The fixed bound: admit while the queue is shorter than the depth."""

    adaptive = False

    def __init__(self, queue_depth: int) -> None:
        self.queue_depth = queue_depth

    def on_arrival(self, now: float) -> None:
        """Arrival notification (ignored — the bound is fixed)."""

    def on_complete(self, service_seconds: float, now: float) -> None:
        """Completion notification (ignored — the bound is fixed)."""

    def effective_depth(self) -> int:
        """The current admission bound (always ``queue_depth``)."""
        return self.queue_depth

    def admit(self, queue_length: int) -> bool:
        """Whether a submission may join a queue of ``queue_length``."""
        return queue_length < self.queue_depth

    def __repr__(self) -> str:
        return f"StaticAdmissionController(depth={self.queue_depth})"


class AdaptiveAdmissionController:
    """Little's-law admission: depth follows measured λ and W.

    ``target_delay_seconds`` is the admission-wait budget the controller
    defends; ``window_seconds`` is the sliding measurement window on the
    caller's clock; ``min_depth`` floors the bound so a burst of slow
    requests cannot close admission entirely; ``queue_depth`` (the static
    bound) caps it.  Thread-safe: runtime submit and worker threads call
    in concurrently.
    """

    adaptive = True

    def __init__(
        self,
        queue_depth: int,
        *,
        target_delay_seconds: float,
        window_seconds: float = 5.0,
        min_depth: int = 1,
        observability: Any = NULL_OBSERVABILITY,
        recorder: Any = NULL_RECORDER,
    ) -> None:
        if target_delay_seconds <= 0:
            raise ValueError("target delay must be positive")
        if window_seconds <= 0:
            raise ValueError("measurement window must be positive")
        if not 1 <= min_depth <= queue_depth:
            raise ValueError(
                "min_depth must satisfy 1 <= min_depth <= queue_depth"
            )
        self.queue_depth = queue_depth
        self.target_delay_seconds = float(target_delay_seconds)
        self.window_seconds = float(window_seconds)
        self.min_depth = min_depth
        self.observability = observability
        self.recorder = recorder
        self._lock = threading.Lock()
        self._arrivals: Deque[float] = deque()
        self._services: Deque[Tuple[float, float]] = deque()
        self._depth = queue_depth
        self._decisions = 0

    # ------------------------------------------------------------------
    def on_arrival(self, now: float) -> None:
        """Record one arrival at clock time ``now`` and re-size the bound."""
        with self._lock:
            self._arrivals.append(now)
            self._refresh(now)

    def on_complete(self, service_seconds: float, now: float) -> None:
        """Record one committed execution's service time and re-size."""
        with self._lock:
            self._services.append((now, max(0.0, service_seconds)))
            self._refresh(now)

    def effective_depth(self) -> int:
        """The current measured admission bound."""
        with self._lock:
            return self._depth

    def admit(self, queue_length: int) -> bool:
        """Whether a submission may join a queue of ``queue_length``."""
        with self._lock:
            return queue_length < self._depth

    # ------------------------------------------------------------------
    def arrival_rate(self) -> float:
        """Arrivals per second over the current window."""
        with self._lock:
            return self._arrival_rate()

    def service_seconds(self) -> float:
        """Mean committed service time over the current window (0 if none)."""
        with self._lock:
            return self._service_seconds()

    @property
    def decisions(self) -> int:
        """How many times the effective depth has changed."""
        return self._decisions

    # -- internals (call with the lock held) ----------------------------
    def _prune(self, now: float) -> None:
        horizon = now - self.window_seconds
        while self._arrivals and self._arrivals[0] < horizon:
            self._arrivals.popleft()
        while self._services and self._services[0][0] < horizon:
            self._services.popleft()

    def _arrival_rate(self) -> float:
        return len(self._arrivals) / self.window_seconds

    def _service_seconds(self) -> float:
        if not self._services:
            return 0.0
        return sum(s for _, s in self._services) / len(self._services)

    def _refresh(self, now: float) -> None:
        self._prune(now)
        service = self._service_seconds()
        rate = self._arrival_rate()
        if service <= 0.0:
            # No evidence yet — behave exactly like the static bound.
            depth = self.queue_depth
        else:
            depth = math.ceil(self.target_delay_seconds / service)
            depth = max(self.min_depth, min(depth, self.queue_depth))
        utilisation = rate * service
        observability = self.observability
        observability.gauge("runtime_admission_arrival_rate").set(rate)
        observability.gauge("runtime_admission_service_seconds").set(service)
        observability.gauge("runtime_admission_utilisation").set(utilisation)
        if depth == self._depth:
            return
        previous, self._depth = self._depth, depth
        self._decisions += 1
        observability.gauge("runtime_admission_effective_depth").set(depth)
        if self.recorder.enabled:
            self.recorder.record(
                ADMISSION_DEPTH,
                depth=depth,
                previous=previous,
                arrival_rate=round(rate, 6),
                service_seconds=round(service, 6),
            )
        with observability.span(
            "runtime.admission",
            effective_depth=depth,
            previous_depth=previous,
            arrival_rate=round(rate, 6),
            service_seconds=round(service, 6),
            utilisation=round(utilisation, 6),
        ):
            pass

    def __repr__(self) -> str:
        return (
            f"AdaptiveAdmissionController(depth={self._depth}/"
            f"{self.queue_depth}, target={self.target_delay_seconds:g}s, "
            f"window={self.window_seconds:g}s)"
        )


def build_admission_controller(
    config: Any,
    observability: Any = NULL_OBSERVABILITY,
    recorder: Any = NULL_RECORDER,
) -> Any:
    """The controller a :class:`RuntimeConfig` asks for.

    ``config.admission`` selects the policy: ``"static"`` (the default,
    byte-identical to the pre-policy runtime) or ``"adaptive"``.
    ``recorder`` lets the adaptive controller stamp depth changes on the
    runtime's flight-recorder ring.
    """
    if config.admission == "adaptive":
        return AdaptiveAdmissionController(
            config.queue_depth,
            target_delay_seconds=config.admission_target_delay_ms / 1e3,
            window_seconds=config.admission_window_seconds,
            min_depth=config.admission_min_depth,
            observability=observability,
            recorder=recorder,
        )
    return StaticAdmissionController(config.queue_depth)
