"""Execution backends: where a runtime's composition work actually runs.

:class:`~repro.runtime.runtime.MiddlewareRuntime` owns admission, ordered
commit, coalescing and supervision; *where* the CPU-bound composition step
(discovery + QASSA selection) executes is delegated through the
:class:`ExecutionBackend` protocol, selected by
``RuntimeConfig(backend="thread" | "process")``:

* :class:`ThreadBackend` — composition runs inline on the runtime's worker
  threads.  Cheapest dispatch, full feature support (chaos, flight
  recorder, forensics, cross-layer estimation), but pure-Python selection
  serialises on the GIL.
* :class:`ProcessBackend` — composition is shipped to a pool of spawned
  worker processes, one pipe channel each.  Workers deserialise a pickled
  :class:`~repro.services.registry.RegistrySnapshot` once per registry
  generation and recompose on it; returned plans are rehydrated onto the
  parent's own service objects, and the runtime's ordered commit (by
  admission ticket) keeps pooled==serial byte-identity.  Features that
  need parent-side shared mutable state — chaos injection, the flight
  recorder/forensics, cross-layer estimation — raise
  :class:`~repro.errors.UnsupportedBackendFeatureError` up front rather
  than silently degrading.

Both backends are driven *by the runtime's worker threads*: a thread
either composes inline (thread backend) or blocks on its worker process's
reply (process backend — the pipe wait releases the GIL, which is where
the parallelism comes from).  A worker process that dies mid-compose
surfaces as :class:`~repro.errors.WorkerProcessCrash`; the backend
respawns the process and the runtime requeues the request under its
original admission ticket, exactly like an injected transient fault.
"""

from __future__ import annotations

import multiprocessing
import queue
from typing import TYPE_CHECKING, List, Protocol, runtime_checkable

from repro.errors import WorkerProcessCrash
from repro.composition.selection import CompositionPlan, SelectedActivity
from repro.runtime.process_worker import (
    ComposeRequest,
    WorkerContext,
    worker_main,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.handle import RunSpec
    from repro.runtime.runtime import MiddlewareRuntime
    from repro.services.registry import RegistrySnapshot

#: Valid ``RuntimeConfig.backend`` names, in documentation order.
BACKEND_CHOICES = ("thread", "process")


@runtime_checkable
class ExecutionBackend(Protocol):
    """Owner of worker lifecycle, request dispatch and result transport.

    The runtime calls :meth:`start` before spawning its worker threads,
    routes every composition through :meth:`compose` (concurrently, from
    many threads), and calls :meth:`stop` after those threads have been
    joined.  Implementations must make :meth:`stop` idempotent and safe
    to call without a prior :meth:`start`.
    """

    name: str

    def start(self) -> None:
        """Bring up whatever executes compositions (processes, pools...)."""
        ...

    def stop(self, timeout: float) -> int:
        """Tear down; returns how many workers could not be reaped."""
        ...

    def compose(
        self, spec: "RunSpec", snapshot: "RegistrySnapshot"
    ) -> List[CompositionPlan]:
        """Compose one request against one snapshot (thread-safe)."""
        ...


class ThreadBackend:
    """Inline execution on the runtime's own worker threads."""

    name = "thread"

    def __init__(self, runtime: "MiddlewareRuntime") -> None:
        self.runtime = runtime

    def start(self) -> None:
        pass  # worker threads are the executors; the runtime spawns them

    def stop(self, timeout: float) -> int:
        return 0

    def compose(self, spec, snapshot) -> List[CompositionPlan]:
        return self.runtime._compose_against(spec, snapshot)


class _WorkerChannel:
    """One worker process plus the parent's pipe end to it."""

    __slots__ = ("process", "conn", "generation")

    def __init__(self, process, conn) -> None:
        self.process = process
        self.conn = conn
        self.generation: int = -1  # no snapshot shipped yet


class ProcessBackend:
    """A pool of spawned worker processes, one duplex pipe each.

    Channels live in a queue: a runtime worker thread checks one out,
    ships the snapshot if the worker's world is stale, sends the compose
    order, blocks on the reply (GIL released), and checks the channel
    back in.  The ``spawn`` start method keeps children free of inherited
    locks/threads, at the price of an interpreter start per worker —
    amortised over the runtime's lifetime.
    """

    name = "process"

    def __init__(self, runtime: "MiddlewareRuntime") -> None:
        self.runtime = runtime
        self._ctx = multiprocessing.get_context("spawn")
        self._channels: List[_WorkerChannel] = []
        self._pool: "queue.Queue[_WorkerChannel]" = queue.Queue()
        self._started = False
        self._stopped = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for _ in range(self.runtime.config.workers):
            self._pool.put(self._spawn())

    def stop(self, timeout: float) -> int:
        if self._stopped:
            return 0
        self._stopped = True
        for channel in self._channels:
            try:
                channel.conn.send(("exit",))
            except (OSError, ValueError):
                pass  # already dead; reaped below
        leaked = 0
        for channel in self._channels:
            channel.process.join(timeout=timeout)
            if channel.process.is_alive():
                channel.process.terminate()
                channel.process.join(timeout=1.0)
            if channel.process.is_alive():
                leaked += 1
            try:
                channel.conn.close()
            except OSError:
                pass
        self._channels.clear()
        return leaked

    # ------------------------------------------------------------------
    def compose(self, spec, snapshot) -> List[CompositionPlan]:
        channel = self._pool.get()
        broken = False
        try:
            if channel.generation != snapshot.generation:
                channel.conn.send(("snapshot", snapshot))
                channel.generation = snapshot.generation
            channel.conn.send((
                "compose",
                ComposeRequest(
                    request=spec.request,
                    ranked=spec.ranked,
                    best_effort=spec.best_effort,
                ),
            ))
            reply = channel.conn.recv()
        except (EOFError, OSError) as exc:
            broken = True
            raise WorkerProcessCrash(
                f"worker process pid={channel.process.pid} died mid-compose "
                f"({type(exc).__name__}); respawned — request will be "
                f"requeued under its original ticket if the budget allows"
            ) from None
        finally:
            if broken:
                self._replace(channel)
            else:
                self._pool.put(channel)
        kind = reply[0]
        if kind == "ok":
            return [self._rehydrate(p, spec, snapshot) for p in reply[1]]
        if kind == "error":
            raise reply[1]
        raise WorkerProcessCrash(
            f"worker process raised an untransportable {reply[1]}: {reply[2]}"
        )

    # ------------------------------------------------------------------
    def _spawn(self) -> _WorkerChannel:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=worker_main,
            args=(child_conn,),
            name="repro-compose-worker",
            daemon=True,  # backstop: never outlive the parent interpreter
        )
        process.start()
        child_conn.close()  # the child holds its own copy
        channel = _WorkerChannel(process, parent_conn)
        channel.conn.send(("context", self._context()))
        self._channels.append(channel)
        return channel

    def _replace(self, dead: _WorkerChannel) -> None:
        """Reap a dead worker and put a fresh one back in the pool."""
        try:
            dead.conn.close()
        except OSError:
            pass
        dead.process.join(timeout=1.0)
        if dead in self._channels:
            self._channels.remove(dead)
        self.runtime.observability.counter(
            "runtime_process_respawns_total"
        ).inc()
        if not self._stopped:
            self._pool.put(self._spawn())

    def _context(self) -> WorkerContext:
        middleware = self.runtime.middleware
        return WorkerContext(
            properties=dict(middleware.properties),
            aggregation=middleware.config.aggregation,
            qassa=middleware.config.qassa,
            discovery_minimum_degree=(
                middleware.config.discovery_minimum_degree
            ),
            ontology=middleware.discovery.ontology,
            incremental_selection=middleware.config.incremental_selection,
        )

    def _rehydrate(
        self, plan: CompositionPlan, spec, snapshot
    ) -> CompositionPlan:
        """Re-anchor a child-composed plan on parent-owned objects.

        The child worked on pickled copies; execution, liveness checks and
        plan-key identity on the parent side need the parent's task,
        request and :class:`ServiceDescription` instances, which are
        recovered by service id through the very snapshot the child
        composed against.
        """
        request = spec.request
        selections = {}
        for name, sel in plan.selections.items():
            services = []
            for service in sel.services:
                local = snapshot.get(service.service_id)
                services.append(local if local is not None else service)
            selections[name] = SelectedActivity(name, services)
        return CompositionPlan(
            task=request.task,
            request=request,
            selections=selections,
            aggregated_qos=plan.aggregated_qos,
            utility=plan.utility,
            feasible=plan.feasible,
            approach=plan.approach,
            statistics=plan.statistics,
        )


def build_backend(runtime: "MiddlewareRuntime") -> ExecutionBackend:
    """The backend instance for ``runtime.config.backend``.

    Name validation happened in ``RuntimeConfig.__post_init__``; this
    keeps a defensive error for configs built by other means.
    """
    name = runtime.config.backend
    if name == "thread":
        return ThreadBackend(runtime)
    if name == "process":
        return ProcessBackend(runtime)
    raise ValueError(
        f"unknown execution backend {name!r}; "
        f"valid choices: {', '.join(BACKEND_CHOICES)}"
    )
