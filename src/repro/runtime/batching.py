"""Discovery batching: coalesce capability lookups across co-arriving requests.

Requests that arrive together overwhelmingly ask for overlapping
capabilities (the paper's scenarios share task templates), yet the serial
middleware re-runs full semantic discovery — grade every advertised
capability concept, expand the survivors, filter QoS — once per activity
per request.  The :class:`DiscoveryBatcher` amortises that work across the
whole co-arriving batch:

* results are memoised per ``(snapshot generation, capability, degree)``,
  so the N-th request for a capability against an unchanged world is a
  dictionary hit;
* a lookup that is *in flight* on another worker is joined, not repeated —
  co-arriving requests block briefly on one shared computation instead of
  racing through duplicate ones;
* all semantic grading flows through the middleware's shared PR-4
  :class:`~repro.semantics.matching.MatchCache`, so even cold lookups for
  *different* capabilities reuse each other's concept gradings.

The same idea lifts one level up: composition itself is deterministic per
``(registry generation, request)``, so the :class:`RequestCoalescer`
memoises whole composition results — N identical requests against an
unchanged world compose once and each execution receives an independent
:meth:`~repro.composition.selection.CompositionPlan.clone` (execution-time
substitution mutates plans in place).

Churn invalidates naturally: a new registry generation produces new keys,
and stale generations are dropped lazily.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Hashable, List, Optional, Tuple

from repro.composition.selection import CompositionPlan
from repro.semantics.matching import MatchCache, MatchDegree
from repro.semantics.ontology import Ontology
from repro.services.description import ServiceDescription
from repro.services.discovery import DiscoveryQuery, QoSAwareDiscovery
from repro.services.registry import RegistrySnapshot

_PoolKey = Tuple[int, str, MatchDegree]


class DiscoveryBatcher:
    """Snapshot-keyed, coalescing cache over semantic discovery.

    One batcher serves every worker of a
    :class:`~repro.runtime.runtime.MiddlewareRuntime`.  ``ontology`` and
    ``match_cache`` come from the wrapped middleware so concept gradings
    are shared with the serial path (and therefore identical to it —
    batched pools are byte-for-byte the pools serial discovery returns for
    the same registry generation).
    """

    def __init__(
        self,
        ontology: Optional[Ontology] = None,
        match_cache: Optional[MatchCache] = None,
        observability=None,
    ) -> None:
        from repro.observability import core as observability_core

        self.ontology = ontology
        self.match_cache = match_cache
        self.obs = observability_core.resolve(observability)
        self._lock = threading.Lock()
        self._pools: Dict[_PoolKey, List[ServiceDescription]] = {}
        self._inflight: Dict[_PoolKey, threading.Event] = {}
        self._discoveries: Dict[int, QoSAwareDiscovery] = {}
        self._lookups = 0
        self._computed = 0

    # ------------------------------------------------------------------
    def candidates(
        self,
        snapshot: RegistrySnapshot,
        capability: str,
        minimum_degree: MatchDegree,
    ) -> List[ServiceDescription]:
        """The discovery pool for one capability against one snapshot.

        Blocks (briefly) when another worker is computing the same pool;
        every caller receives its own list copy, safe to reorder locally.
        """
        key = (snapshot.generation, capability, minimum_degree)
        while True:
            with self._lock:
                self._lookups += 1
                pool = self._pools.get(key)
                if pool is not None:
                    self.obs.counter("runtime_discovery_coalesced_total").inc()
                    return list(pool)
                waiter = self._inflight.get(key)
                if waiter is None:
                    self._inflight[key] = threading.Event()
                    break
            # Same pool being computed on another worker: join it.
            waiter.wait()
            self.obs.counter("runtime_discovery_coalesced_total").inc()
            with self._lock:
                self._lookups += 1
                pool = self._pools.get(key)
            if pool is not None:
                return list(pool)
            # The computing worker failed; loop and try computing ourselves.

        try:
            discovery = self._discovery_for(snapshot)
            query = DiscoveryQuery(
                capability=capability, minimum_degree=minimum_degree
            )
            pool = discovery.candidates(query)
            with self._lock:
                self._pools[key] = pool
                self._computed += 1
                self._evict_stale(snapshot.generation)
            self.obs.counter("runtime_discovery_batched_total").inc()
            return list(pool)
        finally:
            with self._lock:
                event = self._inflight.pop(key, None)
            if event is not None:
                event.set()

    # ------------------------------------------------------------------
    @property
    def lookups(self) -> int:
        """Total pool requests served."""
        return self._lookups

    @property
    def computed(self) -> int:
        """Pools actually discovered (the rest were coalesced)."""
        return self._computed

    @property
    def coalesced(self) -> int:
        """Lookups answered from the batch cache or a joined computation."""
        return self._lookups - self._computed

    # ------------------------------------------------------------------
    def _discovery_for(self, snapshot: RegistrySnapshot) -> QoSAwareDiscovery:
        """One discovery instance per snapshot generation (cheap, cached)."""
        with self._lock:
            discovery = self._discoveries.get(snapshot.generation)
            if discovery is None:
                discovery = QoSAwareDiscovery(
                    snapshot,  # duck-types the registry read surface
                    self.ontology,
                    observability=self.obs,
                    match_cache=self.match_cache,
                )
                self._discoveries[snapshot.generation] = discovery
            return discovery

    def _evict_stale(self, live_generation: int) -> None:
        """Drop pools/discoveries for generations older than the live one."""
        for key in [k for k in self._pools if k[0] != live_generation]:
            del self._pools[key]
        for generation in [
            g for g in self._discoveries if g != live_generation
        ]:
            del self._discoveries[generation]


class RequestCoalescer:
    """Generation-keyed coalescing cache over whole composition results.

    A broker sees the same request many times (the paper's scenarios are
    task templates shared across users), and composition is a pure function
    of ``(registry generation, request, selection options)``.  The
    coalescer memoises the composed plans under exactly that key — the
    caller builds it, including the generation as element ``0`` — and joins
    in-flight computations the same way :class:`DiscoveryBatcher` does, so
    a burst of identical requests costs one selection instead of N.

    Cached entries stay pristine: :meth:`plans` returns a fresh
    :meth:`~repro.composition.selection.CompositionPlan.clone` per plan on
    every call, because execution-time substitution mutates plans in place.
    """

    def __init__(self, observability=None) -> None:
        from repro.observability import core as observability_core

        self.obs = observability_core.resolve(observability)
        self._lock = threading.Lock()
        self._plans: Dict[Hashable, List[CompositionPlan]] = {}
        self._inflight: Dict[Hashable, threading.Event] = {}
        self._lookups = 0
        self._computed = 0

    def plans(
        self,
        key: Hashable,
        compute: Callable[[], List[CompositionPlan]],
    ) -> List[CompositionPlan]:
        """The composed plans for ``key``, computing at most once.

        ``key[0]`` must be the registry generation (stale generations are
        evicted when a newer one lands).  Every caller receives independent
        plan clones.
        """
        while True:
            with self._lock:
                self._lookups += 1
                plans = self._plans.get(key)
                if plans is not None:
                    self.obs.counter("runtime_plans_coalesced_total").inc()
                    return [plan.clone() for plan in plans]
                waiter = self._inflight.get(key)
                if waiter is None:
                    self._inflight[key] = threading.Event()
                    break
            # The same request is composing on another worker: join it.
            waiter.wait()
            self.obs.counter("runtime_plans_coalesced_total").inc()
            with self._lock:
                self._lookups += 1
                plans = self._plans.get(key)
            if plans is not None:
                return [plan.clone() for plan in plans]
            # The computing worker failed; loop and try computing ourselves.

        try:
            plans = compute()
            with self._lock:
                self._plans[key] = plans
                self._computed += 1
                self._evict_stale(key[0])
            self.obs.counter("runtime_plans_computed_total").inc()
            return [plan.clone() for plan in plans]
        finally:
            with self._lock:
                event = self._inflight.pop(key, None)
            if event is not None:
                event.set()

    # ------------------------------------------------------------------
    @property
    def lookups(self) -> int:
        """Total plan requests served."""
        return self._lookups

    @property
    def computed(self) -> int:
        """Compositions actually run (the rest were coalesced)."""
        return self._computed

    @property
    def coalesced(self) -> int:
        """Lookups answered from the cache or a joined computation."""
        return self._lookups - self._computed

    def _evict_stale(self, live_generation: int) -> None:
        for key in [k for k in self._plans if k[0] != live_generation]:
            del self._plans[key]
