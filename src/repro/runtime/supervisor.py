"""Worker supervision and overload-safe retry budgets.

The worker pool's fault domain: PR 5's runtime assumed worker threads are
immortal — an exception escaping :meth:`MiddlewareRuntime._process`
(or a chaos-injected :class:`~repro.runtime.chaos.InjectedWorkerCrash`)
silently shrank the pool forever and left the dead worker's request
stranded, its ``result()`` blocking indefinitely.  Two pieces fix that:

* :class:`WorkerSupervisor` — every worker thread runs under the
  supervisor's wrapper.  When a worker dies it (1) lets the worker loop
  salvage the in-flight request *first* (requeue under the original
  admission ticket, or fail the handle — never strand it), (2) counts the
  death (``runtime_worker_restarts_total``) and opens a
  ``runtime.supervisor.restart`` span, then (3) respawns a fresh thread
  in the dead worker's slot, so the pool always returns to
  ``config.workers`` threads while the runtime is open.

* :class:`RetryBudget` — a token bucket capping the *fraction* of traffic
  that may be retry/requeue work, the classic metastability guard: under
  overload a retry storm amplifies load exactly when capacity is scarcest,
  so requeues are paid for from a budget that only first-time admissions
  refill.  Each admitted request deposits ``ratio`` tokens (capped);
  each requeue spends one.  An empty bucket means the crashed/transiently
  failed request fails fast instead of being retried.

Both are deterministic given a deterministic workload: the budget is
arithmetic over admission/requeue counts (no clocks), and respawning is
confluent — any interleaving of deaths and respawns converges to a full
pool.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any, Optional

from repro.errors import MiddlewareRuntimeError
from repro.observability import NULL_OBSERVABILITY
from repro.observability.events import WORKER_RESTART

if TYPE_CHECKING:  # pragma: no cover - circular import guard, typing only
    from repro.runtime.runtime import MiddlewareRuntime


class RetryBudget:
    """A token bucket bounding requeue/retry work relative to admissions.

    ``ratio`` tokens are deposited per first-time admission (so at most
    ~``ratio`` of sustained traffic can be retries), ``initial`` seeds the
    bucket (tolerating early faults before any deposits), and ``cap``
    bounds the burst of retries a quiet period can bank.  Thread-safe.
    """

    def __init__(
        self,
        *,
        ratio: float = 0.1,
        initial: float = 4.0,
        cap: float = 32.0,
        observability: Any = NULL_OBSERVABILITY,
    ) -> None:
        if not 0.0 <= ratio <= 1.0:
            raise MiddlewareRuntimeError(
                "retry budget ratio must be in [0, 1]"
            )
        if initial < 0 or cap < 0:
            raise MiddlewareRuntimeError(
                "retry budget initial/cap must be >= 0"
            )
        if cap < initial:
            raise MiddlewareRuntimeError(
                "retry budget cap must be >= the initial balance"
            )
        self.ratio = float(ratio)
        self.cap = float(cap)
        self.observability = observability
        self._lock = threading.Lock()
        self._tokens = float(initial)
        self._granted = 0
        self._denied = 0
        self._gauge()

    def on_admit(self) -> None:
        """Deposit for one first-time admission."""
        with self._lock:
            self._tokens = min(self.cap, self._tokens + self.ratio)
        self._gauge()

    def try_acquire(self, cost: float = 1.0) -> bool:
        """Spend ``cost`` tokens for one requeue/retry, if affordable."""
        with self._lock:
            if self._tokens < cost:
                self._denied += 1
                denied = True
            else:
                self._tokens -= cost
                self._granted += 1
                denied = False
        if denied:
            self.observability.counter(
                "runtime_retry_budget_denied_total"
            ).inc()
        self._gauge()
        return not denied

    @property
    def tokens(self) -> float:
        """The current balance."""
        with self._lock:
            return self._tokens

    @property
    def granted(self) -> int:
        """Requeues the budget has paid for."""
        with self._lock:
            return self._granted

    @property
    def denied(self) -> int:
        """Requeues refused for lack of tokens."""
        with self._lock:
            return self._denied

    def _gauge(self) -> None:
        self.observability.gauge("runtime_retry_budget_tokens").set(
            self.tokens
        )

    def __repr__(self) -> str:
        return (
            f"RetryBudget(tokens={self.tokens:.2f}, ratio={self.ratio:g}, "
            f"granted={self.granted}, denied={self.denied})"
        )


class WorkerSupervisor:
    """Detects worker deaths, restores the pool, keeps the restart ledger.

    The supervisor owns thread creation for the runtime: ``spawn(index)``
    registers a worker thread in slot ``index`` (refusing after close, so
    a death racing a shutdown cannot leak an unjoined thread) and the
    wrapper it runs catches *any* escaping exception — including
    ``BaseException``-derived injected crashes — and respawns the slot.
    The in-flight request is salvaged by the worker loop itself before the
    exception reaches the supervisor, so queue/in-flight accounting is
    already consistent by the time the replacement thread starts.
    """

    def __init__(self, runtime: "MiddlewareRuntime") -> None:
        self.runtime = runtime
        self._lock = threading.Lock()
        self._restarts = 0

    def spawn(self, index: int) -> Optional[threading.Thread]:
        """Start a worker thread in slot ``index`` (None if runtime closed).

        Registration and the closed-check are atomic with
        ``MiddlewareRuntime.close``'s thread snapshot, so every spawned
        thread is joined at shutdown.
        """
        runtime = self.runtime
        thread = threading.Thread(
            target=self._run,
            args=(index,),
            name=f"qasom-runtime-{index}",
            daemon=True,
        )
        with runtime._lock:
            if runtime._closed:
                return None
            while len(runtime._threads) <= index:
                runtime._threads.append(None)
            runtime._threads[index] = thread
        thread.start()
        return thread

    @property
    def restarts(self) -> int:
        """Worker deaths handled (each one respawned unless closing)."""
        with self._lock:
            return self._restarts

    # ------------------------------------------------------------------
    def _run(self, index: int) -> None:
        try:
            self.runtime._worker_loop(index)
        except BaseException as exc:  # noqa: BLE001 - supervision boundary
            self._on_worker_death(index, exc)

    def _on_worker_death(self, index: int, error: BaseException) -> None:
        with self._lock:
            self._restarts += 1
        observability = self.runtime.observability
        observability.counter("runtime_worker_restarts_total").inc()
        with observability.span(
            "runtime.supervisor.restart",
            worker=index,
            error=type(error).__name__,
        ):
            pass
        recorder = getattr(self.runtime, "recorder", None)
        if recorder is not None and recorder.enabled:
            recorder.record(
                WORKER_RESTART,
                worker=index,
                error=type(error).__name__,
            )
        self.spawn(index)

    def __repr__(self) -> str:
        return f"WorkerSupervisor(restarts={self.restarts})"
